#!/usr/bin/env python3
"""Tune the window buffer: depth and cache-size trade-offs.

Reproduces the Figure 11/12 experiments interactively: sweeps the window
buffer depth and GPU cache size and prints hit ratios and aggregation
times, showing where the paper's "small cache + window buffering beats a
big cache without it" crossover appears on your workload.

Run:  python examples/tune_window_buffer.py
"""

from repro import GIDSDataLoader
from repro.bench import get_workload, render_table
from repro.config import INTEL_OPTANE

ITERATIONS = 60


def main() -> None:
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE)
    common = dict(
        batch_size=workload.batch_size, fanouts=workload.fanouts, seed=5
    )

    print("sweep 1: window depth at a fixed (8 GB-scaled) cache")
    rows = []
    for depth in (0, 2, 4, 8, 16):
        config = workload.loader_config(
            window_depth=depth, cpu_buffer_fraction=0.0
        )
        loader = GIDSDataLoader(workload.dataset, system, config, **common)
        report = loader.run(ITERATIONS, warmup=20)
        rows.append(
            [
                depth,
                f"{report.gpu_cache_hit_ratio:.1%}",
                f"{report.aggregation_time / ITERATIONS * 1e3:.3f}",
            ]
        )
    print(render_table(["depth", "cache hit ratio", "agg ms/iter"], rows))

    print("\nsweep 2: cache size, random eviction vs window depth 16")
    rows = []
    for cache_gb in (4.0, 8.0, 16.0):
        cache_bytes = cache_gb * 1e9 * workload.capacity_scale
        cells = [f"{cache_gb:.0f} GB"]
        for depth in (0, 16):
            config = workload.loader_config(
                gpu_cache_bytes=cache_bytes,
                window_depth=depth,
                cpu_buffer_fraction=0.0,
            )
            loader = GIDSDataLoader(
                workload.dataset, system, config, **common
            )
            report = loader.run(ITERATIONS, warmup=20)
            cells.append(
                f"{report.gpu_cache_hit_ratio:.1%} / "
                f"{report.aggregation_time / ITERATIONS * 1e3:.3f}ms"
            )
        rows.append(cells)
    print(
        render_table(
            ["cache", "random eviction (hit/agg)", "window 16 (hit/agg)"],
            rows,
        )
    )
    print(
        "\nNote the crossover: the smallest cache with window buffering "
        "beats the largest cache without it (paper, Fig. 12)."
    )


if __name__ == "__main__":
    main()
