#!/usr/bin/env python3
"""Quickstart: train a GNN through the GIDS dataloader in ~20 lines.

Builds a scaled replica of the IGB-tiny dataset, runs the GIDS dataloader
for a measured window, and prints the modeled per-stage timing plus the
data-movement statistics the paper's figures are built from.

Run:  python examples/quickstart.py
"""

from repro import (
    GIDSDataLoader,
    INTEL_OPTANE,
    LoaderConfig,
    SystemConfig,
    load_scaled,
)
from repro.utils import format_bytes, format_time


def main() -> None:
    # A scaled replica: same degree distribution and feature dimension as
    # IGB-tiny, generated locally in a second.
    dataset = load_scaled("IGB-tiny", scale=0.3, seed=0)
    print(
        f"dataset: {dataset.name} x{dataset.scale} -> "
        f"{dataset.num_nodes:,} nodes, {dataset.num_edges:,} edges, "
        f"{format_bytes(dataset.feature_data_bytes)} of features"
    )

    # Hardware: one A100-class GPU, one Intel Optane SSD, CPU memory
    # limited to half the dataset so storage is actually exercised.
    system = SystemConfig(
        ssd=INTEL_OPTANE,
        cpu_memory_limit_bytes=dataset.total_bytes * 0.5,
    )

    # GIDS knobs (Section 4.1 defaults, scaled to the dataset): GPU cache,
    # 10% constant CPU buffer, window depth 8, accumulator on.
    config = LoaderConfig(
        gpu_cache_bytes=dataset.feature_data_bytes * 0.02,
        cpu_buffer_fraction=0.10,
        window_depth=8,
    )

    loader = GIDSDataLoader(
        dataset, system, config, batch_size=128, fanouts=(10, 5, 5), seed=1
    )
    report = loader.run(num_iterations=50, warmup=10)

    totals = report.stage_totals
    print(f"\nmeasured {report.num_iterations} iterations "
          f"(simulated hardware time):")
    print(f"  sampling     {format_time(totals.sampling)}")
    print(f"  aggregation  {format_time(totals.aggregation)}")
    print(f"  training     {format_time(totals.training)}")
    print(f"  end-to-end   {format_time(report.e2e_time)} "
          f"({format_time(report.time_per_iteration())}/iter)")

    counters = report.counters
    print("\nwhere feature requests were served:")
    print(f"  storage     {counters.storage_requests:,} pages "
          f"({format_bytes(counters.storage_bytes)})")
    print(f"  CPU buffer  {counters.cpu_buffer_requests:,} nodes")
    print(f"  GPU cache   {counters.gpu_cache_hits:,} pages "
          f"(hit ratio {report.gpu_cache_hit_ratio:.1%})")
    print(f"  effective aggregation bandwidth "
          f"{report.effective_aggregation_bandwidth / 1e9:.2f} GB/s")


if __name__ == "__main__":
    main()
