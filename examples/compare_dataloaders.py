#!/usr/bin/env python3
"""Compare all four dataloaders on a larger-than-memory graph.

Reproduces the Figure 13/14 experiment shape on one dataset: the GIDS
dataloader vs the BaM dataloader, the Ginex-style Belady loader and the
DGL-mmap baseline, on both SSD types.  Expect GIDS to win modestly on
Intel Optane and by orders of magnitude on the high-latency Samsung
980 Pro — the paper's central result.

Run:  python examples/compare_dataloaders.py
"""

from repro import (
    BaMDataLoader,
    DGLMmapLoader,
    GIDSDataLoader,
    GinexLoader,
    INTEL_OPTANE,
    SAMSUNG_980PRO,
)
from repro.bench import get_workload, render_table

ITERATIONS = 40


def main() -> None:
    workload = get_workload("IGB-Full")
    print(
        f"workload: scaled {workload.name} "
        f"({workload.dataset.num_nodes:,} nodes), batch "
        f"{workload.batch_size}, fanouts {workload.fanouts}"
    )

    rows = []
    for ssd in (INTEL_OPTANE, SAMSUNG_980PRO):
        system = workload.system(ssd)
        config = workload.loader_config()
        common = dict(
            batch_size=workload.batch_size, fanouts=workload.fanouts, seed=1
        )
        gids = GIDSDataLoader(
            workload.dataset, system, config,
            hot_nodes=workload.hot_nodes, **common,
        ).run(ITERATIONS, warmup=10)
        bam = BaMDataLoader(
            workload.dataset, system, config, **common
        ).run(ITERATIONS, warmup=10)
        ginex = GinexLoader(workload.dataset, system, **common).run(
            ITERATIONS, warmup=150
        )
        mmap = DGLMmapLoader(workload.dataset, system, **common).run(
            ITERATIONS, warmup=150
        )
        for report in (gids, bam, ginex, mmap):
            rows.append(
                [
                    ssd.name,
                    report.loader_name,
                    f"{report.e2e_time * 1e3:.2f}",
                    f"{report.time_per_iteration() * 1e3:.3f}",
                    f"{mmap.e2e_time / report.e2e_time:.1f}x",
                ]
            )
    print()
    print(
        render_table(
            ["SSD", "loader", f"E2E ms ({ITERATIONS} iters)", "ms/iter",
             "speedup vs mmap"],
            rows,
            title="End-to-end GNN training comparison",
        )
    )


if __name__ == "__main__":
    main()
