#!/usr/bin/env python3
"""Real end-to-end node classification through the GIDS dataloader.

Everything in this example is functional: the sampler traverses a real
power-law graph, the GIDS loader serves real feature vectors through its
cache hierarchy, and a NumPy GraphSAGE is trained with exact gradients on
a synthetic-but-learnable labeling.  The loss curve and final training
accuracy demonstrate the dataloader feeds the model correctly.

Run:  python examples/node_classification.py
"""

from repro import (
    GIDSDataLoader,
    GraphSAGE,
    INTEL_OPTANE,
    LoaderConfig,
    SystemConfig,
    TrainingPipeline,
    load_scaled,
)

NUM_CLASSES = 8
ITERATIONS = 120


def main() -> None:
    dataset = load_scaled("IGB-tiny", scale=0.1, seed=0)
    system = SystemConfig(
        ssd=INTEL_OPTANE,
        cpu_memory_limit_bytes=dataset.total_bytes * 0.5,
    )
    config = LoaderConfig(
        gpu_cache_bytes=dataset.feature_data_bytes * 0.02,
        cpu_buffer_fraction=0.10,
        window_depth=4,
    )
    loader = GIDSDataLoader(
        dataset, system, config, batch_size=256, fanouts=(5, 5), seed=1
    )
    model = GraphSAGE(
        in_dim=dataset.feature_dim,
        hidden_dim=64,
        num_classes=NUM_CLASSES,
        num_layers=2,
        lr=0.05,
        seed=0,
    )
    pipeline = TrainingPipeline(loader, model, num_classes=NUM_CLASSES)

    print(
        f"training 2-layer GraphSAGE on {dataset.name} x{dataset.scale} "
        f"({dataset.num_nodes:,} nodes, {NUM_CLASSES} classes) "
        f"for {ITERATIONS} mini-batches..."
    )
    result = pipeline.train(ITERATIONS)

    window = 10
    for start in range(0, len(result.losses), 3 * window):
        chunk = result.losses[start : start + window]
        mean = sum(chunk) / len(chunk)
        print(f"  steps {start:4d}-{start + len(chunk) - 1:4d}: "
              f"loss {mean:.4f}")
    print(f"\nfinal training accuracy: {result.final_train_accuracy:.1%}")
    first = sum(result.losses[:window]) / window
    last = sum(result.losses[-window:]) / window
    print(f"loss improved {first:.4f} -> {last:.4f} "
          f"({(1 - last / first):.0%} reduction)")


if __name__ == "__main__":
    main()
