#!/usr/bin/env python3
"""Heterogeneous GNN training with typed sampling (the IGBH/MAG workflow).

Builds a scaled MAG240M replica (paper/author/institution node types),
drives the GIDS dataloader with per-type fanouts, trains GraphSAGE on the
paper nodes with a train/validation split, and prints validation accuracy
plus an ASCII timeline contrasting GIDS's overlapped schedule with the
serial baseline.

Run:  python examples/heterogeneous_training.py
"""

import numpy as np

from repro import (
    DGLMmapLoader,
    GIDSDataLoader,
    GraphSAGE,
    LoaderConfig,
    SystemConfig,
    load_scaled,
    synthetic_labels,
)
from repro.pipeline.timeline import render_timeline
from repro.training.evaluate import evaluate_accuracy, train_validation_split

NUM_CLASSES = 6
TRAIN_STEPS = 80


def main() -> None:
    dataset = load_scaled("MAG240M", 5e-5, seed=0)
    hetero = dataset.hetero
    print(f"dataset: {dataset.name} replica, {dataset.num_nodes:,} nodes")
    for name in hetero.type_names:
        print(f"  {name:12s} {hetero.type_count(name):,}")

    system = SystemConfig(
        cpu_memory_limit_bytes=dataset.total_bytes * 0.5
    )
    config = LoaderConfig(
        gpu_cache_bytes=dataset.feature_data_bytes * 0.02,
        cpu_buffer_fraction=0.10,
        window_depth=4,
    )
    # Typed fanouts: papers cite papers and are written by authors;
    # institutions matter less, so they get a smaller cap.
    typed_fanouts = (
        {"paper": 6, "author": 4, "institution": 1},
        {"paper": 4, "author": 2},
    )
    loader = GIDSDataLoader(
        dataset,
        system,
        config,
        batch_size=128,
        sampler_kind="hetero",
        hetero_fanouts=typed_fanouts,
        seed=1,
    )

    train_ids, val_ids = train_validation_split(
        dataset.train_ids, validation_fraction=0.25, seed=0
    )
    labels_all = synthetic_labels(
        loader.store, np.arange(dataset.num_nodes), NUM_CLASSES, seed=0
    )
    model = GraphSAGE(
        dataset.feature_dim, 64, NUM_CLASSES, num_layers=2, lr=0.05, seed=0
    )

    print(f"\ntraining on {len(train_ids):,} paper nodes, validating on "
          f"{len(val_ids):,}...")
    losses = []
    for step, (batch, features) in enumerate(
        loader.iter_batches(TRAIN_STEPS)
    ):
        loss = model.train_step(batch, features, labels_all[batch.seeds])
        losses.append(loss)
        if step % 20 == 0:
            print(f"  step {step:3d}: loss {loss:.4f}")

    result = evaluate_accuracy(
        model, loader.sampler, loader.store, val_ids, labels_all[val_ids]
    )
    print(f"\nvalidation accuracy: {result.accuracy:.1%} "
          f"({result.correct}/{result.total}) vs "
          f"{1 / NUM_CLASSES:.1%} chance")

    # Timeline: GIDS decouples preparation from training; the baseline
    # serializes them.
    print("\npipeline schedules (first iterations):\n")
    gids_report = loader.run(8, warmup=4)
    print(render_timeline(gids_report))
    mmap = DGLMmapLoader(
        dataset, system, batch_size=128, fanouts=(5, 3), seed=1
    )
    print()
    print(render_timeline(mmap.run(8, warmup=30)))


if __name__ == "__main__":
    main()
