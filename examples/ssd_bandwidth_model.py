#!/usr/bin/env python3
"""Explore the paper's storage-bandwidth model (Eq. 2-3, Figure 8).

Prints the predicted vs simulated IOPS curve for both SSD types, the
number of overlapping accesses each needs to hit 95% of peak, and how the
dynamic storage access accumulator turns that requirement into an
iteration-merging threshold once cache/buffer redirects are observed.

Run:  python examples/ssd_bandwidth_model.py
"""

from repro import (
    DynamicAccessAccumulator,
    INTEL_OPTANE,
    SAMSUNG_980PRO,
    SSDArray,
    SSDMicrobench,
)
from repro.bench import render_table


def main() -> None:
    overlaps = [32, 128, 512, 2048, 8192]
    for spec in (INTEL_OPTANE, SAMSUNG_980PRO):
        array = SSDArray(spec)
        bench = SSDMicrobench(spec, seed=0)
        rows = []
        for n in overlaps:
            model = array.achieved_iops(n)
            _, measured = bench.run(n)
            rows.append(
                [
                    n,
                    f"{model / 1e6:.3f}",
                    f"{measured / 1e6:.3f}",
                    f"{array.achieved_bandwidth(n) / 1e9:.2f}",
                ]
            )
        print(
            render_table(
                ["overlapping", "model MIOPS", "simulated MIOPS", "GB/s"],
                rows,
                title=f"{spec.name} (latency "
                f"{spec.read_latency_s * 1e6:.0f} us, peak "
                f"{spec.peak_iops / 1e6:.1f}M IOPS)",
            )
        )
        required = array.required_overlapping(0.95)
        print(f"  -> {required} overlapping accesses reach 95% of peak\n")

    print("accumulator thresholds (2x Intel Optane, target 95%):")
    accumulator = DynamicAccessAccumulator(
        SSDArray(INTEL_OPTANE, num_ssds=2)
    )
    print(f"  storage threshold: {accumulator.storage_threshold} accesses")
    for redirected in (0.0, 0.3, 0.6):
        accumulator.observe(
            storage_accesses=int(1000 * (1 - redirected)),
            total_accesses=1000,
        )
        print(
            f"  after observing {redirected:.0%} redirects -> accumulate "
            f"{accumulator.node_threshold} node accesses before launching"
        )


if __name__ == "__main__":
    main()
