"""On-disk snapshot format: versioned, checksummed, atomically written.

A snapshot file is::

    8 bytes   magic        b"GIDSCKPT"
    4 bytes   version      little-endian uint32
    4 bytes   payload CRC  little-endian uint32 (zlib.crc32 of the payload)
    8 bytes   payload len  little-endian uint64
    N bytes   payload      pickled plain-dict state

The payload is a plain dict of builtins and NumPy arrays produced by the
``state_dict`` protocol — no library classes are pickled, so old
snapshots keep loading across refactors as long as the dict schema is
understood.  Writes are crash-safe: the bytes land in a same-directory
temp file which is fsynced and then atomically renamed over the final
path, so a reader never observes a half-written snapshot.  Readers verify
magic, version, length and CRC and raise
:class:`~repro.errors.CheckpointCorruptError` on any mismatch — this is
what lets the supervisor skip a torn/corrupted latest snapshot and fall
back to an older one.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from ..errors import CheckpointCorruptError, CheckpointError

#: File magic identifying a GIDS checkpoint snapshot.
SNAPSHOT_MAGIC = b"GIDSCKPT"

#: Current snapshot format version.
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct("<8sIIQ")


def write_snapshot(path: str, payload: dict) -> int:
    """Atomically write ``payload`` as a snapshot file; returns bytes written.

    The payload must be a plain dict (the ``state_dict`` protocol).  The
    write goes through a temp file in the same directory + fsync +
    ``os.replace`` so a crash mid-write leaves either the old file or no
    file — never a torn one.
    """
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"snapshot payload must be a dict, got {type(payload).__name__}"
        )
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"snapshot payload is not picklable: {exc}") from exc
    header = _HEADER.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION, zlib.crc32(body), len(body)
    )
    data = header + body
    tmp_path = f"{path}.tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise CheckpointError(f"cannot write snapshot {path!r}: {exc}") from exc
    return len(data)


def read_snapshot(path: str) -> dict:
    """Read and verify a snapshot file written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.CheckpointCorruptError` when the file is
    truncated, has the wrong magic/version, or fails its CRC — and
    :class:`~repro.errors.CheckpointError` when it cannot be read at all.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path!r}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise CheckpointCorruptError(
            f"snapshot {path!r} is truncated ({len(data)} bytes)"
        )
    magic, version, crc, length = _HEADER.unpack_from(data)
    if magic != SNAPSHOT_MAGIC:
        raise CheckpointCorruptError(
            f"snapshot {path!r} has bad magic {magic!r}"
        )
    if version != SNAPSHOT_VERSION:
        raise CheckpointCorruptError(
            f"snapshot {path!r} has unsupported version {version}"
        )
    body = data[_HEADER.size:]
    if len(body) != length:
        raise CheckpointCorruptError(
            f"snapshot {path!r} payload is {len(body)} bytes, "
            f"header says {length}"
        )
    if zlib.crc32(body) != crc:
        raise CheckpointCorruptError(
            f"snapshot {path!r} failed its CRC check"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointCorruptError(
            f"snapshot {path!r} payload does not unpickle: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(
            f"snapshot {path!r} payload is not a dict"
        )
    return payload
