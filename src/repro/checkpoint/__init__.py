"""Crash-safe checkpoint/resume and supervised runs for the GIDS pipeline.

Every stateful component of the stack exposes ``state_dict`` /
``load_state_dict`` (model weights + momentum, sampler and seed-stream RNG
positions, GPU cache contents and pinning counters, accumulator phase
state, window entries, simulated clocks, fault-injector stream), so a
training run snapshotted at iteration ``k`` and resumed continues
*bit-identically* — same losses, same counters, same report.

This package adds the persistence and lifecycle layers on top:

* :mod:`~repro.checkpoint.snapshot` — the versioned, CRC-checksummed,
  atomically-written on-disk format;
* :mod:`~repro.checkpoint.store` — a retained-snapshot ring that loads the
  newest snapshot passing its integrity check, skipping corrupted ones;
* :mod:`~repro.checkpoint.supervisor` — checkpoint cadence, simulated
  crash events, a modeled-time watchdog and a bounded restart budget with
  exponential backoff.
"""

from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    read_snapshot,
    write_snapshot,
)
from .store import CheckpointStore, LoadedSnapshot
from .supervisor import (
    CheckpointSummary,
    RunSupervisor,
    SupervisedRunResult,
    SupervisorConfig,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "CheckpointStore",
    "CheckpointSummary",
    "LoadedSnapshot",
    "RunSupervisor",
    "SupervisedRunResult",
    "SupervisorConfig",
    "read_snapshot",
    "write_snapshot",
]
