"""A directory of retained snapshots with corrupted-file fallback.

The store names snapshots by the completed-iteration count they capture
(``ckpt-00000042.bin``), keeps a bounded ring of the most recent ones, and
— crucially for crash safety — loads the *latest valid* snapshot, scanning
backwards past files that fail their integrity check.  A torn write from a
crash mid-checkpoint therefore costs at most one cadence of progress, not
the run.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from ..errors import CheckpointCorruptError, CheckpointError, ConfigError
from .snapshot import read_snapshot, write_snapshot

_SNAPSHOT_RE = re.compile(r"^ckpt-(\d{8})\.bin$")


@dataclass(frozen=True)
class LoadedSnapshot:
    """Result of :meth:`CheckpointStore.load_latest`.

    ``corrupted_skipped`` counts newer snapshots that failed their
    integrity check and were passed over to reach this one.
    """

    iteration: int
    payload: dict
    path: str
    corrupted_skipped: int = 0


class CheckpointStore:
    """Snapshot ring in one directory.

    Args:
        directory: where snapshots live; created if missing.
        keep: how many recent snapshots to retain (older ones are deleted
            after each successful write).
    """

    def __init__(self, directory: str, *, keep: int = 3) -> None:
        if keep <= 0:
            raise ConfigError("must retain at least one snapshot")
        self.directory = directory
        self.keep = keep
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {exc}"
            ) from exc

    def path_for(self, iteration: int) -> str:
        return os.path.join(self.directory, f"ckpt-{iteration:08d}.bin")

    def iterations(self) -> list[int]:
        """Iteration numbers of all snapshots on disk, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def save(self, iteration: int, payload: dict) -> int:
        """Write one snapshot and prune the ring; returns bytes written."""
        if iteration < 0:
            raise ConfigError("iteration must be non-negative")
        written = write_snapshot(self.path_for(iteration), payload)
        self._prune()
        return written

    def _prune(self) -> None:
        iterations = self.iterations()
        for iteration in iterations[: max(0, len(iterations) - self.keep)]:
            try:
                os.unlink(self.path_for(iteration))
            except OSError:
                pass  # already gone; retention is best-effort

    def load_latest(self) -> LoadedSnapshot | None:
        """The newest snapshot that passes its integrity check.

        Corrupted snapshots are skipped (newest first) and counted; returns
        ``None`` when the directory holds no valid snapshot at all.
        """
        skipped = 0
        for iteration in reversed(self.iterations()):
            path = self.path_for(iteration)
            try:
                payload = read_snapshot(path)
            except CheckpointCorruptError:
                skipped += 1
                continue
            return LoadedSnapshot(
                iteration=iteration,
                payload=payload,
                path=path,
                corrupted_skipped=skipped,
            )
        return None
