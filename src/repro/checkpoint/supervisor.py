"""Supervised run lifecycle: checkpoint cadence, crashes, watchdog, restarts.

The :class:`RunSupervisor` plays the role of a cluster job manager around
one functional training run.  It owns a :class:`CheckpointStore`, drives
the pipeline through its ``on_step`` hook (writing a snapshot every
``checkpoint_every`` completed iterations), injects the fault plan's
:class:`~repro.faults.plan.CrashEvent` process deaths, watches for stalled
iterations via the loader's *modeled* clock, and — after a crash — builds
a fresh pipeline, restores the latest snapshot that passes its integrity
check (skipping corrupted ones), applies an exponential restart backoff,
and continues.  Because every piece of run state round-trips through
``state_dict``, the supervised run's losses, counters and report are
bit-identical to an uninterrupted run of the same length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import (
    ConfigError,
    FaultError,
    RestartLimitError,
    SimulatedCrashError,
    StalledRunError,
)
from ..pipeline.metrics import RunReport
from ..pipeline.runner import TrainingPipeline, TrainingResult
from .store import CheckpointStore


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervised run lifecycle.

    Args:
        checkpoint_every: write a snapshot each time this many iterations
            complete (a final snapshot is always written at run end).
        keep_snapshots: retained-snapshot ring size.
        max_restarts: restarts allowed before the run is declared dead
            with :class:`~repro.errors.RestartLimitError`.
        restart_backoff_base_s: modeled wait before the first restart.
        restart_backoff_multiplier: growth factor of successive backoffs.
        watchdog_stall_threshold_s: kill-and-restart an attempt when one
            iteration consumes more than this much *modeled* time; ``None``
            disables the watchdog.
        resume: restore from the newest valid snapshot before (re)starting;
            disabling gives every attempt a cold start.
    """

    checkpoint_every: int = 10
    keep_snapshots: int = 3
    max_restarts: int = 3
    restart_backoff_base_s: float = 1.0
    restart_backoff_multiplier: float = 2.0
    watchdog_stall_threshold_s: float | None = None
    resume: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every <= 0:
            raise ConfigError("checkpoint_every must be positive")
        if self.keep_snapshots <= 0:
            raise ConfigError("keep_snapshots must be positive")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be non-negative")
        if self.restart_backoff_base_s < 0:
            raise ConfigError("restart backoff must be non-negative")
        if self.restart_backoff_multiplier < 1.0:
            raise ConfigError("restart backoff multiplier must be >= 1")
        if (
            self.watchdog_stall_threshold_s is not None
            and self.watchdog_stall_threshold_s <= 0
        ):
            raise ConfigError("watchdog threshold must be positive")


@dataclass
class CheckpointSummary:
    """What the supervisor did to keep the run alive."""

    snapshots_written: int = 0
    snapshot_bytes: int = 0
    restores: int = 0
    corrupted_skipped: int = 0
    crashes: int = 0
    watchdog_stalls: int = 0
    restarts: int = 0
    backoff_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "snapshots_written": self.snapshots_written,
            "snapshot_bytes": self.snapshot_bytes,
            "restores": self.restores,
            "corrupted_skipped": self.corrupted_skipped,
            "crashes": self.crashes,
            "watchdog_stalls": self.watchdog_stalls,
            "restarts": self.restarts,
            "backoff_s": self.backoff_s,
        }


@dataclass(frozen=True)
class SupervisedRunResult:
    """Outcome of a supervised run: training result + report + supervision."""

    result: TrainingResult
    report: RunReport
    summary: CheckpointSummary


class RunSupervisor:
    """Keeps one training run alive across simulated crashes.

    Args:
        pipeline_factory: builds a *fresh* pipeline with the run's exact
            configuration; called once per attempt (the modeled process
            start).  Construction-time RNG draws do not matter — the
            restored snapshot overwrites every stream.
        checkpoint_dir: where snapshots live (or a ready-made
            :class:`CheckpointStore`).
        config: lifecycle knobs.
        summary: optional pre-existing summary to accumulate into (so a
            CLI can thread one summary through several phases).
        blackbox_path: optional path; when the run dies on a fault and the
            pipeline's tracer carries a flight recorder, the recorder is
            dumped there (crash noted last) before the restart logic runs.

    Crash events come from the pipeline loader's fault plan
    (``crash_events``); they are one-shot — the supervisor, which survives
    the modeled process death, remembers which have fired.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[], TrainingPipeline],
        checkpoint_dir: str | CheckpointStore,
        *,
        config: SupervisorConfig | None = None,
        summary: CheckpointSummary | None = None,
        blackbox_path: str | None = None,
    ) -> None:
        self.pipeline_factory = pipeline_factory
        self.config = config if config is not None else SupervisorConfig()
        if isinstance(checkpoint_dir, CheckpointStore):
            self.store = checkpoint_dir
        else:
            self.store = CheckpointStore(
                checkpoint_dir, keep=self.config.keep_snapshots
            )
        self.summary = summary if summary is not None else CheckpointSummary()
        self.blackbox_path = blackbox_path
        self._fired_crashes: set[int] = set()

    # ------------------------------------------------------------------

    def _crash_iterations(self, pipeline: TrainingPipeline) -> set[int]:
        plan = getattr(pipeline.loader, "fault_plan", None)
        if plan is None:
            return set()
        return {event.at_iteration for event in plan.crash_events}

    def run(self, num_iterations: int) -> SupervisedRunResult:
        """Train ``num_iterations`` total iterations, surviving crashes.

        Returns the same losses/report an unsupervised
        ``pipeline.train(num_iterations)`` would produce, plus the
        :class:`CheckpointSummary`.  Raises
        :class:`~repro.errors.RestartLimitError` when the restart budget
        runs out before the run completes.
        """
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        config = self.config
        attempt = 0
        while True:
            pipeline = self.pipeline_factory()
            crash_at = self._crash_iterations(pipeline)
            if config.resume:
                loaded = self.store.load_latest()
                if loaded is not None:
                    pipeline.load_state_dict(loaded.payload)
                    self.summary.restores += 1
                    self.summary.corrupted_skipped += loaded.corrupted_skipped
            if pipeline.completed_steps >= num_iterations:
                return SupervisedRunResult(
                    result=pipeline.result(),
                    report=pipeline.report,
                    summary=self.summary,
                )
            watchdog_last = [self._loader_now(pipeline)]

            def on_step(pipe: TrainingPipeline) -> None:
                step = pipe.completed_steps
                now = self._loader_now(pipe)
                if (
                    config.watchdog_stall_threshold_s is not None
                    and now is not None
                    and watchdog_last[0] is not None
                    and now - watchdog_last[0]
                    > config.watchdog_stall_threshold_s
                ):
                    self.summary.watchdog_stalls += 1
                    raise StalledRunError(
                        f"iteration {step} consumed "
                        f"{now - watchdog_last[0]:.3f} modeled seconds "
                        f"(threshold "
                        f"{config.watchdog_stall_threshold_s:.3f})"
                    )
                watchdog_last[0] = now
                if step % config.checkpoint_every == 0 or step == num_iterations:
                    written = self.store.save(step, pipe.state_dict())
                    self.summary.snapshots_written += 1
                    self.summary.snapshot_bytes += written
                if step in crash_at and step not in self._fired_crashes:
                    self._fired_crashes.add(step)
                    self.summary.crashes += 1
                    raise SimulatedCrashError(
                        f"injected crash after iteration {step}"
                    )

            try:
                result = pipeline.train(
                    num_iterations - pipeline.completed_steps,
                    on_step=on_step,
                )
            except FaultError as exc:
                if isinstance(exc, RestartLimitError):
                    raise
                self._dump_blackbox(pipeline, exc)
                attempt += 1
                if attempt > config.max_restarts:
                    raise RestartLimitError(
                        f"run still failing after {config.max_restarts} "
                        f"restarts: {exc}"
                    ) from exc
                self.summary.restarts += 1
                self.summary.backoff_s += (
                    config.restart_backoff_base_s
                    * config.restart_backoff_multiplier ** (attempt - 1)
                )
                continue
            return SupervisedRunResult(
                result=result,
                report=pipeline.report,
                summary=self.summary,
            )

    def _dump_blackbox(self, pipeline: TrainingPipeline, exc: Exception) -> None:
        """Dump the flight recorder on a fatal fault, crash noted last."""
        if self.blackbox_path is None:
            return
        tracer = getattr(pipeline.loader, "tracer", None)
        flight = getattr(tracer, "flight", None)
        if flight is None:
            return
        now = self._loader_now(pipeline)
        at_s = now if now is not None else 0.0
        flight.note(
            "crash",
            type(exc).__name__,
            "alerts",
            at_s,
            detail={"message": str(exc)},
        )
        flight.dump(
            self.blackbox_path,
            trigger=f"{type(exc).__name__}: {exc}",
            at_s=at_s,
            context={
                "completed_steps": int(pipeline.completed_steps),
                "restarts_so_far": self.summary.restarts,
            },
        )

    @staticmethod
    def _loader_now(pipeline: TrainingPipeline) -> float | None:
        now = getattr(pipeline.loader, "sim_now_s", None)
        return float(now) if now is not None else None
