"""GIDS reproduction: GPU-initiated direct storage access for GNN training.

A faithful, laptop-scale reproduction of "GIDS: Accelerating Sampling and
Aggregation Operations in GNN Frameworks with GPU Initiated Direct Storage
Accesses" (PVLDB 17(6), 2024).  The GPU/NVMe hardware is replaced by
calibrated device models (see ``DESIGN.md``); everything algorithmic —
sampling, caching, hot-node ranking, the accumulator, window buffering, the
GraphSAGE model — executes for real.

Quickstart::

    from repro import GIDSDataLoader, SystemConfig, load_scaled

    dataset = load_scaled("IGB-tiny", scale=1.0, seed=0)
    loader = GIDSDataLoader(dataset, SystemConfig())
    report = loader.run(num_iterations=20)
    print(report.e2e_time, report.gpu_cache_hit_ratio)
"""

from .config import (
    A100,
    EPYC_7702,
    INTEL_OPTANE,
    LoaderConfig,
    PCIE_GEN4_X16,
    SAMSUNG_980PRO,
    CPUSpec,
    GPUSpec,
    PCIeSpec,
    SSDSpec,
    SystemConfig,
)
from .errors import (
    CapacityError,
    CheckpointCorruptError,
    CheckpointError,
    ConfigError,
    DatasetError,
    FaultError,
    FaultPlanError,
    GraphError,
    IntegrityError,
    ObservatoryError,
    PipelineError,
    ReproError,
    RestartLimitError,
    RetryExhaustedError,
    SamplingError,
    ServingError,
    SimulatedCrashError,
    StalledRunError,
    StorageError,
    TelemetryError,
    UnrepairablePageError,
)
from .faults import (
    CorruptionEvent,
    CrashEvent,
    DeviceEvent,
    FaultInjector,
    FaultPlan,
    FaultySSDArray,
    RetryPolicy,
)
from .integrity import (
    CorruptionLedger,
    PageChecksummer,
    ReadVerifier,
    Scrubber,
)
from .checkpoint import (
    CheckpointStore,
    CheckpointSummary,
    RunSupervisor,
    SupervisedRunResult,
    SupervisorConfig,
    read_snapshot,
    write_snapshot,
)
from .graph import (
    DATASETS,
    CSRGraph,
    DatasetSpec,
    HeteroGraph,
    PartitionResult,
    ScaledDataset,
    bfs_partition,
    edge_cut,
    get_dataset_spec,
    hot_node_ranking,
    load_scaled,
    pagerank,
    partition_graph,
    power_law_graph,
    refine_partition,
    reverse_pagerank,
    uniform_graph,
)
from .core import (
    BaMDataLoader,
    DynamicAccessAccumulator,
    GIDSDataLoader,
    WindowBuffer,
    WindowRecommendation,
    best_window_depth,
    expected_iops,
    measure_window_depths,
    recommend_window_depth,
    required_overlapping_accesses,
)
from .baselines import DGLMmapLoader, GinexLoader, UVALoader
from .cache import BeladyCache, ConstantCPUBuffer, GPUSoftwareCache
from .pipeline import (
    RunReport,
    StageTimes,
    TrainingPipeline,
    TrainingResult,
    iterations_to_csv,
    report_to_dict,
    report_to_json,
    reports_to_comparison_csv,
)
from .sampling import (
    ClusterSampler,
    HeteroNeighborSampler,
    LadiesSampler,
    MiniBatch,
    NeighborSampler,
)
from .sim import CPUModel, GPUModel, PageCache, PCIeLink, SSDArray, SSDMicrobench
from .storage import FeatureStore, PageLayout
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    render_trace,
    summarize,
    summarize_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .observatory import (
    AlertRule,
    ComparisonResult,
    RunHistory,
    RunRecord,
    SLOMonitor,
    attribute_summary,
    compare_summaries,
    compare_to_history,
    config_fingerprint,
    load_alert_rules,
    system_spec_block,
    what_if_table,
)
from .serving import (
    ArrivalConfig,
    ArrivalProcess,
    InferenceServer,
    ServingConfig,
    ServingReport,
    ServingStats,
)
from .training import GraphSAGE, synthetic_labels

__version__ = "1.0.0"

__all__ = [
    # configuration
    "A100",
    "EPYC_7702",
    "INTEL_OPTANE",
    "PCIE_GEN4_X16",
    "SAMSUNG_980PRO",
    "CPUSpec",
    "GPUSpec",
    "LoaderConfig",
    "PCIeSpec",
    "SSDSpec",
    "SystemConfig",
    # errors
    "CapacityError",
    "CheckpointCorruptError",
    "CheckpointError",
    "ConfigError",
    "DatasetError",
    "FaultError",
    "FaultPlanError",
    "GraphError",
    "IntegrityError",
    "ObservatoryError",
    "PipelineError",
    "ReproError",
    "RestartLimitError",
    "RetryExhaustedError",
    "SamplingError",
    "ServingError",
    "SimulatedCrashError",
    "StalledRunError",
    "StorageError",
    "TelemetryError",
    "UnrepairablePageError",
    # fault injection & resilience
    "CorruptionEvent",
    "CrashEvent",
    "DeviceEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultySSDArray",
    "RetryPolicy",
    # data integrity
    "CorruptionLedger",
    "PageChecksummer",
    "ReadVerifier",
    "Scrubber",
    # checkpoint / supervised runs
    "CheckpointStore",
    "CheckpointSummary",
    "RunSupervisor",
    "SupervisedRunResult",
    "SupervisorConfig",
    "read_snapshot",
    "write_snapshot",
    # graphs & datasets
    "DATASETS",
    "CSRGraph",
    "DatasetSpec",
    "HeteroGraph",
    "ScaledDataset",
    "get_dataset_spec",
    "PartitionResult",
    "bfs_partition",
    "edge_cut",
    "hot_node_ranking",
    "load_scaled",
    "pagerank",
    "partition_graph",
    "power_law_graph",
    "refine_partition",
    "reverse_pagerank",
    "uniform_graph",
    # the GIDS core
    "BaMDataLoader",
    "DynamicAccessAccumulator",
    "GIDSDataLoader",
    "WindowBuffer",
    "WindowRecommendation",
    "best_window_depth",
    "expected_iops",
    "measure_window_depths",
    "recommend_window_depth",
    "required_overlapping_accesses",
    # baselines
    "DGLMmapLoader",
    "GinexLoader",
    "UVALoader",
    # caches
    "BeladyCache",
    "ConstantCPUBuffer",
    "GPUSoftwareCache",
    # pipeline
    "RunReport",
    "StageTimes",
    "TrainingPipeline",
    "TrainingResult",
    "iterations_to_csv",
    "report_to_dict",
    "report_to_json",
    "reports_to_comparison_csv",
    # sampling
    "ClusterSampler",
    "HeteroNeighborSampler",
    "LadiesSampler",
    "MiniBatch",
    "NeighborSampler",
    # simulation substrate
    "CPUModel",
    "GPUModel",
    "PCIeLink",
    "PageCache",
    "SSDArray",
    "SSDMicrobench",
    # storage
    "FeatureStore",
    "PageLayout",
    # telemetry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "render_trace",
    "summarize",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    # observatory
    "AlertRule",
    "ComparisonResult",
    "RunHistory",
    "RunRecord",
    "SLOMonitor",
    "attribute_summary",
    "compare_summaries",
    "compare_to_history",
    "config_fingerprint",
    "load_alert_rules",
    "system_spec_block",
    "what_if_table",
    # serving
    "ArrivalConfig",
    "ArrivalProcess",
    "InferenceServer",
    "ServingConfig",
    "ServingReport",
    "ServingStats",
    # training
    "GraphSAGE",
    "synthetic_labels",
]
