"""Bottleneck attribution: achieved-vs-peak utilization and what-if analysis.

The paper's core argument is a resource-balancing one: epoch time is governed
by whichever of SSD IOPS, PCIe ingress bandwidth, the CPU-buffer path, or GPU
cache service is the binding constraint (Figs. 5, 8-12), and GIDS wins by
shifting load between those resources.  This module turns a run-report export
into that analysis:

* **Utilization** — for each modeled resource, the rate the run actually
  achieved during its aggregation phase (straight from
  :class:`~repro.sim.counters.TransferCounters`) divided by the peak the sim
  specs allow.  A roofline-style verdict names the binding bottleneck.
* **What-if sensitivity** — the Eq. 2-3 analytic SSD model
  (:class:`~repro.sim.ssd.SSDArray`) plus the PCIe link-sharing formula
  predict how epoch time would move for +1 SSD, a larger constant CPU buffer,
  and a deeper look-ahead window.

Everything operates on the plain-dict summaries produced by
:func:`repro.pipeline.export.report_to_dict`, so the analysis works equally
on a live :class:`~repro.pipeline.metrics.RunReport` (via the export path)
and on a report JSON loaded from disk (``repro analyze``).
"""

from __future__ import annotations

import math

from ..config import SSDSpec, SystemConfig
from ..errors import ObservatoryError
from ..sim.pcie import PCIeLink
from ..sim.ssd import SSDArray

#: Resources attributed over the aggregation phase, in display order.
AGGREGATION_RESOURCES = ("ssd", "pcie", "cpu.buffer", "gpu.hbm")

#: Fraction of storage reads the "+CPU buffer" what-if assumes the enlarged
#: hot set absorbs.  The report alone cannot say how much of the access
#: distribution's tail extra capacity would capture, so the scenario is a
#: sensitivity probe at a fixed, documented absorption, not a fit.
CPU_BUFFER_ABSORPTION = 0.25

#: Fraction of one GPU's storage reads the fleet what-if assumes a peer's
#: private cache already holds (partition-aware shards make neighboring
#: seeds land together, so workers share hot neighborhoods).  Like
#: :data:`CPU_BUFFER_ABSORPTION`, a documented sensitivity constant — the
#: measured ratio of a real fleet run lives in its ``fleet`` export block.
PEER_CACHE_ABSORPTION = 0.35

#: Data-parallel widths the fleet what-if rows are computed for.
FLEET_WHAT_IF_SIZES = (2, 4, 8)

#: Keys every spec block must carry (the export embeds them so a saved
#: report stays analyzable without the original :class:`SystemConfig`).
_SPEC_KEYS = (
    "ssd",
    "ssd_read_latency_s",
    "ssd_peak_iops",
    "page_bytes",
    "num_ssds",
    "pcie_bandwidth",
    "cpu_path_efficiency",
    "hbm_bandwidth",
    "training_consumption_rate",
)

#: Summary keys attribution reads; their absence means the input is not a
#: run-report export.
_SUMMARY_KEYS = ("loader", "iterations", "stage_seconds", "counters")


def system_spec_block(system: SystemConfig) -> dict:
    """Flatten the peak-rate specs attribution needs into a JSON block.

    ``ssd_peak_iops`` is per device; collective peaks are derived from
    ``num_ssds`` so the what-if scenarios can re-solve Eq. 2-3 for a
    different array width.
    """
    link = PCIeLink(system.pcie)
    return {
        "ssd": system.ssd.name,
        "ssd_read_latency_s": system.ssd.read_latency_s,
        "ssd_peak_iops": system.ssd.peak_iops,
        "page_bytes": system.ssd.page_bytes,
        "num_ssds": system.num_ssds,
        "pcie_bandwidth": system.pcie.bandwidth_bytes,
        "cpu_path_efficiency": link.cpu_path_efficiency,
        "hbm_bandwidth": system.gpu.hbm_bandwidth,
        "training_consumption_rate": system.gpu.training_consumption_rate,
    }


def validate_summary(summary: object) -> dict:
    """Check that ``summary`` looks like a run-report export; return it.

    Raises :class:`~repro.errors.ObservatoryError` on anything else: wrong
    JSON shape, missing schema version, a schema newer than this code, or
    missing required blocks.  Used by every CLI analysis entry point so
    malformed inputs exit with a one-line message instead of a traceback.
    """
    # Local import: pipeline.export imports this module for the
    # ``attribution`` block, so the reverse import must stay off the
    # module level.
    from ..pipeline.export import EXPORT_SCHEMA_VERSION

    if not isinstance(summary, dict):
        raise ObservatoryError(
            f"expected a run-report object, got {type(summary).__name__}"
        )
    version = summary.get("schema_version")
    if not isinstance(version, int):
        raise ObservatoryError(
            "input is not a run-report export (no schema_version)"
        )
    if version > EXPORT_SCHEMA_VERSION:
        raise ObservatoryError(
            f"report schema_version {version} is newer than the supported "
            f"{EXPORT_SCHEMA_VERSION}; upgrade repro to analyze it"
        )
    missing = [key for key in _SUMMARY_KEYS if key not in summary]
    if missing:
        raise ObservatoryError(
            f"report export is missing required keys: {missing}"
        )
    return summary


def _validate_specs(specs: dict) -> dict:
    if not isinstance(specs, dict):
        raise ObservatoryError("spec block must be an object")
    missing = [key for key in _SPEC_KEYS if key not in specs]
    if missing:
        raise ObservatoryError(f"spec block is missing keys: {missing}")
    return specs


def _ratio(num: float, den: float) -> float:
    return num / den if den > 0 else 0.0


def _finite(value: float | None) -> float | None:
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _combine_e2e(prep_s: float, train_s: float, overlapped: bool) -> float:
    """End-to-end time rule shared with :class:`RunReport.e2e_time`."""
    return max(prep_s, train_s) if overlapped else prep_s + train_s


def _ssd_array(specs: dict, num_ssds: int) -> SSDArray:
    spec = SSDSpec(
        name=str(specs["ssd"]),
        read_latency_s=float(specs["ssd_read_latency_s"]),
        peak_iops=float(specs["ssd_peak_iops"]),
        page_bytes=int(specs["page_bytes"]),
    )
    return SSDArray(spec, num_ssds)


def attribute_summary(summary: dict, specs: dict) -> dict:
    """Compute the full attribution block for one run-report summary.

    Returns a JSON-ready dict with the spec snapshot, per-resource
    achieved/peak/utilization numbers, stage fractions, the binding
    bottleneck with a one-line verdict, and the what-if table.
    """
    validate_summary(summary)
    _validate_specs(specs)

    counters = summary["counters"]
    faults = summary.get("faults") or {}
    stage = summary["stage_seconds"]
    agg_s = float(stage.get("aggregation") or 0.0)
    train_s = float(stage.get("training") or 0.0)
    fallback_bytes = int(faults.get("fallback_bytes") or 0)

    storage_requests = int(counters["storage_requests"])
    storage_bytes = int(counters["storage_bytes"])
    cpu_bytes = int(counters["cpu_buffer_bytes"]) + fallback_bytes
    hbm_bytes = int(counters["gpu_cache_bytes"])
    ingress_bytes = storage_bytes + cpu_bytes

    num_ssds = int(specs["num_ssds"])
    peak_iops = float(specs["ssd_peak_iops"]) * num_ssds
    pcie_bw = float(specs["pcie_bandwidth"])
    cpu_path_bw = pcie_bw * float(specs["cpu_path_efficiency"])
    hbm_bw = float(specs["hbm_bandwidth"])
    train_rate = float(specs["training_consumption_rate"])

    total_input_nodes = int(summary.get("total_input_nodes") or 0)
    resources = {
        "ssd": {
            "achieved": _ratio(storage_requests, agg_s),
            "peak": peak_iops,
            "unit": "IOPS",
        },
        "pcie": {
            "achieved": _ratio(ingress_bytes, agg_s),
            "peak": pcie_bw,
            "unit": "B/s",
        },
        "cpu.buffer": {
            "achieved": _ratio(cpu_bytes, agg_s),
            "peak": cpu_path_bw,
            "unit": "B/s",
        },
        "gpu.hbm": {
            "achieved": _ratio(hbm_bytes, agg_s),
            "peak": hbm_bw,
            "unit": "B/s",
        },
        "gpu.training": {
            "achieved": _ratio(total_input_nodes, train_s),
            "peak": train_rate,
            "unit": "req/s",
        },
    }
    for entry in resources.values():
        entry["utilization"] = _ratio(entry["achieved"], entry["peak"])

    bottleneck, verdict = _verdict(summary, stage, resources)
    return {
        "specs": dict(specs),
        "resources": resources,
        "stage_fractions": _stage_fractions(stage),
        "bottleneck": bottleneck,
        "verdict": verdict,
        "what_if": what_if_table(summary, specs),
    }


def _stage_fractions(stage: dict) -> dict:
    total = sum(float(stage.get(s) or 0.0) for s in stage)
    if total <= 0:
        return {name: 0.0 for name in stage}
    return {
        name: float(stage.get(name) or 0.0) / total for name in stage
    }


def _verdict(
    summary: dict, stage: dict, resources: dict
) -> tuple[str, str]:
    """Name the binding bottleneck and phrase the roofline verdict.

    The training and sampling stages run at their modeled rates by
    construction (utilization is 1.0 whenever they run at all), so the
    stage breakdown decides *which phase* binds, and the achieved-vs-peak
    ratios decide *which resource* within the aggregation phase.
    """
    sampling_s = float(stage.get("sampling") or 0.0)
    agg_s = float(stage.get("aggregation") or 0.0)
    transfer_s = float(stage.get("transfer") or 0.0)
    train_s = float(stage.get("training") or 0.0)
    prep_s = sampling_s + agg_s + transfer_s
    overlapped = bool(summary.get("overlapped"))

    if prep_s == 0.0 and train_s == 0.0:
        return "idle", "run recorded no modeled time"
    if overlapped and train_s >= prep_s:
        return (
            "gpu.training",
            "training-bound: data preparation overlaps and keeps up "
            f"(prep {prep_s:.4g}s <= training {train_s:.4g}s); faster "
            "storage would not shorten the epoch",
        )
    fullgraph = summary.get("fullgraph")
    if fullgraph and not (train_s >= prep_s and train_s > 0.0):
        # Partition-sweep runs stream features and spilled activations on
        # the sequential path; when that streaming dominates compute the
        # roofline answer is bandwidth (or HBM), not random IOPS — and it
        # outranks the generic stage dispatch, because halo gathers and
        # sequential streams are one data path in the sweep.
        traffic = fullgraph.get("traffic") or {}
        seq_s = (
            float(traffic.get("feature_sequential_s") or 0.0)
            + float(traffic.get("activation_reload_s") or 0.0)
            + float(traffic.get("activation_halo_s") or 0.0)
            + float(traffic.get("activation_spill_s") or 0.0)
        )
        compute_s = float(traffic.get("compute_s") or 0.0)
        if seq_s >= compute_s:
            return (
                "ssd.sequential",
                "sequential-read-bound: partition sweeps spend "
                f"{seq_s:.4g}s streaming features and spilled activations "
                f"vs {compute_s:.4g}s of sweep compute; more HBM (fewer "
                "spills) or faster sequential bandwidth shortens the epoch",
            )
    if not overlapped and train_s >= prep_s and train_s > 0.0:
        dominant_stage = "training"
    else:
        dominant_stage = max(
            ("sampling", "aggregation", "transfer"),
            key=lambda name: float(stage.get(name) or 0.0),
        )
    if dominant_stage == "training":
        return (
            "gpu.training",
            "training-bound: the serialized pipeline spends "
            f"{train_s:.4g}s of its time in model training",
        )
    if dominant_stage == "sampling":
        return (
            "gpu.sampling",
            "sampling-bound: graph sampling dominates data preparation "
            f"({sampling_s:.4g}s vs {agg_s:.4g}s aggregation)",
        )
    if dominant_stage == "transfer":
        return (
            "pcie",
            "transfer-bound: the explicit host-to-GPU copy stage "
            f"dominates ({transfer_s:.4g}s)",
        )
    name = max(
        AGGREGATION_RESOURCES,
        key=lambda r: resources[r]["utilization"],
    )
    entry = resources[name]
    return (
        name,
        f"{name}-bound: aggregation dominates and {name} runs at "
        f"{entry['utilization']:.1%} of its peak "
        f"({entry['achieved']:.4g} of {entry['peak']:.4g} {entry['unit']})",
    )


def what_if_table(summary: dict, specs: dict) -> list[dict]:
    """Predict epoch-time deltas for the paper's three balancing levers.

    Each scenario re-solves the Eq. 2-3 analytic SSD service model and the
    PCIe link-sharing formula at per-iteration granularity, then scales the
    *measured* aggregation time by the predicted ratio — so a scenario that
    leaves the model inputs unchanged predicts exactly the measured run.

    Scenarios:

    * ``+1 SSD`` — one more device striped into the array (collective peak
      IOPS and bandwidth grow, Eq. 2-3 steady state shortens).
    * ``+CPU buffer`` — the enlarged hot set absorbs
      :data:`CPU_BUFFER_ABSORPTION` of storage reads onto the CPU path.
    * ``2x window depth`` — a deeper look-ahead window lets the accumulator
      merge twice the iterations per storage kernel, halving the per-
      iteration share of the fixed T_i/T_t phases.
    * ``capacity`` — not a change at all but a headroom read-out: the max
      sustainable feature-request rate at the current bottleneck resource
      (achieved request rate divided by the bottleneck's utilization), the
      number that answers "how many req/s before this array saturates?".
      Its predicted times equal the measured run (delta 0) and it carries
      the extra ``max_sustainable_req_s``/``bottleneck`` keys.
    * ``capacity @{n} GPUs`` — one row per :data:`FLEET_WHAT_IF_SIZES`
      width: the epoch re-solved for ``n`` data-parallel GPUs sharing the
      SSD array (work / ``n``, per-GPU IOPS peak / ``n``), plus a
      peer-cache variant (:data:`PEER_CACHE_ABSORPTION` of storage reads
      served from peer caches) — the "would another GPU help, or do I
      need another SSD?" answer.
    * ``degraded capacity (1 SSD down)`` — the epoch re-solved with one
      device of the array gone: the redundant prediction keeps every
      read on storage (surviving replicas), the ``no_redundancy``
      variant sends the dead device's striping share to the CPU mirror;
      their gap is what the redundancy overhead buys during an outage.
    """
    validate_summary(summary)
    _validate_specs(specs)
    iterations = int(summary["iterations"])
    stage = summary["stage_seconds"]
    sampling_s = float(stage.get("sampling") or 0.0)
    agg_s = float(stage.get("aggregation") or 0.0)
    transfer_s = float(stage.get("transfer") or 0.0)
    train_s = float(stage.get("training") or 0.0)
    overlapped = bool(summary.get("overlapped"))
    if iterations <= 0 or agg_s <= 0.0:
        return []

    counters = summary["counters"]
    faults = summary.get("faults") or {}
    page_bytes = int(specs["page_bytes"])
    pages = int(counters["storage_requests"]) / iterations
    storage_bytes = int(counters["storage_bytes"]) / iterations
    cpu_bytes = (
        int(counters["cpu_buffer_bytes"])
        + int(faults.get("fallback_bytes") or 0)
    ) / iterations
    hbm_bytes = int(counters["gpu_cache_bytes"]) / iterations

    pcie_bw = float(specs["pcie_bandwidth"])
    cpu_path_bw = pcie_bw * float(specs["cpu_path_efficiency"])
    hbm_bw = float(specs["hbm_bandwidth"])
    num_ssds = int(specs["num_ssds"])
    base_array = _ssd_array(specs, num_ssds)

    def predict(
        array: SSDArray,
        n_pages: float,
        s_bytes: float,
        c_bytes: float,
        merge: float = 1.0,
    ) -> float:
        """Per-iteration aggregation time from the analytic models."""
        n_merged = int(round(n_pages * merge))
        storage_time = array.batch_service_time(max(n_merged, 0)) / merge
        cpu_time = c_bytes / cpu_path_bw
        link_floor = (s_bytes + c_bytes) / pcie_bw
        return max(storage_time, cpu_time, link_floor) + hbm_bytes / hbm_bw

    base_pred = predict(base_array, pages, storage_bytes, cpu_bytes)
    base_e2e = _combine_e2e(
        sampling_s + agg_s + transfer_s, train_s, overlapped
    )

    moved = CPU_BUFFER_ABSORPTION * pages
    scenarios = [
        (
            "+1 SSD",
            f"grow the array from {num_ssds} to {num_ssds + 1} devices",
            predict(
                _ssd_array(specs, num_ssds + 1),
                pages,
                storage_bytes,
                cpu_bytes,
            ),
        ),
        (
            "+CPU buffer",
            f"grow the hot set to absorb {CPU_BUFFER_ABSORPTION:.0%} of "
            "storage reads onto the CPU path",
            predict(
                base_array,
                pages - moved,
                storage_bytes - moved * page_bytes,
                cpu_bytes + moved * page_bytes,
            ),
        ),
        (
            "2x window depth",
            "merge twice the iterations per storage kernel (amortizes "
            "T_init/T_term)",
            predict(base_array, pages, storage_bytes, cpu_bytes, merge=2.0),
        ),
    ]

    table = []
    for name, description, pred in scenarios:
        ratio = pred / base_pred if base_pred > 0 else 1.0
        new_agg = agg_s * ratio
        new_e2e = _combine_e2e(
            sampling_s + new_agg + transfer_s, train_s, overlapped
        )
        delta = new_e2e - base_e2e
        table.append(
            {
                "scenario": name,
                "description": description,
                "predicted_aggregation_seconds": _finite(new_agg),
                "predicted_e2e_seconds": _finite(new_e2e),
                "delta_seconds": _finite(delta),
                "delta_fraction": _finite(
                    delta / base_e2e if base_e2e > 0 else 0.0
                ),
            }
        )

    # Full-graph sweep runs carry their own memory-wall lever: the trainer
    # re-plans the sweep at double the HBM budget and re-prices activation
    # spill/reload at HBM bandwidth when the doubled budget makes them
    # resident.  The row surfaces that prediction next to the paper's
    # balancing levers.
    fullgraph = summary.get("fullgraph")
    if fullgraph:
        what_if_hbm = fullgraph.get("what_if_2x_hbm") or {}
        pred_e2e = what_if_hbm.get("predicted_e2e_seconds")
        if pred_e2e is not None:
            resident = bool(what_if_hbm.get("activations_resident"))
            delta = float(pred_e2e) - base_e2e
            table.append(
                {
                    "scenario": "2x HBM",
                    "description": (
                        "double the modeled HBM budget; "
                        + (
                            "activations become resident (spill/reload "
                            "repriced at HBM bandwidth)"
                            if resident
                            else "activations still spill, epoch unchanged"
                        )
                    ),
                    "predicted_aggregation_seconds": None,
                    "predicted_e2e_seconds": _finite(float(pred_e2e)),
                    "delta_seconds": _finite(delta),
                    "delta_fraction": _finite(
                        delta / base_e2e if base_e2e > 0 else 0.0
                    ),
                    "activations_resident": resident,
                    "speedup": _finite(what_if_hbm.get("speedup")),
                }
            )

    # Capacity headroom at the binding aggregation resource: how far the
    # achieved request rate could scale before the busiest resource hits
    # its peak.  Uses the run-total (not per-iteration) rates, mirroring
    # the utilization math in :func:`attribute_summary`.
    total_storage_bytes = int(counters["storage_bytes"])
    total_cpu_bytes = int(counters["cpu_buffer_bytes"]) + int(
        faults.get("fallback_bytes") or 0
    )
    total_hbm_bytes = int(counters["gpu_cache_bytes"])
    utilizations = {
        "ssd": _ratio(
            _ratio(int(counters["storage_requests"]), agg_s),
            float(specs["ssd_peak_iops"]) * num_ssds,
        ),
        "pcie": _ratio(
            _ratio(total_storage_bytes + total_cpu_bytes, agg_s), pcie_bw
        ),
        "cpu.buffer": _ratio(_ratio(total_cpu_bytes, agg_s), cpu_path_bw),
        "gpu.hbm": _ratio(_ratio(total_hbm_bytes, agg_s), hbm_bw),
    }
    bottleneck = max(utilizations, key=utilizations.get)
    utilization = utilizations[bottleneck]
    total_requests = (
        int(counters["storage_requests"])
        + int(counters["cpu_buffer_requests"])
        + int(counters["gpu_cache_hits"])
        + int(faults.get("fallback_requests") or 0)
    )
    achieved_req_s = _ratio(total_requests, agg_s)
    max_req_s = (
        achieved_req_s / utilization if utilization > 0 else None
    )
    table.append(
        {
            "scenario": "capacity",
            "description": (
                f"max sustainable feature-request rate before the "
                f"{bottleneck} resource saturates (currently at "
                f"{utilization:.1%})"
            ),
            "predicted_aggregation_seconds": _finite(agg_s),
            "predicted_e2e_seconds": _finite(base_e2e),
            "delta_seconds": 0.0,
            "delta_fraction": 0.0,
            "bottleneck": bottleneck,
            "utilization": _finite(utilization),
            "achieved_req_s": _finite(achieved_req_s),
            "max_sustainable_req_s": _finite(max_req_s),
        }
    )

    # Per-fleet-size capacity rows: the epoch re-solved with the SSD array
    # shared by n concurrently aggregating GPUs.  Work divides by n, but
    # every GPU sees only peak/n IOPS (the shared-array contention model),
    # so aggregation shrinks sublinearly — the row quantifies exactly how
    # far from linear.  ``peer_cache_e2e_seconds`` repeats the solve with
    # PEER_CACHE_ABSORPTION of storage reads served from peer caches over
    # the interconnect instead of the SSD array.
    for n in FLEET_WHAT_IF_SIZES:
        shared = SSDArray(
            SSDSpec(
                name=str(specs["ssd"]),
                read_latency_s=float(specs["ssd_read_latency_s"]),
                peak_iops=float(specs["ssd_peak_iops"]) / n,
                page_bytes=page_bytes,
            ),
            num_ssds,
        )
        ratio_n = (
            predict(shared, pages, storage_bytes, cpu_bytes) / base_pred
            if base_pred > 0
            else 1.0
        )
        agg_n = agg_s * ratio_n / n
        e2e_n = _combine_e2e(
            (sampling_s + transfer_s) / n + agg_n, train_s / n, overlapped
        )
        kept = 1.0 - PEER_CACHE_ABSORPTION
        peer_ratio_n = (
            predict(
                shared,
                pages * kept,
                storage_bytes * kept,
                cpu_bytes,
            )
            / base_pred
            if base_pred > 0
            else 1.0
        )
        peer_agg_n = agg_s * peer_ratio_n / n
        peer_e2e_n = _combine_e2e(
            (sampling_s + transfer_s) / n + peer_agg_n,
            train_s / n,
            overlapped,
        )
        delta = e2e_n - base_e2e
        table.append(
            {
                "scenario": f"capacity @{n} GPUs",
                "description": (
                    f"epoch re-solved for {n} data-parallel GPUs sharing "
                    f"the SSD array (each sees 1/{n} of peak IOPS); "
                    f"peer-cache variant absorbs "
                    f"{PEER_CACHE_ABSORPTION:.0%} of storage reads"
                ),
                "num_gpus": n,
                "predicted_aggregation_seconds": _finite(agg_n),
                "predicted_e2e_seconds": _finite(e2e_n),
                "delta_seconds": _finite(delta),
                "delta_fraction": _finite(
                    delta / base_e2e if base_e2e > 0 else 0.0
                ),
                "peer_cache_e2e_seconds": _finite(peer_e2e_n),
                "speedup_vs_1gpu": _finite(
                    base_e2e / e2e_n if e2e_n > 0 else None
                ),
                "peer_cache_speedup_vs_1gpu": _finite(
                    base_e2e / peer_e2e_n if peer_e2e_n > 0 else None
                ),
            }
        )

    # Degraded-capacity row: one device of the array down mid-run.  With
    # redundancy every read is still storage-served off the surviving
    # n-1 devices (replica redirects); without it the dead device's share
    # of reads (1/n of pages, the striping share) falls back to the CPU
    # mirror path.  The gap between the two predictions is what the
    # redundancy overhead buys.
    if num_ssds >= 2:
        degraded_array = _ssd_array(specs, num_ssds - 1)
        redundant_pred = predict(
            degraded_array, pages, storage_bytes, cpu_bytes
        )
        lost_share = 1.0 / num_ssds
        lost_pages = pages * lost_share
        bare_pred = predict(
            degraded_array,
            pages - lost_pages,
            storage_bytes - lost_pages * page_bytes,
            cpu_bytes + lost_pages * page_bytes,
        )

        def degraded_e2e(pred: float) -> float:
            ratio = pred / base_pred if base_pred > 0 else 1.0
            return _combine_e2e(
                sampling_s + agg_s * ratio + transfer_s,
                train_s,
                overlapped,
            )

        redundant_e2e = degraded_e2e(redundant_pred)
        bare_e2e = degraded_e2e(bare_pred)
        delta = redundant_e2e - base_e2e
        table.append(
            {
                "scenario": "degraded capacity (1 SSD down)",
                "description": (
                    f"one of {num_ssds} devices down: with redundancy "
                    "reads redirect to surviving replicas "
                    f"({num_ssds - 1} devices); without it the dead "
                    f"device's {lost_share:.0%} of reads fall back to "
                    "the CPU mirror"
                ),
                "predicted_aggregation_seconds": _finite(
                    agg_s * (redundant_pred / base_pred)
                    if base_pred > 0
                    else agg_s
                ),
                "predicted_e2e_seconds": _finite(redundant_e2e),
                "delta_seconds": _finite(delta),
                "delta_fraction": _finite(
                    delta / base_e2e if base_e2e > 0 else 0.0
                ),
                "no_redundancy_e2e_seconds": _finite(bare_e2e),
                "redundancy_benefit_seconds": _finite(
                    bare_e2e - redundant_e2e
                ),
            }
        )
    return table
