"""Performance observatory: interprets telemetry instead of just storing it.

Four parts layered on the existing report/telemetry plumbing:

* :mod:`~repro.observatory.attribution` — per-resource achieved-vs-peak
  utilization, a roofline-style bottleneck verdict, and an Eq. 2-3 what-if
  sensitivity table.
* :mod:`~repro.observatory.history` — append-only JSONL store of report
  summaries keyed by config fingerprint + git revision.
* :mod:`~repro.observatory.regression` — baseline and noise-band
  comparison with CI-friendly exit codes.
* :mod:`~repro.observatory.slo` — declarative alert rules fired over
  reports, iteration metrics and the metrics registry.
"""

from .attribution import (
    AGGREGATION_RESOURCES,
    CPU_BUFFER_ABSORPTION,
    attribute_summary,
    system_spec_block,
    validate_summary,
    what_if_table,
)
from .history import (
    DEFAULT_HISTORY_DIR,
    HISTORY_FILE,
    RunHistory,
    RunRecord,
    config_fingerprint,
    git_revision,
    record_from_summary,
)
from .regression import (
    COMPARED_METRICS,
    DEFAULT_SIGMA,
    DEFAULT_THRESHOLD,
    REGRESSION_EXIT_CODE,
    ComparisonResult,
    MetricDelta,
    compare_summaries,
    compare_to_history,
)
from .slo import (
    ALERTS_TRACK,
    OPS,
    SEVERITIES,
    AlertRule,
    SLOMonitor,
    load_alert_rules,
)

__all__ = [
    "AGGREGATION_RESOURCES",
    "ALERTS_TRACK",
    "COMPARED_METRICS",
    "CPU_BUFFER_ABSORPTION",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_SIGMA",
    "DEFAULT_THRESHOLD",
    "HISTORY_FILE",
    "OPS",
    "REGRESSION_EXIT_CODE",
    "SEVERITIES",
    "AlertRule",
    "ComparisonResult",
    "MetricDelta",
    "RunHistory",
    "RunRecord",
    "SLOMonitor",
    "attribute_summary",
    "compare_summaries",
    "compare_to_history",
    "config_fingerprint",
    "git_revision",
    "load_alert_rules",
    "record_from_summary",
    "system_spec_block",
    "validate_summary",
    "what_if_table",
]
