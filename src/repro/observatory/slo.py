"""Declarative SLO alert rules evaluated over run reports and metrics.

A rules file is plain JSON — either a list of rule objects or
``{"rules": [...]}`` — where each rule names a metric, a comparison and a
threshold::

    [
      {"name": "cache-too-cold", "metric": "report.gpu_cache_hit_ratio",
       "op": "<", "threshold": 0.3, "severity": "warn"},
      {"name": "lost-pages", "metric": "report.counters.corrupt_quarantined",
       "op": ">", "threshold": 0, "severity": "critical"}
    ]

Three metric namespaces are understood:

* ``report.*`` — run-level quantities off the
  :class:`~repro.pipeline.metrics.RunReport` (``e2e_seconds``,
  ``seconds_per_iteration``, ``gpu_cache_hit_ratio``, ``redirect_fraction``,
  ``fallback_fraction``, ``stage_seconds.<stage>``, and any
  :class:`~repro.sim.counters.TransferCounters` field or property via
  ``report.counters.<field>``).
* ``metrics.<name>.<stat>`` — a :class:`~repro.telemetry.metrics
  .MetricsRegistry` entry; ``<stat>`` is ``value`` for counters/gauges and
  ``count``/``sum``/``mean``/``min``/``max``/``p50``/``p95``/``p99`` for
  histograms.  Registry metric names themselves contain dots, so the *last*
  segment is the stat.
* ``iteration.*`` — evaluated once per iteration (``sampling``,
  ``aggregation``, ``transfer``, ``training``, ``preparation``, ``total``,
  ``num_seeds``, ``num_input_nodes``, ``num_sampled``, ``num_edges``, or
  ``iteration.counters.<field>``); the fired entry lists the offending
  iteration indices.

Firing is observable two ways: the returned ``alerts`` block (embedded in
the schema-v6 export) and — when a tracer is attached — one instant per
fired rule on the ``alerts`` track, placed at the modeled time of the
offence so it lines up with the stage spans in the Chrome trace.
"""

from __future__ import annotations

import json
import math
import operator
from dataclasses import dataclass

from ..errors import ObservatoryError
from ..pipeline.metrics import STAGES, RunReport
from ..telemetry.tracks import ALERTS_TRACK

#: Comparison operators an alert rule may use.
OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Recognised severities, mildest first.
SEVERITIES = ("warn", "critical")

#: Per-iteration numeric fields addressable as ``iteration.<field>``.
_ITERATION_TIME_FIELDS = STAGES + ("preparation", "total")
_ITERATION_COUNT_FIELDS = (
    "num_seeds",
    "num_input_nodes",
    "num_sampled",
    "num_edges",
)

#: Report-level scalars addressable as ``report.<field>``.
_REPORT_FIELDS = (
    "e2e_seconds",
    "seconds_per_iteration",
    "gpu_cache_hit_ratio",
    "redirect_fraction",
    "fallback_fraction",
)

#: Cap on offending-iteration indices listed per fired rule.
_MAX_LISTED_ITERATIONS = 20


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule: fire when ``metric op threshold`` holds."""

    name: str
    metric: str
    op: str
    threshold: float
    severity: str = "warn"

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservatoryError("alert rule needs a non-empty name")
        if self.op not in OPS:
            raise ObservatoryError(
                f"alert rule {self.name!r}: unknown op {self.op!r}; "
                f"expected one of {sorted(OPS)}"
            )
        if self.severity not in SEVERITIES:
            raise ObservatoryError(
                f"alert rule {self.name!r}: unknown severity "
                f"{self.severity!r}; expected one of {SEVERITIES}"
            )
        if not isinstance(self.threshold, (int, float)) or not math.isfinite(
            float(self.threshold)
        ):
            raise ObservatoryError(
                f"alert rule {self.name!r}: threshold must be a finite "
                f"number, got {self.threshold!r}"
            )
        scope = self.metric.split(".", 1)[0]
        if scope not in ("report", "metrics", "iteration"):
            raise ObservatoryError(
                f"alert rule {self.name!r}: metric {self.metric!r} must "
                "start with 'report.', 'metrics.' or 'iteration.'"
            )

    @property
    def scope(self) -> str:
        return self.metric.split(".", 1)[0]

    def check(self, value: float) -> bool:
        """True when ``value`` violates the SLO (the rule fires)."""
        return bool(OPS[self.op](value, self.threshold))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "AlertRule":
        if not isinstance(state, dict):
            raise ObservatoryError(
                f"alert rule must be an object, got {type(state).__name__}"
            )
        unknown = set(state) - {"name", "metric", "op", "threshold",
                                "severity"}
        if unknown:
            raise ObservatoryError(
                f"alert rule has unknown fields: {sorted(unknown)}"
            )
        missing = {"name", "metric", "op", "threshold"} - set(state)
        if missing:
            raise ObservatoryError(
                f"alert rule is missing fields: {sorted(missing)}"
            )
        return cls(
            name=str(state["name"]),
            metric=str(state["metric"]),
            op=str(state["op"]),
            threshold=state["threshold"],
            severity=str(state.get("severity", "warn")),
        )


def load_alert_rules(path: str) -> list[AlertRule]:
    """Parse a JSON rules file into :class:`AlertRule` objects."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ObservatoryError(
            f"cannot read alert rules {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise ObservatoryError(
            f"alert rules {path!r} are not valid JSON: {exc}"
        ) from exc
    if isinstance(payload, dict):
        payload = payload.get("rules")
    if not isinstance(payload, list):
        raise ObservatoryError(
            f"alert rules {path!r} must be a JSON list or "
            "{'rules': [...]} object"
        )
    rules = [AlertRule.from_dict(entry) for entry in payload]
    names = [rule.name for rule in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ObservatoryError(
            f"alert rules {path!r} contain duplicate names: {dupes}"
        )
    return rules


def _report_metric(report: RunReport, path: str) -> float | None:
    """Resolve a ``report.*`` metric path, ``None`` when unresolvable."""
    if path in _REPORT_FIELDS:
        if path == "e2e_seconds":
            return report.e2e_time
        if path == "seconds_per_iteration":
            if not report.iterations:
                return None
            return report.time_per_iteration()
        if path in ("redirect_fraction", "fallback_fraction"):
            return getattr(report.counters, path)
        return getattr(report, path)
    if path.startswith("stage_seconds."):
        stage = path.split(".", 1)[1]
        if stage not in STAGES:
            return None
        return getattr(report.stage_totals, stage)
    if path.startswith("counters."):
        value = getattr(report.counters, path.split(".", 1)[1], None)
        return float(value) if isinstance(value, (int, float)) else None
    return None


def _registry_metric(registry, path: str) -> float | None:
    """Resolve ``<name>.<stat>`` against a metrics registry."""
    if registry is None or "." not in path:
        return None
    name, stat = path.rsplit(".", 1)
    if name not in registry:
        return None
    summary = registry.to_dict().get(name, {})
    value = summary.get(stat)
    return float(value) if isinstance(value, (int, float)) else None


def _iteration_metric(metrics, path: str) -> float | None:
    """Resolve an ``iteration.*`` metric path for one iteration."""
    if path in _ITERATION_TIME_FIELDS:
        return getattr(metrics.times, path)
    if path in _ITERATION_COUNT_FIELDS:
        return float(getattr(metrics, path))
    if path.startswith("counters."):
        value = getattr(metrics.counters, path.split(".", 1)[1], None)
        return float(value) if isinstance(value, (int, float)) else None
    return None


class SLOMonitor:
    """Evaluates alert rules against a finished (or in-flight) run.

    Args:
        rules: the rule set, typically from :func:`load_alert_rules`.
        tracer: optional :class:`~repro.telemetry.tracer.Tracer`; fired
            rules additionally record instants on the ``alerts`` track.
    """

    def __init__(self, rules, tracer=None) -> None:
        self.rules = list(rules)
        self.tracer = tracer

    def evaluate(self, report: RunReport | None, registry=None) -> dict:
        """Evaluate every rule; returns the ``alerts`` summary block.

        ``registry`` defaults to the attached tracer's metrics registry, so
        ``metrics.*`` rules work out of the box on traced runs.  ``report``
        may be ``None`` for registry-only evaluation (the serving layer's
        brownout controller runs mid-flight, before any
        :class:`~repro.pipeline.metrics.RunReport` exists); ``report.*``
        and ``iteration.*`` rules then resolve as missing.
        """
        if registry is None and self.tracer is not None:
            registry = self.tracer.metrics
        fired: list[dict] = []
        missing: list[str] = []
        for rule in self.rules:
            path = rule.metric.split(".", 1)[1]
            if rule.scope in ("iteration", "report") and report is None:
                missing.append(rule.metric)
                continue
            if rule.scope == "iteration":
                entry = self._evaluate_iterations(rule, path, report)
                if entry is None and not any(
                    _iteration_metric(it, path) is not None
                    for it in report.iterations
                ):
                    missing.append(rule.metric)
                elif entry is not None:
                    fired.append(entry)
                continue
            if rule.scope == "report":
                value = _report_metric(report, path)
            else:
                value = _registry_metric(registry, path)
            if value is None:
                missing.append(rule.metric)
                continue
            if rule.check(value):
                fired.append({**rule.to_dict(), "value": value})
                self._fire_instant(rule, value)
        return {
            "rules": len(self.rules),
            "fired": fired,
            "missing": missing,
            "ok": not fired,
        }

    def _evaluate_iterations(
        self, rule: AlertRule, path: str, report: RunReport
    ) -> dict | None:
        """Check one per-iteration rule; returns its fired entry or None."""
        offenders: list[int] = []
        worst: float | None = None
        # Place instants on the modeled timeline the stage spans occupy:
        # the tracer clock sits at the end of the run, so the traced region
        # started stage_totals.total seconds earlier.
        at_s = 0.0
        if self.tracer is not None:
            at_s = max(0.0, self.tracer.clock_s - report.stage_totals.total)
        for index, metrics in enumerate(report.iterations):
            value = _iteration_metric(metrics, path)
            iteration_end = at_s + metrics.times.total
            if value is not None and rule.check(value):
                offenders.append(index)
                if worst is None or OPS[rule.op](value, worst):
                    worst = value
                if len(offenders) <= _MAX_LISTED_ITERATIONS:
                    self._fire_instant(
                        rule, value, at_s=iteration_end, iteration=index
                    )
            at_s = iteration_end
        if not offenders:
            return None
        return {
            **rule.to_dict(),
            "value": worst,
            "count": len(offenders),
            "iterations": offenders[:_MAX_LISTED_ITERATIONS],
        }

    def _fire_instant(
        self,
        rule: AlertRule,
        value: float,
        at_s: float | None = None,
        **extra,
    ) -> None:
        if self.tracer is None:
            return
        self.tracer.instant(
            f"slo.{rule.name}",
            ALERTS_TRACK,
            at_s=at_s,
            metric=rule.metric,
            op=rule.op,
            threshold=rule.threshold,
            value=value,
            severity=rule.severity,
            **extra,
        )
