"""Append-only run history: JSONL store of report summaries over time.

Every recorded run becomes one line of ``history.jsonl`` keyed by a
*config fingerprint* (a hash of the run's configuration-identity fields:
loader, iteration count, overlap mode and the embedded hardware specs) plus
the git revision that produced it.  Runs of the same fingerprint across
seeds or commits form a trend; their spread is the noise band the
regression detector compares fresh reports against.

The store is deliberately plain: one JSON object per line, append-only,
human-diffable, safe to commit as a baseline artifact or to ship between
machines.  Records never mutate — a re-run appends a new line.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
from dataclasses import dataclass, field

from ..errors import ObservatoryError
from .attribution import validate_summary

#: File name of the JSONL store inside the history directory.
HISTORY_FILE = "history.jsonl"

#: Default history directory (git-ignored; see ``.gitignore``).
DEFAULT_HISTORY_DIR = ".repro-history"

#: Summary fields copied verbatim into each record.
_RECORD_FIELDS = (
    "loader",
    "iterations",
    "e2e_seconds",
    "seconds_per_iteration",
    "gpu_cache_hit_ratio",
    "redirect_fraction",
)


def config_fingerprint(summary: dict, extra: dict | None = None) -> str:
    """Stable 12-hex-digit fingerprint of a run's configuration identity.

    Hashes the fields that define *what was run* — loader, iteration
    count, overlap mode and the hardware spec snapshot embedded by the
    exporter — and deliberately excludes everything that varies run to run
    (times, counters, seeds), so repeat runs and across-seed repeats of
    the same configuration share a fingerprint and form one trend line.
    ``extra`` folds caller-supplied identity (e.g. a workload label) into
    the hash.
    """
    validate_summary(summary)
    attribution = summary.get("attribution") or {}
    key = {
        "loader": summary.get("loader"),
        "iterations": summary.get("iterations"),
        "overlapped": summary.get("overlapped"),
        "specs": attribution.get("specs") or {},
        "extra": extra or {},
    }
    digest = hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:12]


def git_revision(cwd: str | None = None) -> str:
    """Short git revision of ``cwd``, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass(frozen=True)
class RunRecord:
    """One recorded run summary (one JSONL line)."""

    fingerprint: str
    git_rev: str
    loader: str
    iterations: int
    e2e_seconds: float | None
    seconds_per_iteration: float | None
    stage_seconds: dict
    gpu_cache_hit_ratio: float | None
    redirect_fraction: float | None
    bottleneck: str | None = None
    label: str | None = None
    recorded_at: str | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "git_rev": self.git_rev,
            "loader": self.loader,
            "iterations": self.iterations,
            "e2e_seconds": self.e2e_seconds,
            "seconds_per_iteration": self.seconds_per_iteration,
            "stage_seconds": dict(self.stage_seconds),
            "gpu_cache_hit_ratio": self.gpu_cache_hit_ratio,
            "redirect_fraction": self.redirect_fraction,
            "bottleneck": self.bottleneck,
            "label": self.label,
            "recorded_at": self.recorded_at,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "RunRecord":
        if not isinstance(state, dict) or "fingerprint" not in state:
            raise ObservatoryError(
                "history line is not a run record (no fingerprint)"
            )
        return cls(
            fingerprint=str(state["fingerprint"]),
            git_rev=str(state.get("git_rev", "unknown")),
            loader=str(state.get("loader", "?")),
            iterations=int(state.get("iterations", 0)),
            e2e_seconds=state.get("e2e_seconds"),
            seconds_per_iteration=state.get("seconds_per_iteration"),
            stage_seconds=dict(state.get("stage_seconds") or {}),
            gpu_cache_hit_ratio=state.get("gpu_cache_hit_ratio"),
            redirect_fraction=state.get("redirect_fraction"),
            bottleneck=state.get("bottleneck"),
            label=state.get("label"),
            recorded_at=state.get("recorded_at"),
            extra=dict(state.get("extra") or {}),
        )


def record_from_summary(
    summary: dict,
    *,
    label: str | None = None,
    git_rev: str | None = None,
    recorded_at: str | None = None,
    extra: dict | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a report summary dict."""
    validate_summary(summary)
    attribution = summary.get("attribution") or {}
    fields = {name: summary.get(name) for name in _RECORD_FIELDS}
    # The label annotates the record but is NOT config identity: a
    # labeled record must trend with unlabeled reruns of the same
    # configuration (compare --history fingerprints the candidate
    # without any label).
    return RunRecord(
        fingerprint=config_fingerprint(summary),
        git_rev=git_revision() if git_rev is None else git_rev,
        loader=str(fields["loader"]),
        iterations=int(fields["iterations"]),
        e2e_seconds=fields["e2e_seconds"],
        seconds_per_iteration=fields["seconds_per_iteration"],
        stage_seconds=dict(summary.get("stage_seconds") or {}),
        gpu_cache_hit_ratio=fields["gpu_cache_hit_ratio"],
        redirect_fraction=fields["redirect_fraction"],
        bottleneck=attribution.get("bottleneck"),
        label=label,
        recorded_at=recorded_at,
        extra=extra or {},
    )


class RunHistory:
    """Append-only JSONL store of :class:`RunRecord` lines.

    Args:
        root: directory holding ``history.jsonl``; created on first
            append.  Reads of a missing file return an empty history.
    """

    def __init__(self, root: str = DEFAULT_HISTORY_DIR) -> None:
        self.root = root
        self.path = os.path.join(root, HISTORY_FILE)

    def append(
        self,
        summary: dict,
        *,
        label: str | None = None,
        git_rev: str | None = None,
        recorded_at: str | None = None,
        extra: dict | None = None,
    ) -> RunRecord:
        """Record one report summary; returns the stored record."""
        record = record_from_summary(
            summary,
            label=label,
            git_rev=git_rev,
            recorded_at=recorded_at,
            extra=extra,
        )
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(record.to_dict(), sort_keys=True) + "\n"
            )
        return record

    def records(
        self, fingerprint: str | None = None
    ) -> list[RunRecord]:
        """All stored records in append order, optionally filtered."""
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    state = json.loads(line)
                except ValueError as exc:
                    raise ObservatoryError(
                        f"{self.path}:{lineno}: malformed history line "
                        f"({exc})"
                    ) from exc
                record = RunRecord.from_dict(state)
                if fingerprint is None or record.fingerprint == fingerprint:
                    records.append(record)
        return records

    def fingerprints(self) -> dict[str, int]:
        """``{fingerprint: record count}`` over the whole store."""
        counts: dict[str, int] = {}
        for record in self.records():
            counts[record.fingerprint] = counts.get(record.fingerprint, 0) + 1
        return counts

    def noise_band(
        self, fingerprint: str, metric: str = "e2e_seconds"
    ) -> dict:
        """Spread of ``metric`` across records of one fingerprint.

        ``metric`` is a record field name or ``stage_seconds.<stage>``.
        Returns ``{count, mean, std, min, max}`` (population std); raises
        :class:`~repro.errors.ObservatoryError` when no record of the
        fingerprint carries a finite value.
        """
        values = []
        for record in self.records(fingerprint):
            value = _record_metric(record, metric)
            if value is not None and math.isfinite(value):
                values.append(float(value))
        if not values:
            raise ObservatoryError(
                f"history holds no finite {metric!r} values for "
                f"fingerprint {fingerprint!r}"
            )
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return {
            "count": len(values),
            "mean": mean,
            "std": math.sqrt(var),
            "min": min(values),
            "max": max(values),
        }


def _record_metric(record: RunRecord, metric: str) -> float | None:
    if metric.startswith("stage_seconds."):
        return record.stage_seconds.get(metric.split(".", 1)[1])
    if metric in _RECORD_FIELDS:
        return getattr(record, metric)
    raise ObservatoryError(
        f"unknown history metric {metric!r}; expected one of "
        f"{_RECORD_FIELDS} or 'stage_seconds.<stage>'"
    )
