"""Regression detection: compare a fresh report against a baseline or trend.

Two comparison modes, both producing the same :class:`ComparisonResult`:

* **Baseline** — candidate vs one baseline report, metric by metric, with a
  relative threshold.  Identical-seed reruns are bit-identical in this
  repository (modeled time, seeded RNG), so the deltas are exactly zero and
  the verdict is ``neutral``.
* **History band** — candidate vs the noise band (mean +/- ``sigma`` *
  population std, floored at the relative threshold) of same-fingerprint
  records in a :class:`~repro.observatory.history.RunHistory`, so run-to-run
  spread across seeds widens the tolerance instead of tripping the gate.

Verdicts are CI-friendly: ``exit_code`` is 0 for ``neutral``/
``improvement`` and :data:`REGRESSION_EXIT_CODE` for ``regression``; bad
inputs raise :class:`~repro.errors.ObservatoryError` (CLI exit 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ObservatoryError
from .attribution import validate_summary
from .history import RunHistory, config_fingerprint

#: Default relative tolerance before a delta counts as a verdict.
DEFAULT_THRESHOLD = 0.05

#: Default width of the history noise band, in population std deviations.
DEFAULT_SIGMA = 3.0

#: Process exit code ``repro compare`` returns on a regression verdict.
REGRESSION_EXIT_CODE = 3

#: ``(metric, lower_is_better)`` pairs every comparison evaluates.
COMPARED_METRICS = (
    ("e2e_seconds", True),
    ("seconds_per_iteration", True),
    ("stage_seconds.sampling", True),
    ("stage_seconds.aggregation", True),
    ("stage_seconds.transfer", True),
    ("stage_seconds.training", True),
    ("gpu_cache_hit_ratio", False),
)

#: Absolute floor below which time deltas are ignored entirely (guards
#: all-zero stages against spurious infinite relative deltas).
_ABS_FLOOR = 1e-12


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-candidate comparison."""

    metric: str
    baseline: float | None
    candidate: float | None
    delta: float | None
    fraction: float | None
    verdict: str  # "regression" | "improvement" | "neutral"

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "fraction": self.fraction,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class ComparisonResult:
    """Per-metric deltas plus the overall verdict."""

    verdict: str
    deltas: list[MetricDelta]
    mode: str  # "baseline" | "history"
    threshold: float
    drifting: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return REGRESSION_EXIT_CODE if self.verdict == "regression" else 0

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "mode": self.mode,
            "threshold": self.threshold,
            "drifting": list(self.drifting),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _lookup(summary: dict, metric: str) -> float | None:
    node: object = summary
    for part in metric.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if node is None:
        return None
    value = float(node)
    return value if math.isfinite(value) else None


def _judge(
    baseline: float | None,
    candidate: float | None,
    tolerance: float,
    lower_is_better: bool,
) -> tuple[float | None, float | None, str]:
    """Return ``(delta, fraction, verdict)`` for one metric."""
    if baseline is None or candidate is None:
        return None, None, "neutral"
    delta = candidate - baseline
    scale = abs(baseline)
    fraction = delta / scale if scale > 0 else None
    if abs(delta) <= _ABS_FLOOR:
        return delta, fraction, "neutral"
    if scale <= _ABS_FLOOR:
        # Metric appeared out of nowhere (e.g. a transfer stage that was
        # exactly zero); any visible time is judged on its own.
        worse = delta > 0 if lower_is_better else delta < 0
        return delta, None, "regression" if worse else "improvement"
    if abs(fraction) <= tolerance:
        return delta, fraction, "neutral"
    worse = fraction > 0 if lower_is_better else fraction < 0
    return delta, fraction, "regression" if worse else "improvement"


def _overall(deltas: list[MetricDelta]) -> str:
    verdicts = {d.verdict for d in deltas}
    if "regression" in verdicts:
        return "regression"
    if "improvement" in verdicts:
        return "improvement"
    return "neutral"


def _drifting(deltas: list[MetricDelta]) -> list[str]:
    """Neutral metrics that still moved measurably (> 1e-9 relative)."""
    return [
        d.metric
        for d in deltas
        if d.verdict == "neutral"
        and d.fraction is not None
        and abs(d.fraction) > 1e-9
    ]


def compare_summaries(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonResult:
    """Compare two report summaries metric by metric."""
    validate_summary(baseline)
    validate_summary(candidate)
    if threshold < 0:
        raise ObservatoryError("threshold must be non-negative")
    if baseline.get("loader") != candidate.get("loader"):
        raise ObservatoryError(
            f"cannot compare across loaders: baseline is "
            f"{baseline.get('loader')!r}, candidate is "
            f"{candidate.get('loader')!r}"
        )
    if baseline.get("iterations") != candidate.get("iterations"):
        raise ObservatoryError(
            f"cannot compare across iteration counts: baseline ran "
            f"{baseline.get('iterations')}, candidate "
            f"{candidate.get('iterations')}"
        )
    deltas = []
    for metric, lower_is_better in COMPARED_METRICS:
        base = _lookup(baseline, metric)
        cand = _lookup(candidate, metric)
        delta, fraction, verdict = _judge(
            base, cand, threshold, lower_is_better
        )
        deltas.append(
            MetricDelta(metric, base, cand, delta, fraction, verdict)
        )
    return ComparisonResult(
        verdict=_overall(deltas),
        deltas=deltas,
        mode="baseline",
        threshold=threshold,
        drifting=_drifting(deltas),
    )


#: Record-side spelling of each compared metric (history records flatten
#: the summary, so the paths coincide — kept explicit for clarity).
_HISTORY_METRICS = COMPARED_METRICS


def compare_to_history(
    candidate: dict,
    history: RunHistory,
    *,
    fingerprint: str | None = None,
    sigma: float = DEFAULT_SIGMA,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonResult:
    """Compare a summary against the history's same-fingerprint noise band.

    The tolerance per metric is ``max(sigma * std, threshold * |mean|)``:
    a noisy trend widens the band, while a bit-identical trend (zero std)
    still allows the relative threshold before judging.
    """
    validate_summary(candidate)
    if sigma < 0:
        raise ObservatoryError("sigma must be non-negative")
    if fingerprint is None:
        fingerprint = config_fingerprint(candidate)
    records = history.records(fingerprint)
    if not records:
        raise ObservatoryError(
            f"history at {history.path!r} holds no records for "
            f"fingerprint {fingerprint!r}"
        )
    deltas = []
    for metric, lower_is_better in _HISTORY_METRICS:
        try:
            band = history.noise_band(fingerprint, metric)
        except ObservatoryError:
            deltas.append(
                MetricDelta(metric, None, None, None, None, "neutral")
            )
            continue
        cand = _lookup(candidate, metric)
        mean = band["mean"]
        tolerance_abs = max(
            sigma * band["std"], threshold * abs(mean), _ABS_FLOOR
        )
        if cand is None:
            deltas.append(
                MetricDelta(metric, mean, None, None, None, "neutral")
            )
            continue
        delta = cand - mean
        fraction = delta / abs(mean) if abs(mean) > 0 else None
        if abs(delta) <= tolerance_abs:
            verdict = "neutral"
        else:
            worse = delta > 0 if lower_is_better else delta < 0
            verdict = "regression" if worse else "improvement"
        deltas.append(
            MetricDelta(metric, mean, cand, delta, fraction, verdict)
        )
    return ComparisonResult(
        verdict=_overall(deltas),
        deltas=deltas,
        mode="history",
        threshold=threshold,
        drifting=_drifting(deltas),
    )
