"""Seeded fault injection: turning a :class:`FaultPlan` into concrete draws.

The injector owns its *own* random stream, seeded from the plan — never
from the loader's sampling RNG — so injecting faults can never perturb
which nodes are sampled or which cache lines are evicted.  Two loaders
with the same fault plan suffer byte-identical fault sequences regardless
of their workload seeds, and a loader with a null plan consumes no random
numbers at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CheckpointError, ConfigError, RetryExhaustedError
from ..utils import splitmix64_uniform
from .plan import (
    CORRUPT_BITFLIP,
    CORRUPT_PERSISTENT,
    CORRUPT_TORN,
    FaultPlan,
)
from .retry import Budget, RetryPolicy

#: Salt stride separating the hash streams of successive corruption storms.
_STORM_SALT_STRIDE = 0x51_7C_C1_B7_27_22_0A_95


@dataclass
class FaultStats:
    """Cumulative fault/retry accounting kept by one injector."""

    injected_failures: int = 0
    retries: int = 0
    unrecovered: int = 0
    latency_spikes: int = 0
    timeouts: int = 0
    corruptions_emitted: int = 0

    def merge(self, other: "FaultStats") -> None:
        self.injected_failures += other.injected_failures
        self.retries += other.retries
        self.unrecovered += other.unrecovered
        self.latency_spikes += other.latency_spikes
        self.timeouts += other.timeouts
        self.corruptions_emitted += other.corruptions_emitted

    def publish(self, registry, prefix: str = "faults") -> None:
        """Add the current counts into a telemetry metrics registry.

        One counter per field, named ``{prefix}.{field}``.  Adds (does not
        overwrite), so publish a cumulative stats object at most once per
        registry — typically right before export.
        """
        for name, value in self.state_dict().items():
            if value:
                registry.counter(f"{prefix}.{name}").inc(value)

    def state_dict(self) -> dict:
        """Plain-dict snapshot (checkpointable)."""
        return {
            "injected_failures": self.injected_failures,
            "retries": self.retries,
            "unrecovered": self.unrecovered,
            "latency_spikes": self.latency_spikes,
            "timeouts": self.timeouts,
            "corruptions_emitted": self.corruptions_emitted,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "FaultStats":
        known = {
            "injected_failures", "retries", "unrecovered",
            "latency_spikes", "timeouts", "corruptions_emitted",
        }
        unknown = set(state) - known
        if unknown:
            raise CheckpointError(
                f"unknown fault-stats fields: {sorted(unknown)}"
            )
        return cls(**{name: int(value) for name, value in state.items()})


@dataclass(frozen=True)
class BatchFaultOutcome:
    """Resolved fault process for one batch of storage requests.

    ``retries`` counts re-issued commands (each occupies device service
    like a fresh request); ``backoff_s`` is the modeled wall time spent
    waiting between attempts; ``unrecovered`` requests exhausted the retry
    policy (or its time budget) and must be served by the fallback path.
    """

    attempted: int = 0
    injected_failures: int = 0
    retries: int = 0
    unrecovered: int = 0
    backoff_s: float = 0.0
    timed_out: bool = False


class FaultInjector:
    """Stochastic fault source driven by a :class:`FaultPlan`.

    Args:
        plan: the fault scenario.
        policy: retry policy override; defaults to the plan's embedded
            policy.
    """

    def __init__(
        self, plan: FaultPlan, policy: RetryPolicy | None = None
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else plan.retry
        self._rng = np.random.default_rng(plan.seed)
        self.stats = FaultStats()
        self._events = sorted(
            plan.device_events, key=lambda e: (e.at_time_s, e.device)
        )
        # Storms keep their plan order: storm index salts the page-hash, so
        # reordering would repoison different pages.
        self._storms = tuple(plan.corruption_events)
        # Pages rewritten from a good copy after storm poisoning (repair
        # overlay on the stateless hash membership).  Bounded by the pages
        # actually touched, never by the device size.
        self._repaired_pages: set[int] = set()

    @property
    def rng(self) -> np.random.Generator:
        """The injector's private random stream (for in-slot retry draws)."""
        return self._rng

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the injector's stream position and cumulative stats.

        The device-event schedule is pure plan data, rebuilt at
        construction, so only the mutable pieces are captured.
        """
        return {
            "seed": self.plan.seed,
            "rng": self._rng.bit_generator.state,
            "stats": self.stats.state_dict(),
            "repaired_pages": sorted(self._repaired_pages),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the stream position captured by :meth:`state_dict`."""
        if state.get("seed") != self.plan.seed:
            raise CheckpointError(
                f"fault plan seed {self.plan.seed} does not match "
                f"checkpoint seed {state.get('seed')}"
            )
        self._rng.bit_generator.state = state["rng"]
        self.stats = FaultStats.from_state_dict(state["stats"])
        self._repaired_pages = {
            int(p) for p in state.get("repaired_pages", ())
        }

    def retry_failed(self) -> bool:
        """Draw whether one retried command fails again."""
        return self._rng.random() < self.plan.effective_retry_failure_rate

    # ------------------------------------------------------------------
    # Per-request draws

    def failure_mask(self, n: int, *, retry: bool = False) -> np.ndarray:
        """Boolean mask of commands that complete with CQ error status."""
        if n < 0:
            raise ConfigError("request count must be non-negative")
        rate = (
            self.plan.effective_retry_failure_rate
            if retry
            else self.plan.read_failure_rate
        )
        if n == 0 or rate == 0.0:
            return np.zeros(n, dtype=bool)
        mask = self._rng.random(n) < rate
        self.stats.injected_failures += int(mask.sum())
        return mask

    def latency_multipliers(self, n: int) -> np.ndarray:
        """Per-request service-latency multipliers (tail spikes)."""
        if n < 0:
            raise ConfigError("request count must be non-negative")
        mult = np.ones(n)
        rate = self.plan.tail_latency_rate
        if n == 0 or rate == 0.0:
            return mult
        spiked = self._rng.random(n) < rate
        mult[spiked] = self.plan.tail_latency_multiplier
        self.stats.latency_spikes += int(spiked.sum())
        return mult

    def spike_count(self, n: int) -> int:
        """Number of tail-latency spikes among ``n`` requests (aggregate)."""
        if n < 0:
            raise ConfigError("request count must be non-negative")
        if n == 0 or self.plan.tail_latency_rate == 0.0:
            return 0
        count = int(self._rng.binomial(n, self.plan.tail_latency_rate))
        self.stats.latency_spikes += count
        return count

    # ------------------------------------------------------------------
    # Whole-device state

    def device_states(
        self, now_s: float, num_devices: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-device ``(active, slowdown_factor)`` at simulated ``now_s``.

        Events targeting devices outside the array are ignored (a plan can
        be reused across differently-sized arrays).
        """
        if num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        active = np.ones(num_devices, dtype=bool)
        factors = np.ones(num_devices)
        for event in self._events:
            if event.at_time_s > now_s or event.device >= num_devices:
                continue
            if event.kind == "dropout":
                active[event.device] = False
            elif event.kind == "recovery":
                active[event.device] = True
                factors[event.device] = 1.0
            else:  # slowdown / fail_slow: device still answers, just slower
                factors[event.device] = event.factor
        return active, factors

    def dropout_counts(self, now_s: float, num_devices: int) -> np.ndarray:
        """Per-device count of dropout events that have fired by ``now_s``.

        This is the device's *incident generation*: a device that dropped
        out and later recovered has a higher dropout count than the clean
        generation recorded by :class:`~repro.faults.array.FaultySSDArray`
        until a rebuild marks it clean again.
        """
        if num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        counts = np.zeros(num_devices, dtype=np.int64)
        for event in self._events:
            if event.at_time_s > now_s or event.device >= num_devices:
                continue
            if event.kind == "dropout":
                counts[event.device] += 1
        return counts

    def lost_page_mask(
        self, pages: np.ndarray, now_s: float, num_devices: int
    ) -> np.ndarray:
        """Which of ``pages`` live on a currently dropped-out device.

        Pages stripe round-robin across the array (BaM's queue-pair
        striping), so page ``p``'s home device is ``p % num_devices``.
        """
        pages = np.asarray(pages, dtype=np.int64)
        active, _ = self.device_states(now_s, num_devices)
        if active.all():
            return np.zeros(len(pages), dtype=bool)
        return ~active[pages % num_devices]

    # ------------------------------------------------------------------
    # Silent corruption

    def poisoned_info(
        self, pages: np.ndarray, now_s: float, num_devices: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(poisoned_mask, origin_times)`` for storm-poisoned pages.

        Membership is a pure hash of ``(plan seed, storm index, page)`` —
        no random stream is consumed, so corruption storms cannot perturb
        the failure/spike draws, and a killed-and-resumed run agrees on
        exactly which pages are poisoned.  ``origin_times`` holds the
        poisoning storm's ``at_time_s`` for poisoned pages (earliest storm
        wins) and ``now_s`` elsewhere.  Pages rewritten via
        :meth:`mark_repaired` are healed.
        """
        if num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        pages = np.asarray(pages, dtype=np.int64)
        mask = np.zeros(len(pages), dtype=bool)
        origins = np.full(len(pages), float(now_s))
        if not self._storms or len(pages) == 0:
            return mask, origins
        for index, storm in enumerate(self._storms):
            if storm.at_time_s > now_s or storm.device >= num_devices:
                continue
            on_device = (pages % num_devices) == storm.device
            if not on_device.any():
                continue
            salt = self.plan.seed + (index + 1) * _STORM_SALT_STRIDE
            hit = on_device & (
                splitmix64_uniform(pages, salt) < storm.page_fraction
            )
            fresh = hit & ~mask
            origins[fresh] = storm.at_time_s
            mask |= hit
        if self._repaired_pages and mask.any():
            repaired = np.fromiter(
                (int(p) in self._repaired_pages for p in pages),
                dtype=bool,
                count=len(pages),
            )
            mask &= ~repaired
        return mask, origins

    def corruption_kinds(
        self, pages: np.ndarray, now_s: float, num_devices: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-read corruption outcome for ``pages`` served from storage.

        Returns ``(kinds, origin_times)`` where ``kinds`` holds the
        ``CORRUPT_*`` codes (0 for clean reads).  Transient draws (bit
        flips, torn reads) come from the injector's private stream and are
        only made when the corresponding rate is non-zero, so plans without
        corruption consume exactly the random numbers they did before this
        feature existed.  Persistent (storm) poisoning overrides transient
        kinds — the media copy being bad dominates the in-flight error.
        Every non-clean read increments ``stats.corruptions_emitted``.
        """
        pages = np.asarray(pages, dtype=np.int64)
        n = len(pages)
        kinds = np.zeros(n, dtype=np.uint8)
        origins = np.full(n, float(now_s))
        if n == 0:
            return kinds, origins
        if self.plan.bitflip_rate > 0.0:
            kinds[self._rng.random(n) < self.plan.bitflip_rate] = (
                CORRUPT_BITFLIP
            )
        if self.plan.torn_page_rate > 0.0:
            kinds[self._rng.random(n) < self.plan.torn_page_rate] = (
                CORRUPT_TORN
            )
        if self._storms:
            poisoned, storm_origins = self.poisoned_info(
                pages, now_s, num_devices
            )
            kinds[poisoned] = CORRUPT_PERSISTENT
            origins[poisoned] = storm_origins[poisoned]
        self.stats.corruptions_emitted += int((kinds != 0).sum())
        return kinds, origins

    def count_emitted(self, n: int) -> None:
        """Account ``n`` corrupt reads observed outside the loader path
        (the background scrubber's sweep reads)."""
        if n < 0:
            raise ConfigError("count must be non-negative")
        self.stats.corruptions_emitted += n

    def mark_repaired(self, page: int) -> None:
        """Record that ``page`` was rewritten from a good copy: storm
        poisoning no longer applies to it."""
        self._repaired_pages.add(int(page))

    # ------------------------------------------------------------------
    # Aggregate retry process

    def resolve_batch(
        self,
        n_requests: int,
        *,
        time_budget_s: float | None = None,
    ) -> BatchFaultOutcome:
        """Run the failure/retry process for ``n_requests`` storage reads.

        Draws the initial failure count, then iterates bounded retry
        rounds: each round re-issues all still-failed commands after the
        policy's (jittered) backoff, stopping early when the modeled time
        budget runs out.  Raises :class:`RetryExhaustedError` when requests
        remain failed and the policy forbids falling back.
        """
        if n_requests < 0:
            raise ConfigError("request count must be non-negative")
        policy = self.policy
        rate = self.plan.read_failure_rate
        if n_requests == 0 or rate == 0.0:
            return BatchFaultOutcome(attempted=n_requests)
        allowance = policy.batch_timeout_s
        if time_budget_s is not None:
            allowance = min(allowance, time_budget_s)
        budget = Budget(allowance)

        failed = int(self._rng.binomial(n_requests, rate))
        injected = failed
        retries = 0
        timed_out = False
        retry_rate = self.plan.effective_retry_failure_rate
        attempt = 1
        while failed > 0 and attempt <= policy.max_retries:
            wait = policy.backoff_s(attempt, self._rng)
            if not budget.try_spend(wait):
                timed_out = True
                break
            retries += failed
            still_failed = (
                int(self._rng.binomial(failed, retry_rate))
                if retry_rate > 0.0
                else 0
            )
            injected += still_failed
            failed = still_failed
            attempt += 1

        if failed > 0 and not policy.fallback_to_cpu:
            raise RetryExhaustedError(
                f"{failed} storage reads still failing after "
                f"{attempt - 1} retry rounds "
                f"({'timeout' if timed_out else 'retry limit'})"
            )
        outcome = BatchFaultOutcome(
            attempted=n_requests,
            injected_failures=injected,
            retries=retries,
            unrecovered=failed,
            backoff_s=budget.spent_s,
            timed_out=timed_out,
        )
        self.stats.injected_failures += injected
        self.stats.retries += retries
        self.stats.unrecovered += failed
        if timed_out:
            self.stats.timeouts += 1
        return outcome
