"""Fault injection and resilience for the simulated storage stack.

This package models what the paper's evaluation never had to face: reads
that fail, devices whose tail latency explodes, SSDs that drop out of the
array mid-epoch, and PCIe links that degrade.  A declarative
:class:`FaultPlan` (JSON-round-trippable, driveable from the CLI via
``--fault-plan``) is executed by a seeded :class:`FaultInjector`;
:class:`RetryPolicy` bounds the recovery work in *modeled* time, and
:class:`FaultySSDArray` lets the Eq. 2-3 analytic machinery — including
the dynamic storage access accumulator — re-solve itself against whatever
hardware is still alive.

Everything is pay-for-what-you-use: with a null plan no random numbers
are drawn and modeled times are bit-identical to a run without the fault
machinery.
"""

from .plan import (
    CORRUPT_BITFLIP,
    CORRUPT_NONE,
    CORRUPT_PERSISTENT,
    CORRUPT_TORN,
    DEVICE_EVENT_KINDS,
    WORKER_EVENT_KINDS,
    CorruptionEvent,
    CrashEvent,
    DeviceEvent,
    FaultPlan,
    WorkerEvent,
)
from .retry import Budget, RetryPolicy
from .injector import BatchFaultOutcome, FaultInjector, FaultStats
from .array import FaultySSDArray

__all__ = [
    "Budget",
    "CORRUPT_BITFLIP",
    "CORRUPT_NONE",
    "CORRUPT_PERSISTENT",
    "CORRUPT_TORN",
    "DEVICE_EVENT_KINDS",
    "WORKER_EVENT_KINDS",
    "BatchFaultOutcome",
    "CorruptionEvent",
    "CrashEvent",
    "DeviceEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultySSDArray",
    "RetryPolicy",
    "WorkerEvent",
]
