"""A degradable view of an :class:`~repro.sim.ssd.SSDArray`.

The analytic SSD array is a frozen value object; real arrays change state
over time.  :class:`FaultySSDArray` wraps a base array plus a
:class:`~repro.faults.injector.FaultInjector` and presents the same
Eq. 2-3 API, re-derived at the current simulated time from the devices
that are still alive (and their slowdown factors).  On a dropout the
survivors absorb the stripe — collective peak IOPS shrinks, so the
dynamic storage access accumulator (which reads
:meth:`required_overlapping` through this view) automatically re-solves
its threshold against the reduced peak.
"""

from __future__ import annotations

import numpy as np

from ..config import SSDSpec
from ..errors import CheckpointError, FaultError
from ..sim.ssd import SSDArray
from .injector import FaultInjector


class FaultySSDArray:
    """Time-varying facade over a fixed SSD array.

    Args:
        base: the healthy array.
        injector: source of whole-device events and tail-spike draws.
    """

    def __init__(self, base: SSDArray, injector: FaultInjector) -> None:
        self.base = base
        self.injector = injector
        self.now_s = 0.0
        self._cache_key: tuple | None = None
        self._cache_array: SSDArray | None = None

    def advance_to(self, now_s: float) -> None:
        """Move the view's simulated clock forward."""
        if now_s < 0:
            raise FaultError("simulated time cannot be negative")
        self.now_s = now_s

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the view's simulated clock (its only mutable state)."""
        return {"now_s": self.now_s}

    def load_state_dict(self, state: dict) -> None:
        """Restore the clock; the memoized effective array is invalidated."""
        now_s = state.get("now_s")
        if not isinstance(now_s, (int, float)) or now_s < 0:
            raise CheckpointError(
                f"invalid faulty-array clock in checkpoint: {now_s!r}"
            )
        self.now_s = float(now_s)
        self._cache_key = None
        self._cache_array = None

    # ------------------------------------------------------------------
    # Device state

    def device_states(self) -> tuple[np.ndarray, np.ndarray]:
        """``(active, slowdown_factor)`` per device at the current time."""
        return self.injector.device_states(self.now_s, self.base.num_ssds)

    @property
    def num_active(self) -> int:
        active, _ = self.device_states()
        return int(active.sum())

    def lost_page_mask(self, pages: np.ndarray) -> np.ndarray:
        """Pages whose home device is currently dropped out."""
        return self.injector.lost_page_mask(
            pages, self.now_s, self.base.num_ssds
        )

    def effective(self) -> SSDArray:
        """The Eq. 2-3 array describing the surviving devices.

        Slowdowns scale a device's latency up and its peak IOPS down by
        the event factor; survivors are aggregated into an equivalent
        homogeneous array.  Raises :class:`FaultError` when no device is
        alive — callers must route everything to the fallback path first.
        """
        active, factors = self.device_states()
        key = (active.tobytes(), factors.tobytes())
        if key == self._cache_key and self._cache_array is not None:
            return self._cache_array
        n_active = int(active.sum())
        if n_active == 0:
            raise FaultError("all SSDs in the array have dropped out")
        live_factors = factors[active]
        spec = self.base.spec
        if (live_factors == 1.0).all() and n_active == self.base.num_ssds:
            array = self.base
        else:
            total_iops = float((spec.peak_iops / live_factors).sum())
            mean_factor = float(live_factors.mean())
            eff_spec = SSDSpec(
                name=f"{spec.name} (degraded)",
                read_latency_s=spec.read_latency_s * mean_factor,
                peak_iops=total_iops / n_active,
                page_bytes=spec.page_bytes,
            )
            array = SSDArray(
                eff_spec,
                n_active,
                t_init_extra_s=self.base.t_init_extra_s,
                t_term_s=self.base.t_term_s,
            )
        self._cache_key = key
        self._cache_array = array
        return array

    # ------------------------------------------------------------------
    # SSDArray API (delegated to the effective array)

    @property
    def spec(self) -> SSDSpec:
        return self.effective().spec

    @property
    def num_ssds(self) -> int:
        return self.effective().num_ssds

    @property
    def t_init_s(self) -> float:
        return self.effective().t_init_s

    @property
    def peak_iops(self) -> float:
        return self.effective().peak_iops

    @property
    def peak_bandwidth(self) -> float:
        return self.effective().peak_bandwidth

    def batch_service_time(self, n_requests: int) -> float:
        if n_requests == 0:
            # Valid even with every device dropped out: nothing to read.
            return 0.0
        return self.effective().batch_service_time(n_requests)

    def achieved_iops(self, n_overlapping: float) -> float:
        return self.effective().achieved_iops(n_overlapping)

    def achieved_bandwidth(self, n_overlapping: float) -> float:
        return self.effective().achieved_bandwidth(n_overlapping)

    def required_overlapping(self, target_fraction: float) -> int:
        if self.num_active == 0:
            # With no device alive every read falls back to the CPU path;
            # the healthy threshold keeps the accumulator well-defined.
            return self.base.required_overlapping(target_fraction)
        return self.effective().required_overlapping(target_fraction)

    # ------------------------------------------------------------------
    # Fault-time extras

    def tail_extra_time(self, n_spiked: int) -> float:
        """Extra elapsed time from ``n_spiked`` tail-latency requests.

        A spiked request occupies its device service slot for
        ``(multiplier - 1)`` extra latencies; the array's aggregate
        internal parallelism absorbs that occupancy, so the elapsed-time
        cost is the extra busy time divided across all live slots.
        """
        if n_spiked <= 0:
            return 0.0
        eff = self.effective()
        extra_per_request = (
            self.injector.plan.tail_latency_multiplier - 1.0
        ) * eff.spec.read_latency_s
        slots = max(1.0, eff.spec.internal_parallelism * eff.num_ssds)
        return n_spiked * extra_per_request / slots
