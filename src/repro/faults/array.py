"""A degradable view of an :class:`~repro.sim.ssd.SSDArray`.

The analytic SSD array is a frozen value object; real arrays change state
over time.  :class:`FaultySSDArray` wraps a base array plus a
:class:`~repro.faults.injector.FaultInjector` and presents the same
Eq. 2-3 API, re-derived at the current simulated time from the devices
that are still alive (and their slowdown factors).  On a dropout the
survivors absorb the stripe — collective peak IOPS shrinks, so the
dynamic storage access accumulator (which reads
:meth:`required_overlapping` through this view) automatically re-solves
its threshold against the reduced peak.
"""

from __future__ import annotations

import numpy as np

from ..config import SSDSpec
from ..errors import CheckpointError, FaultError
from ..sim.ssd import SSDArray
from .injector import FaultInjector


class FaultySSDArray:
    """Time-varying facade over a fixed SSD array.

    Args:
        base: the healthy array.
        injector: source of whole-device events and tail-spike draws.
    """

    def __init__(self, base: SSDArray, injector: FaultInjector) -> None:
        self.base = base
        self.injector = injector
        self.now_s = 0.0
        self._cache_key: tuple | None = None
        self._cache_array: SSDArray | None = None
        # Highest dropout generation per device that a rebuild has marked
        # clean.  A recovered device whose dropout count exceeds its clean
        # generation holds *stale* pages: it answers reads, but its data
        # predates the dropout and must not be served until rebuilt.
        self._clean_generation: dict[int, int] = {}

    def advance_to(self, now_s: float) -> None:
        """Move the view's simulated clock forward."""
        if now_s < 0:
            raise FaultError("simulated time cannot be negative")
        self.now_s = now_s

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the clock and per-device clean generations."""
        return {
            "now_s": self.now_s,
            "clean_generation": {
                str(device): gen
                for device, gen in sorted(self._clean_generation.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the clock; the memoized effective array is invalidated."""
        now_s = state.get("now_s")
        if not isinstance(now_s, (int, float)) or now_s < 0:
            raise CheckpointError(
                f"invalid faulty-array clock in checkpoint: {now_s!r}"
            )
        clean = state.get("clean_generation", {})
        if not isinstance(clean, dict):
            raise CheckpointError(
                f"invalid clean-generation map in checkpoint: {clean!r}"
            )
        restored: dict[int, int] = {}
        for device, gen in clean.items():
            try:
                index = int(device)
            except (TypeError, ValueError):
                raise CheckpointError(
                    f"invalid clean-generation device key: {device!r}"
                ) from None
            if not isinstance(gen, int) or isinstance(gen, bool) or gen < 0:
                raise CheckpointError(
                    f"invalid clean generation for device {index}: {gen!r}"
                )
            restored[index] = gen
        self.now_s = float(now_s)
        self._clean_generation = restored
        self._cache_key = None
        self._cache_array = None

    # ------------------------------------------------------------------
    # Device state

    def device_states(self) -> tuple[np.ndarray, np.ndarray]:
        """``(active, slowdown_factor)`` per device at the current time."""
        return self.injector.device_states(self.now_s, self.base.num_ssds)

    @property
    def num_active(self) -> int:
        active, _ = self.device_states()
        return int(active.sum())

    def lost_page_mask(self, pages: np.ndarray) -> np.ndarray:
        """Pages whose home device is currently dropped out."""
        return self.injector.lost_page_mask(
            pages, self.now_s, self.base.num_ssds
        )

    def dropout_counts(self) -> np.ndarray:
        """Per-device dropout-incident counts at the current time."""
        return self.injector.dropout_counts(self.now_s, self.base.num_ssds)

    def clean_generation(self, device: int) -> int:
        """Highest dropout generation rebuilt clean on ``device``."""
        if not 0 <= device < self.base.num_ssds:
            raise FaultError(
                f"device index {device} outside array of "
                f"{self.base.num_ssds} SSDs"
            )
        return self._clean_generation.get(int(device), 0)

    def mark_device_clean(self, device: int, generation: int) -> None:
        """Record that a rebuild restored ``device`` through ``generation``.

        Called by the online rebuilder once every page homed on the device
        has been rewritten from a surviving copy; from then on the device
        re-serves its stripe instead of holding stale pre-dropout data.
        """
        if not 0 <= device < self.base.num_ssds:
            raise FaultError(
                f"device index {device} outside array of "
                f"{self.base.num_ssds} SSDs"
            )
        if generation < 0:
            raise FaultError("clean generation must be non-negative")
        current = self._clean_generation.get(int(device), 0)
        self._clean_generation[int(device)] = max(current, int(generation))

    def stale_device_mask(self) -> np.ndarray:
        """Devices that recovered from a dropout but were never rebuilt.

        A stale device answers reads at full speed, yet its contents
        predate the dropout: serving them would silently hand out
        out-of-date feature pages.  Until
        :meth:`mark_device_clean` advances the device's clean generation
        past its dropout count, its pages stay unavailable.
        """
        counts = self.dropout_counts()
        if not counts.any():
            return np.zeros(self.base.num_ssds, dtype=bool)
        active, _ = self.device_states()
        clean = np.array(
            [
                self._clean_generation.get(device, 0)
                for device in range(self.base.num_ssds)
            ],
            dtype=np.int64,
        )
        return active & (counts > clean)

    def stale_page_mask(self, pages: np.ndarray) -> np.ndarray:
        """Pages homed on a recovered-but-not-yet-rebuilt device."""
        pages = np.asarray(pages, dtype=np.int64)
        stale = self.stale_device_mask()
        if not stale.any():
            return np.zeros(len(pages), dtype=bool)
        return stale[pages % self.base.num_ssds]

    def unavailable_page_mask(self, pages: np.ndarray) -> np.ndarray:
        """Pages that cannot be served from their home device right now.

        The union of *lost* pages (home device dropped out) and *stale*
        pages (home device recovered but not yet rebuilt).  Consumers
        without redundancy route these to the CPU-mirror fallback; the
        storage-HA layer routes them to replicas or parity reconstruction
        instead.
        """
        return self.lost_page_mask(pages) | self.stale_page_mask(pages)

    def effective(self) -> SSDArray:
        """The Eq. 2-3 array describing the surviving devices.

        Slowdowns scale a device's latency up and its peak IOPS down by
        the event factor; survivors are aggregated into an equivalent
        homogeneous array.  Raises :class:`FaultError` when no device is
        alive — callers must route everything to the fallback path first.
        """
        active, factors = self.device_states()
        key = (active.tobytes(), factors.tobytes())
        if key == self._cache_key and self._cache_array is not None:
            return self._cache_array
        n_active = int(active.sum())
        if n_active == 0:
            raise FaultError("all SSDs in the array have dropped out")
        live_factors = factors[active]
        spec = self.base.spec
        if (live_factors == 1.0).all() and n_active == self.base.num_ssds:
            array = self.base
        else:
            total_iops = float((spec.peak_iops / live_factors).sum())
            mean_factor = float(live_factors.mean())
            eff_spec = SSDSpec(
                name=f"{spec.name} (degraded)",
                read_latency_s=spec.read_latency_s * mean_factor,
                peak_iops=total_iops / n_active,
                page_bytes=spec.page_bytes,
            )
            array = SSDArray(
                eff_spec,
                n_active,
                t_init_extra_s=self.base.t_init_extra_s,
                t_term_s=self.base.t_term_s,
            )
        self._cache_key = key
        self._cache_array = array
        return array

    # ------------------------------------------------------------------
    # SSDArray API (delegated to the effective array)

    @property
    def spec(self) -> SSDSpec:
        return self.effective().spec

    @property
    def num_ssds(self) -> int:
        return self.effective().num_ssds

    @property
    def t_init_s(self) -> float:
        return self.effective().t_init_s

    @property
    def peak_iops(self) -> float:
        return self.effective().peak_iops

    @property
    def peak_bandwidth(self) -> float:
        return self.effective().peak_bandwidth

    def batch_service_time(self, n_requests: int) -> float:
        if n_requests == 0:
            # Valid even with every device dropped out: nothing to read.
            return 0.0
        return self.effective().batch_service_time(n_requests)

    def achieved_iops(self, n_overlapping: float) -> float:
        return self.effective().achieved_iops(n_overlapping)

    def achieved_bandwidth(self, n_overlapping: float) -> float:
        return self.effective().achieved_bandwidth(n_overlapping)

    def required_overlapping(self, target_fraction: float) -> int:
        if self.num_active == 0:
            # With no device alive every read falls back to the CPU path;
            # the healthy threshold keeps the accumulator well-defined.
            return self.base.required_overlapping(target_fraction)
        return self.effective().required_overlapping(target_fraction)

    # ------------------------------------------------------------------
    # Fault-time extras

    def tail_extra_time(self, n_spiked: int) -> float:
        """Extra elapsed time from ``n_spiked`` tail-latency requests.

        A spiked request occupies its device service slot for
        ``(multiplier - 1)`` extra latencies; the array's aggregate
        internal parallelism absorbs that occupancy, so the elapsed-time
        cost is the extra busy time divided across all live slots.
        """
        if n_spiked <= 0:
            return 0.0
        eff = self.effective()
        extra_per_request = (
            self.injector.plan.tail_latency_multiplier - 1.0
        ) * eff.spec.read_latency_s
        slots = max(1.0, eff.spec.internal_parallelism * eff.num_ssds)
        return n_spiked * extra_per_request / slots
