"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of every
fault the simulated storage stack should suffer during a run:

* per-request read failures (NVMe completion-queue error status) at a
  configured rate, with an optional distinct rate for retried commands;
* tail-latency spikes — a fraction of requests serviced at a multiple of
  the device latency (the "high variance in latency" of paper §4.2);
* whole-device events — an SSD slowing down, dropping out of the array, or
  recovering at a given *simulated* time;
* PCIe ingress link degradation (reduced effective bandwidth).

Plans are pure data; the :class:`~repro.faults.injector.FaultInjector`
turns them into seeded stochastic draws so that one plan + one seed always
reproduces the same fault sequence.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..errors import ConfigError
from .retry import RetryPolicy

#: Recognised whole-device event kinds.
DEVICE_EVENT_KINDS = ("slowdown", "dropout", "recovery")


@dataclass(frozen=True)
class DeviceEvent:
    """One whole-device state change at a simulated point in time.

    Args:
        device: index of the SSD within the array (0-based).
        kind: ``"slowdown"`` (device serves at ``1/factor`` of its rated
            speed), ``"dropout"`` (device vanishes; its pages are lost until
            recovery), or ``"recovery"`` (device returns at full speed).
        at_time_s: simulated time at which the event takes effect.
        factor: slowdown factor (>= 1) for ``"slowdown"`` events.
    """

    device: int
    kind: str
    at_time_s: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ConfigError(f"device index must be >= 0, got {self.device}")
        if self.kind not in DEVICE_EVENT_KINDS:
            raise ConfigError(
                f"unknown device event kind {self.kind!r}; "
                f"expected one of {DEVICE_EVENT_KINDS}"
            )
        if self.at_time_s < 0:
            raise ConfigError("event time must be non-negative")
        if self.factor < 1.0:
            raise ConfigError("slowdown factor must be >= 1")


@dataclass(frozen=True)
class CrashEvent:
    """A simulated whole-process crash after a completed training iteration.

    Unlike :class:`DeviceEvent` faults — which the storage stack absorbs
    in-line — a crash kills the training *process*: the
    :class:`~repro.checkpoint.supervisor.RunSupervisor` observes it, tears
    the pipeline down, and restarts from the latest valid snapshot.  Crash
    events are one-shot: once a crash has fired, the supervisor does not
    re-fire it after the restart (the modeled process only dies once per
    event).

    Args:
        at_iteration: the global completed-iteration count (1-based) after
            which the process dies.
    """

    at_iteration: int

    def __post_init__(self) -> None:
        if self.at_iteration <= 0:
            raise ConfigError(
                f"crash iteration must be >= 1, got {self.at_iteration}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable fault scenario for one run.

    All rates are probabilities in ``[0, 1)`` applied independently per
    request.  The default plan injects nothing: a null plan is guaranteed
    not to perturb modeled times or consume random numbers, so fault
    support is pay-for-what-you-use.

    ``crash_events`` are invisible to the dataloader (a plan containing
    only crashes is still *null* for the storage stack); they are consumed
    by the run supervisor, which kills and restarts the training process at
    the configured iterations.
    """

    seed: int = 0
    read_failure_rate: float = 0.0
    retry_failure_rate: float | None = None
    tail_latency_rate: float = 0.0
    tail_latency_multiplier: float = 10.0
    device_events: tuple[DeviceEvent, ...] = ()
    crash_events: tuple[CrashEvent, ...] = ()
    pcie_degradation_factor: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in ("read_failure_rate", "tail_latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if self.retry_failure_rate is not None:
            if not 0.0 <= self.retry_failure_rate <= 1.0:
                raise ConfigError("retry_failure_rate must be in [0, 1]")
        if self.tail_latency_multiplier < 1.0:
            raise ConfigError("tail_latency_multiplier must be >= 1")
        if self.pcie_degradation_factor < 1.0:
            raise ConfigError("pcie_degradation_factor must be >= 1")
        object.__setattr__(
            self, "device_events", tuple(self.device_events)
        )
        object.__setattr__(
            self, "crash_events", tuple(self.crash_events)
        )

    @property
    def effective_retry_failure_rate(self) -> float:
        """Failure probability of a retried command."""
        if self.retry_failure_rate is None:
            return self.read_failure_rate
        return self.retry_failure_rate

    def is_null(self) -> bool:
        """Whether this plan injects no faults into the *storage stack*.

        Crash events are deliberately excluded: they model process death,
        which the supervisor handles above the loader, so a crash-only plan
        must not activate the loader's fault machinery (whose presence would
        perturb nothing, but whose absence is the cheaper invariant).
        """
        return (
            self.read_failure_rate == 0.0
            and self.tail_latency_rate == 0.0
            and not self.device_events
            and self.pcie_degradation_factor == 1.0
        )

    # ------------------------------------------------------------------
    # Serialization

    def to_dict(self) -> dict:
        """Plain-dict rendering (JSON-safe)."""
        d = asdict(self)
        d["device_events"] = [asdict(e) for e in self.device_events]
        d["crash_events"] = [asdict(e) for e in self.crash_events]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan must be a JSON object, got {data!r}")
        known = {
            "seed", "read_failure_rate", "retry_failure_rate",
            "tail_latency_rate", "tail_latency_multiplier",
            "device_events", "crash_events",
            "pcie_degradation_factor", "retry",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "device_events" in kwargs:
            kwargs["device_events"] = tuple(
                e if isinstance(e, DeviceEvent) else DeviceEvent(**e)
                for e in kwargs["device_events"]
            )
        if "crash_events" in kwargs:
            kwargs["crash_events"] = tuple(
                e if isinstance(e, CrashEvent) else CrashEvent(**e)
                for e in kwargs["crash_events"]
            )
        if "retry" in kwargs and not isinstance(kwargs["retry"], RetryPolicy):
            kwargs["retry"] = RetryPolicy(**kwargs["retry"])
        return cls(**kwargs)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` CLI flag)."""
        try:
            with open(path, encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path!r}: {exc}") from exc
