"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of every
fault the simulated storage stack should suffer during a run:

* per-request read failures (NVMe completion-queue error status) at a
  configured rate, with an optional distinct rate for retried commands;
* tail-latency spikes — a fraction of requests serviced at a multiple of
  the device latency (the "high variance in latency" of paper §4.2);
* whole-device events — an SSD slowing down, dropping out of the array, or
  recovering at a given *simulated* time;
* PCIe ingress link degradation (reduced effective bandwidth).

Plans are pure data; the :class:`~repro.faults.injector.FaultInjector`
turns them into seeded stochastic draws so that one plan + one seed always
reproduces the same fault sequence.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..errors import ConfigError, FaultPlanError
from .retry import RetryPolicy

#: Recognised whole-device event kinds.  ``"fail_slow"`` is a gray failure:
#: the device keeps answering but at ``factor`` times its rated latency, the
#: signature the health monitor (:mod:`repro.storage_ha.health`) detects from
#: EWMA service-time skew against the array median.
DEVICE_EVENT_KINDS = ("slowdown", "dropout", "recovery", "fail_slow")

#: Recognised worker-scoped (GPU) event kinds.
WORKER_EVENT_KINDS = ("dropout", "recovery", "straggle")

#: Per-read corruption kind codes, as emitted by
#: :meth:`~repro.faults.injector.FaultInjector.corruption_kinds` and
#: interpreted by :class:`~repro.integrity.verifier.ReadVerifier`.
CORRUPT_NONE = 0
#: A transient in-flight bit flip: the device copy is fine, the read is not.
CORRUPT_BITFLIP = 1
#: A torn read racing a page write: half old bytes, half new.
CORRUPT_TORN = 2
#: Storm-poisoned media: every re-read returns the same corrupt bytes.
CORRUPT_PERSISTENT = 3


@dataclass(frozen=True)
class DeviceEvent:
    """One whole-device state change at a simulated point in time.

    Args:
        device: index of the SSD within the array (0-based).
        kind: ``"slowdown"`` (device serves at ``1/factor`` of its rated
            speed), ``"dropout"`` (device vanishes; its pages are lost until
            recovery), ``"recovery"`` (device returns at full speed), or
            ``"fail_slow"`` (gray failure: the device still answers every
            request but ``factor`` times slower — indistinguishable from a
            slowdown at the array level, but flagged for the storage-HA
            health monitor to catch via latency-skew inference).
        at_time_s: simulated time at which the event takes effect.
        factor: slowdown factor (>= 1) for ``"slowdown"`` events.
    """

    device: int
    kind: str
    at_time_s: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ConfigError(f"device index must be >= 0, got {self.device}")
        if self.kind not in DEVICE_EVENT_KINDS:
            raise ConfigError(
                f"unknown device event kind {self.kind!r}; "
                f"expected one of {DEVICE_EVENT_KINDS}"
            )
        if self.at_time_s < 0:
            raise ConfigError("event time must be non-negative")
        if self.factor < 1.0:
            raise ConfigError("slowdown factor must be >= 1")


def _parse_worker(worker: "int | str") -> int:
    """Normalize a worker reference (``3`` or ``"gpu:3"``) to an index."""
    if isinstance(worker, bool):
        raise ConfigError(f"worker must be an index or 'gpu:<k>', got {worker!r}")
    if isinstance(worker, int):
        return worker
    if isinstance(worker, str):
        text = worker.strip()
        if text.startswith("gpu:"):
            text = text[len("gpu:"):]
        try:
            return int(text, 10)
        except ValueError:
            pass
    raise ConfigError(
        f"worker must be an index or 'gpu:<k>', got {worker!r}"
    )


@dataclass(frozen=True)
class WorkerEvent:
    """One GPU-worker state change at a simulated point in time.

    Unlike :class:`DeviceEvent` (which degrades an SSD of the shared
    array), a worker event targets one GPU of an elastic training fleet
    (:class:`~repro.core.fleet.ElasticFleetTrainer`).  The storage stack
    never sees these — a plan holding only worker events is still *null*
    for a single-GPU loader, mirroring ``crash_events``.

    Args:
        worker: fleet worker index, either as an integer or as the
            ``"gpu:<k>"`` string form used by CLI tooling.
        kind: ``"dropout"`` (the worker vanishes mid-epoch; its remaining
            shard is re-assigned to survivors), ``"recovery"`` (the worker
            rejoins with a cold cache and reclaims a fair share of work),
            or ``"straggle"`` (the worker's local PCIe/SSD path degrades
            and its I/O runs ``factor`` times slower).
        at_time_s: simulated time at which the event takes effect.
        factor: I/O slowdown factor (>= 1) for ``"straggle"`` events.
    """

    worker: int
    kind: str
    at_time_s: float
    factor: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "worker", _parse_worker(self.worker))
        if self.worker < 0:
            raise ConfigError(
                f"worker index must be >= 0, got {self.worker}"
            )
        if self.kind not in WORKER_EVENT_KINDS:
            raise ConfigError(
                f"unknown worker event kind {self.kind!r}; "
                f"expected one of {WORKER_EVENT_KINDS}"
            )
        if self.at_time_s < 0:
            raise ConfigError("event time must be non-negative")
        if self.factor < 1.0:
            raise ConfigError("straggle factor must be >= 1")

    @property
    def target(self) -> str:
        """The canonical ``"gpu:<k>"`` spelling of the worker."""
        return f"gpu:{self.worker}"


@dataclass(frozen=True)
class CrashEvent:
    """A simulated whole-process crash after a completed training iteration.

    Unlike :class:`DeviceEvent` faults — which the storage stack absorbs
    in-line — a crash kills the training *process*: the
    :class:`~repro.checkpoint.supervisor.RunSupervisor` observes it, tears
    the pipeline down, and restarts from the latest valid snapshot.  Crash
    events are one-shot: once a crash has fired, the supervisor does not
    re-fire it after the restart (the modeled process only dies once per
    event).

    Args:
        at_iteration: the global completed-iteration count (1-based) after
            which the process dies.
    """

    at_iteration: int

    def __post_init__(self) -> None:
        if self.at_iteration <= 0:
            raise ConfigError(
                f"crash iteration must be >= 1, got {self.at_iteration}"
            )


@dataclass(frozen=True)
class CorruptionEvent:
    """A device-scoped silent-corruption storm at a simulated time.

    From ``at_time_s`` onward, a seeded pseudo-random ``page_fraction`` of
    the pages striped onto ``device`` hold *persistently* corrupt bytes —
    the media copy itself is poisoned, so re-reads keep returning the same
    bad data (unlike the plan's per-read transient rates).  Membership is a
    pure hash of ``(plan seed, storm index, page id)``: no set is ever
    materialized, no random stream is consumed, and two runs (or a
    killed-and-resumed one) agree on exactly which pages are poisoned.  A
    poisoned page heals only when something rewrites it from a good copy —
    the background scrubber, or a repair path that falls back to the
    CPU-buffer mirror.

    Args:
        device: index of the SSD within the array (0-based).
        at_time_s: simulated time the storm lands.
        page_fraction: fraction of the device's pages poisoned, in (0, 1].
    """

    device: int
    at_time_s: float
    page_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ConfigError(f"device index must be >= 0, got {self.device}")
        if self.at_time_s < 0:
            raise ConfigError("storm time must be non-negative")
        if not 0.0 < self.page_fraction <= 1.0:
            raise ConfigError(
                f"page_fraction must be in (0, 1], got {self.page_fraction}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable fault scenario for one run.

    All rates are probabilities in ``[0, 1)`` applied independently per
    request.  The default plan injects nothing: a null plan is guaranteed
    not to perturb modeled times or consume random numbers, so fault
    support is pay-for-what-you-use.

    ``crash_events`` are invisible to the dataloader (a plan containing
    only crashes is still *null* for the storage stack); they are consumed
    by the run supervisor, which kills and restarts the training process at
    the configured iterations.  ``worker_events`` are likewise invisible:
    they target GPU workers of an elastic multi-GPU fleet and are consumed
    by :class:`~repro.core.fleet.ElasticFleetTrainer`.
    """

    seed: int = 0
    read_failure_rate: float = 0.0
    retry_failure_rate: float | None = None
    tail_latency_rate: float = 0.0
    tail_latency_multiplier: float = 10.0
    bitflip_rate: float = 0.0
    torn_page_rate: float = 0.0
    device_events: tuple[DeviceEvent, ...] = ()
    crash_events: tuple[CrashEvent, ...] = ()
    corruption_events: tuple[CorruptionEvent, ...] = ()
    worker_events: tuple[WorkerEvent, ...] = ()
    pcie_degradation_factor: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in (
            "read_failure_rate",
            "tail_latency_rate",
            "bitflip_rate",
            "torn_page_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if self.retry_failure_rate is not None:
            if not 0.0 <= self.retry_failure_rate <= 1.0:
                raise ConfigError("retry_failure_rate must be in [0, 1]")
        if self.tail_latency_multiplier < 1.0:
            raise ConfigError("tail_latency_multiplier must be >= 1")
        if self.pcie_degradation_factor < 1.0:
            raise ConfigError("pcie_degradation_factor must be >= 1")
        object.__setattr__(
            self, "device_events", tuple(self.device_events)
        )
        object.__setattr__(
            self, "crash_events", tuple(self.crash_events)
        )
        object.__setattr__(
            self, "corruption_events", tuple(self.corruption_events)
        )
        object.__setattr__(
            self, "worker_events", tuple(self.worker_events)
        )

    @property
    def effective_retry_failure_rate(self) -> float:
        """Failure probability of a retried command."""
        if self.retry_failure_rate is None:
            return self.read_failure_rate
        return self.retry_failure_rate

    def is_null(self) -> bool:
        """Whether this plan injects no faults into the *storage stack*.

        Crash events are deliberately excluded: they model process death,
        which the supervisor handles above the loader, so a crash-only plan
        must not activate the loader's fault machinery (whose presence would
        perturb nothing, but whose absence is the cheaper invariant).
        """
        return (
            self.read_failure_rate == 0.0
            and self.tail_latency_rate == 0.0
            and not self.device_events
            and self.pcie_degradation_factor == 1.0
            and not self.has_corruption
        )

    @property
    def has_corruption(self) -> bool:
        """Whether any silent-corruption mechanism is configured."""
        return (
            self.bitflip_rate > 0.0
            or self.torn_page_rate > 0.0
            or bool(self.corruption_events)
        )

    # ------------------------------------------------------------------
    # Serialization

    def to_dict(self) -> dict:
        """Plain-dict rendering (JSON-safe)."""
        d = asdict(self)
        d["device_events"] = [asdict(e) for e in self.device_events]
        d["crash_events"] = [asdict(e) for e in self.crash_events]
        d["corruption_events"] = [
            asdict(e) for e in self.corruption_events
        ]
        d["worker_events"] = [
            {**asdict(e), "worker": e.target} for e in self.worker_events
        ]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan must be a JSON object, got {data!r}")
        known = {
            "seed", "read_failure_rate", "retry_failure_rate",
            "tail_latency_rate", "tail_latency_multiplier",
            "bitflip_rate", "torn_page_rate",
            "device_events", "crash_events", "corruption_events",
            "worker_events", "pcie_degradation_factor", "retry",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "device_events" in kwargs:
            kwargs["device_events"] = tuple(
                e if isinstance(e, DeviceEvent) else DeviceEvent(**e)
                for e in kwargs["device_events"]
            )
        if "crash_events" in kwargs:
            kwargs["crash_events"] = tuple(
                e if isinstance(e, CrashEvent) else CrashEvent(**e)
                for e in kwargs["crash_events"]
            )
        if "corruption_events" in kwargs:
            kwargs["corruption_events"] = tuple(
                e if isinstance(e, CorruptionEvent) else CorruptionEvent(**e)
                for e in kwargs["corruption_events"]
            )
        if "worker_events" in kwargs:
            kwargs["worker_events"] = tuple(
                e if isinstance(e, WorkerEvent) else WorkerEvent(**e)
                for e in kwargs["worker_events"]
            )
        if "retry" in kwargs and not isinstance(kwargs["retry"], RetryPolicy):
            kwargs["retry"] = RetryPolicy(**kwargs["retry"])
        return cls(**kwargs)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, source: str | None = None) -> "FaultPlan":
        """Parse a plan from JSON text.

        Malformed JSON raises :class:`~repro.errors.FaultPlanError` (never
        a raw :class:`json.JSONDecodeError`), naming ``source`` when given
        so CLI messages point at the offending file.
        """
        where = f" in {source!r}" if source else ""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"invalid fault plan JSON{where}: {exc}"
            ) from exc
        try:
            return cls.from_dict(data)
        except TypeError as exc:
            # Dataclass constructors surface bad field shapes as TypeError
            # (e.g. a string where an event object belongs); keep the
            # typed-error contract for callers.
            raise FaultPlanError(
                f"malformed fault plan{where}: {exc}"
            ) from exc

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` CLI flag).

        Unreadable files and malformed JSON raise
        :class:`~repro.errors.FaultPlanError` carrying ``path`` — raw
        ``OSError``/``JSONDecodeError`` never escape to callers.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {path!r}: {exc}"
            ) from exc
        return cls.from_json(text, source=path)
