"""Retry/backoff policy for failed storage reads, in modeled time.

When an injected fault fails a GPU-initiated read, the loader does what a
production storage stack would: retry with bounded exponential backoff,
give up after ``max_retries`` attempts, and stop burning time once the
per-batch retry budget is exhausted.  Every second spent here is
*simulated* time, charged to the loader's aggregation stage — the Python
process never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    Args:
        max_retries: re-issue attempts after the initial failure; 0 means
            fail straight to the fallback path (or raise).
        backoff_base_s: modeled wait before the first retry.
        backoff_multiplier: growth factor per subsequent retry round.
        backoff_jitter: uniform jitter as a fraction of the backoff
            (``0.1`` = up to +-10%), decorrelating retry storms.
        batch_timeout_s: modeled retry-time budget per merged storage
            batch; once spent, remaining failures go to the fallback path.
        fallback_to_cpu: serve permanently failed pages from the
            CPU-buffer/feature-store path instead of raising
            :class:`~repro.errors.RetryExhaustedError`.
    """

    max_retries: int = 3
    backoff_base_s: float = 50e-6
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    batch_timeout_s: float = 0.5
    fallback_to_cpu: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigError("backoff_jitter must be in [0, 1)")
        if self.batch_timeout_s <= 0:
            raise ConfigError("batch_timeout_s must be positive")

    def backoff_s(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Modeled backoff before retry ``attempt`` (1-based).

        With an ``rng`` the backoff carries the configured jitter; without
        one it is the deterministic midpoint.
        """
        if attempt <= 0:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if rng is None or self.backoff_jitter == 0.0:
            return base
        jitter = rng.uniform(-self.backoff_jitter, self.backoff_jitter)
        return base * (1.0 + jitter)

    def max_backoff_total_s(self) -> float:
        """Upper bound on backoff time one request can accumulate."""
        total = 0.0
        for attempt in range(1, self.max_retries + 1):
            total += (
                self.backoff_base_s
                * self.backoff_multiplier ** (attempt - 1)
                * (1.0 + self.backoff_jitter)
            )
        return total
