"""Retry/backoff policy and shared attempt-time budget, in modeled time.

When an injected fault fails a GPU-initiated read, the loader does what a
production storage stack would: retry with bounded exponential backoff,
give up after ``max_retries`` attempts, and stop burning time once the
per-batch retry budget is exhausted.  Every second spent here is
*simulated* time, charged to the loader's aggregation stage — the Python
process never sleeps.

:class:`Budget` is the deadline-aware heart of that bookkeeping, factored
out so *every* extra-attempt mechanism — training retries here, hedged
reads in the serving layer — caps its amplification with the same
total-attempt-time arithmetic and the two paths cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CheckpointError, ConfigError
from ..utils import require_finite


class Budget:
    """A spendable cap on cumulative modeled attempt time.

    The cap is on *time*, not attempt count: a mechanism may issue as many
    extra attempts as it likes while their modeled cost fits, and stops the
    moment the next attempt would not.  ``try_spend`` is the only gate —
    it either books the cost atomically or leaves the budget untouched, so
    callers never half-charge an attempt.

    ``grant`` lets long-lived users (the serving hedge policy) accrue
    headroom continuously, turning the same object into a token bucket
    denominated in seconds; one-shot users (the per-batch retry loop)
    construct it with their full allowance and never top it up.
    """

    def __init__(self, total_s: float) -> None:
        self.total_s = require_finite("budget total_s", total_s, minimum=0.0)
        self.spent_s = 0.0

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.total_s - self.spent_s)

    def can_spend(self, cost_s: float) -> bool:
        """Would ``cost_s`` fit in the remaining allowance?"""
        if cost_s < 0:
            raise ConfigError(f"cost must be non-negative, got {cost_s}")
        return self.spent_s + cost_s <= self.total_s

    def try_spend(self, cost_s: float) -> bool:
        """Book ``cost_s`` if it fits; return whether it did."""
        if not self.can_spend(cost_s):
            return False
        self.spent_s += cost_s
        return True

    def grant(self, extra_s: float) -> None:
        """Raise the cap by ``extra_s`` (continuous-accrual users)."""
        self.total_s += require_finite(
            "budget grant", extra_s, minimum=0.0
        )

    def state_dict(self) -> dict:
        return {"total_s": self.total_s, "spent_s": self.spent_s}

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {"total_s", "spent_s"}
        if unknown:
            raise CheckpointError(
                f"unknown budget fields: {sorted(unknown)}"
            )
        self.total_s = float(state["total_s"])
        self.spent_s = float(state["spent_s"])


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    Args:
        max_retries: re-issue attempts after the initial failure; 0 means
            fail straight to the fallback path (or raise).
        backoff_base_s: modeled wait before the first retry.
        backoff_multiplier: growth factor per subsequent retry round.
        backoff_jitter: uniform jitter as a fraction of the backoff
            (``0.1`` = up to +-10%), decorrelating retry storms.
        batch_timeout_s: modeled retry-time budget per merged storage
            batch; once spent, remaining failures go to the fallback path.
        fallback_to_cpu: serve permanently failed pages from the
            CPU-buffer/feature-store path instead of raising
            :class:`~repro.errors.RetryExhaustedError`.
    """

    max_retries: int = 3
    backoff_base_s: float = 50e-6
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    batch_timeout_s: float = 0.5
    fallback_to_cpu: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        require_finite("backoff_base_s", self.backoff_base_s, minimum=0.0)
        require_finite(
            "backoff_multiplier", self.backoff_multiplier, minimum=1.0
        )
        jitter = require_finite(
            "backoff_jitter", self.backoff_jitter, minimum=0.0
        )
        if jitter >= 1.0:
            raise ConfigError("backoff_jitter must be in [0, 1)")
        require_finite(
            "batch_timeout_s",
            self.batch_timeout_s,
            minimum=0.0,
            exclusive_minimum=True,
        )

    def backoff_s(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Modeled backoff before retry ``attempt`` (1-based).

        With an ``rng`` the backoff carries the configured jitter; without
        one it is the deterministic midpoint.
        """
        if attempt <= 0:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if rng is None or self.backoff_jitter == 0.0:
            return base
        jitter = rng.uniform(-self.backoff_jitter, self.backoff_jitter)
        return base * (1.0 + jitter)

    def max_backoff_total_s(self) -> float:
        """Upper bound on backoff time one request can accumulate."""
        total = 0.0
        for attempt in range(1, self.max_retries + 1):
            total += (
                self.backoff_base_s
                * self.backoff_multiplier ** (attempt - 1)
                * (1.0 + self.backoff_jitter)
            )
        return total
