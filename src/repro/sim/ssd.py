"""SSD array model: analytic service times plus a discrete-event microbench.

Two complementary views of the same devices:

* :class:`SSDArray` — closed-form service-time model used by the dataloaders.
  A feature-aggregation kernel issuing ``n`` page reads pays an initial phase
  (kernel launch + first-completion latency), a steady-state phase at peak
  IOPS, and a termination phase (Section 3.2 / Eq. 2-3 of the paper).  When a
  kernel cannot keep enough requests in flight the steady state never reaches
  peak IOPS, which is exactly the deficiency the dynamic storage access
  accumulator repairs.

* :class:`SSDMicrobench` — a discrete-event simulation of one kernel
  invocation with per-request service slots and stochastic latency.  It plays
  the role of the paper's "measured" curve in Fig. 8, against which the
  analytic model is validated.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..config import GPUSpec, SSDSpec
from ..errors import ConfigError
from ..utils import as_rng


@dataclass(frozen=True)
class SSDArray:
    """One or more identical SSDs attached to a single GPU.

    Args:
        spec: per-device characteristics.
        num_ssds: devices striped evenly (BaM distributes requests across
            SSDs round-robin, so load is balanced).
        t_init_extra_s: software overhead before the first request is issued
            (kernel launch etc.; 25 us in Section 4.2).
        t_term_s: overhead after the last completion (5 us in Section 4.2).
    """

    spec: SSDSpec
    num_ssds: int = 1
    t_init_extra_s: float = 25e-6
    t_term_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.num_ssds <= 0:
            raise ConfigError(f"num_ssds must be positive, got {self.num_ssds}")
        if self.t_init_extra_s < 0 or self.t_term_s < 0:
            raise ConfigError("phase overheads must be non-negative")

    @property
    def t_init_s(self) -> float:
        """Initial-phase duration: software overhead + first completion."""
        return self.t_init_extra_s + self.spec.read_latency_s

    @property
    def peak_iops(self) -> float:
        """Collective peak IOPS of the array."""
        return self.spec.peak_iops * self.num_ssds

    @property
    def peak_bandwidth(self) -> float:
        """Collective peak read bandwidth in bytes/s."""
        return self.peak_iops * self.spec.page_bytes

    def batch_service_time(self, n_requests: int) -> float:
        """Time for one kernel invocation to read ``n_requests`` pages.

        Models the three phases of Section 3.2: ``T_i + T_s + T_t`` with the
        steady state running at peak collective IOPS.  Small batches are
        dominated by the fixed phases — the effect the accumulator removes by
        merging iterations into one large batch.
        """
        if n_requests < 0:
            raise ConfigError(f"n_requests must be non-negative, got {n_requests}")
        if n_requests == 0:
            return 0.0
        t_steady = n_requests / self.peak_iops
        return self.t_init_s + t_steady + self.t_term_s

    @property
    def seq_read_bandwidth(self) -> float:
        """Collective large-transfer sequential read bandwidth, bytes/s.

        Distinct from :attr:`peak_bandwidth` (the 4 KB random-read
        ceiling): sequential sweeps stream 128 KB+ requests through every
        channel, which real devices serve several times faster.  Falls
        back to the random ceiling for specs without a sequential path.
        """
        return self.spec.sequential_read_bandwidth * self.num_ssds

    @property
    def seq_write_bandwidth(self) -> float:
        """Collective large-transfer sequential write bandwidth, bytes/s."""
        return self.spec.sequential_write_bandwidth * self.num_ssds

    def sequential_read_time(self, n_bytes: float) -> float:
        """Time to stream ``n_bytes`` sequentially off the array.

        Same three-phase shape as :meth:`batch_service_time` — one initial
        phase (kernel launch + first completion), a steady state at the
        *sequential* bandwidth instead of the random-read IOPS ceiling,
        and a termination phase.  Used by full-graph partition sweeps and
        activation reloads; mini-batch loaders never take this path.
        """
        if n_bytes < 0:
            raise ConfigError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.t_init_s + n_bytes / self.seq_read_bandwidth + self.t_term_s

    def sequential_write_time(self, n_bytes: float) -> float:
        """Time to stream ``n_bytes`` sequentially onto the array.

        Write counterpart of :meth:`sequential_read_time` (activation
        spill during the forward sweep).  Writes are posted, so the
        initial phase is just the software overhead — no first-completion
        read latency.
        """
        if n_bytes < 0:
            raise ConfigError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return (
            self.t_init_extra_s
            + n_bytes / self.seq_write_bandwidth
            + self.t_term_s
        )

    def achieved_iops(self, n_overlapping: float) -> float:
        """Collective IOPS achieved with ``n_overlapping`` accesses per kernel.

        This is the paper's Eq. 2-3 solved for ``IOP_achieved``: a kernel
        that issues ``N`` overlapping requests completes in
        ``T_i + N / IOP_peak + T_t`` and therefore averages
        ``N / (T_i + T_s + T_t)`` IOPS over its lifetime.
        """
        if n_overlapping < 0:
            raise ConfigError("n_overlapping must be non-negative")
        if n_overlapping == 0:
            return 0.0
        return n_overlapping / self.batch_service_time(int(n_overlapping))

    def achieved_bandwidth(self, n_overlapping: float) -> float:
        """Bytes/s counterpart of :meth:`achieved_iops`."""
        return self.achieved_iops(n_overlapping) * self.spec.page_bytes

    def required_overlapping(self, target_fraction: float) -> int:
        """Overlapping accesses needed to reach ``target_fraction`` of peak.

        Inverts Eq. 2-3: the achieved/peak ratio equals
        ``T_s / (T_i + T_s + T_t)``, so hitting fraction ``f`` requires
        ``T_s = f / (1 - f) * (T_i + T_t)`` worth of steady-state work.
        The requirement scales linearly with ``num_ssds`` and with device
        latency, matching Section 3.2.
        """
        if not 0.0 < target_fraction < 1.0:
            raise ConfigError(
                f"target fraction must be in (0, 1), got {target_fraction}"
            )
        overhead = self.t_init_s + self.t_term_s
        t_steady = target_fraction / (1.0 - target_fraction) * overhead
        n = int(np.ceil(t_steady * self.peak_iops))
        # The closed-form ceil can land one short of the target when
        # t_steady * peak_iops is an exact integer up to float rounding
        # (e.g. 45 requests achieving 499999.99999... of a 500000 target);
        # walk forward until the Eq. 2-3 forward model actually agrees.
        target_iops = target_fraction * self.peak_iops
        while n > 0 and self.achieved_iops(n) < target_iops:
            n += 1
        return n


class SSDMicrobench:
    """Discrete-event simulation of one storage-reading kernel invocation.

    Each SSD exposes ``internal_parallelism`` service slots (Little's law on
    its peak IOPS and latency); requests beyond the free slots queue.
    Per-request latency is lognormal around the spec latency, reflecting the
    "high variance in latency" the paper observes in Section 4.2.

    An optional :class:`~repro.faults.injector.FaultInjector` adds
    per-request read failures (retried in-slot with the injector's backoff
    policy) and tail-latency spikes; without one, behavior and RNG
    consumption are unchanged.
    """

    def __init__(
        self,
        spec: SSDSpec,
        num_ssds: int = 1,
        *,
        gpu: GPUSpec | None = None,
        latency_cv: float = 0.25,
        seed: int | np.random.Generator | None = 0,
        fault_injector: "FaultInjector | None" = None,
        tracer=None,
    ) -> None:
        if num_ssds <= 0:
            raise ConfigError(f"num_ssds must be positive, got {num_ssds}")
        if latency_cv < 0:
            raise ConfigError("latency coefficient of variation must be >= 0")
        self.spec = spec
        self.num_ssds = num_ssds
        self.gpu = gpu if gpu is not None else GPUSpec()
        self.latency_cv = latency_cv
        self._rng = as_rng(seed)
        self.fault_injector = fault_injector
        self.tracer = tracer

    def _draw_latencies(self, n: int) -> np.ndarray:
        """Lognormal service latencies with the configured mean and CV."""
        mean = self.spec.read_latency_s
        if self.latency_cv == 0:
            return np.full(n, mean)
        sigma2 = np.log1p(self.latency_cv**2)
        mu = np.log(mean) - sigma2 / 2.0
        return self._rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=n)

    def run(self, n_requests: int) -> tuple[float, float]:
        """Simulate a kernel that issues ``n_requests`` overlapping reads.

        Returns:
            ``(elapsed_seconds, achieved_iops)`` for the whole invocation,
            including launch and termination overheads.
        """
        if n_requests < 0:
            raise ConfigError("n_requests must be non-negative")
        if n_requests == 0:
            return 0.0, 0.0
        slots_per_ssd = max(1, int(round(self.spec.internal_parallelism)))
        latencies = self._draw_latencies(n_requests)
        start = self.gpu.kernel_launch_overhead_s

        inj = self.fault_injector
        failed = None
        if inj is not None:
            latencies = latencies * inj.latency_multipliers(n_requests)
            failed = inj.failure_mask(n_requests)

        # Per-SSD min-heaps of slot free times; requests round-robin over
        # SSDs exactly like BaM's queue-pair striping.
        slot_heaps: list[list[float]] = [
            [start] * slots_per_ssd for _ in range(self.num_ssds)
        ]
        for heap in slot_heaps:
            heapq.heapify(heap)
        last_completion = start
        for i in range(n_requests):
            heap = slot_heaps[i % self.num_ssds]
            free_at = heapq.heappop(heap)
            done = free_at + latencies[i]
            if failed is not None and failed[i]:
                # The command completed with error status; retry in the
                # same slot after backoff (the slot stays occupied, which
                # is what a held SQ entry costs the device).
                done = self._retry_in_slot(done, inj)
            heapq.heappush(heap, done)
            if done > last_completion:
                last_completion = done
        elapsed = last_completion + self.gpu.kernel_termination_overhead_s
        iops = n_requests / elapsed
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(
                "microbench_kernel",
                "ssd",
                start_s=tracer.clock_s,
                duration_s=elapsed,
                n_requests=n_requests,
                iops=iops,
            )
        return elapsed, iops

    def _retry_in_slot(self, done: float, inj) -> float:
        """Model bounded in-slot retries of one failed command."""
        policy = inj.policy
        for attempt in range(1, policy.max_retries + 1):
            done += policy.backoff_s(attempt, inj.rng) + self.spec.read_latency_s
            inj.stats.retries += 1
            if not inj.retry_failed():
                return done
            inj.stats.injected_failures += 1
        inj.stats.unrecovered += 1
        return done

    def sweep(self, n_values: list[int], repeats: int = 3) -> list[float]:
        """Mean achieved IOPS for each overlapping-access count in ``n_values``."""
        results = []
        for n in n_values:
            samples = [self.run(n)[1] for _ in range(repeats)]
            results.append(float(np.mean(samples)))
        return results
