"""Byte and request accounting shared by all dataloaders.

Every loader reports where each requested feature vector was served from —
storage, the constant CPU buffer, or the GPU software cache — so benchmarks
can compute effective bandwidths and redirect fractions exactly as the paper
does (Figs. 9-12).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import CheckpointError


@dataclass
class TransferCounters:
    """Mutable accumulator of data-movement statistics.

    The fault/resilience fields stay zero on healthy runs: ``storage_retries``
    counts re-issued commands after injected CQ errors, ``injected_faults``
    the failed completions themselves, ``fallback_requests``/``bytes`` the
    reads served by the CPU-buffer/feature-store path because their pages
    were lost (device dropout) or exhausted the retry policy, and
    ``retry_timeouts`` the batches whose retry-time budget ran out.

    The integrity fields likewise stay zero unless verify-on-read or the
    scrubber is active: ``verified_pages``/``unverified_pages`` partition
    the storage-served pages by whether their digest was checked,
    ``corrupt_detected``/``corrupt_repaired``/``corrupt_quarantined`` count
    digest mismatches and their outcomes, ``integrity_rereads`` the repair
    re-reads issued (each occupies device service like a fresh command),
    and ``scrubbed_pages`` the pages inspected by the background scrub.

    The storage-HA fields stay zero unless replication/parity is on:
    ``replica_redirects`` counts degraded-mode reads served by a surviving
    replica instead of the CPU mirror, ``parity_reconstructs`` the pages
    rebuilt inline from their parity group, ``reconstruct_reads`` the
    member reads those reconstructions issued (``k`` per page — each
    occupies device service like a fresh command), and ``rebuild_pages``
    the pages the online rebuilder rewrote on its background IOPS budget.
    """

    storage_requests: int = 0
    storage_bytes: int = 0
    cpu_buffer_requests: int = 0
    cpu_buffer_bytes: int = 0
    gpu_cache_hits: int = 0
    gpu_cache_bytes: int = 0
    page_faults: int = 0
    page_cache_hits: int = 0
    storage_retries: int = 0
    injected_faults: int = 0
    latency_spikes: int = 0
    fallback_requests: int = 0
    fallback_bytes: int = 0
    retry_timeouts: int = 0
    verified_pages: int = 0
    unverified_pages: int = 0
    corrupt_detected: int = 0
    corrupt_repaired: int = 0
    corrupt_quarantined: int = 0
    integrity_rereads: int = 0
    scrubbed_pages: int = 0
    replica_redirects: int = 0
    parity_reconstructs: int = 0
    reconstruct_reads: int = 0
    rebuild_pages: int = 0

    @property
    def total_requests(self) -> int:
        return (
            self.storage_requests
            + self.cpu_buffer_requests
            + self.gpu_cache_hits
            + self.fallback_requests
        )

    @property
    def ingress_bytes(self) -> int:
        """Bytes that crossed the GPU's PCIe ingress link."""
        return self.storage_bytes + self.cpu_buffer_bytes + self.fallback_bytes

    @property
    def fallback_fraction(self) -> float:
        """Fraction of requests served by the degraded-mode fallback path."""
        total = self.total_requests
        return self.fallback_requests / total if total else 0.0

    @property
    def total_feature_bytes(self) -> int:
        """Bytes of feature data served from any tier."""
        return self.ingress_bytes + self.gpu_cache_bytes

    @property
    def gpu_cache_hit_ratio(self) -> float:
        total = self.total_requests
        return self.gpu_cache_hits / total if total else 0.0

    @property
    def redirect_fraction(self) -> float:
        """Fraction of requests served without touching storage."""
        total = self.total_requests
        if not total:
            return 0.0
        return (total - self.storage_requests) / total

    def merge(self, other: "TransferCounters") -> None:
        """Add ``other``'s counts into this accumulator."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self) -> "TransferCounters":
        """Return an independent copy of the current counts."""
        return TransferCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def publish(self, registry, prefix: str = "transfer") -> None:
        """Add the current counts into a telemetry metrics registry.

        One :class:`~repro.telemetry.metrics.Counter` per field, named
        ``{prefix}.{field}``.  Publishing *adds*, so per-iteration counter
        objects (the loaders' granularity) can publish as they are produced
        and the registry accumulates the run total; publish a cumulative
        snapshot at most once.  The existing accounting API is unchanged.
        """
        for f in fields(self):
            value = getattr(self, f.name)
            if value:
                registry.counter(f"{prefix}.{f.name}").inc(value)

    def state_dict(self) -> dict:
        """Plain-dict snapshot (checkpointable; inverse of
        :meth:`from_state_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_state_dict(cls, state: dict) -> "TransferCounters":
        """Rebuild counters captured by :meth:`state_dict`.

        Unknown keys are rejected so a stale checkpoint from a different
        schema fails loudly instead of dropping counts silently.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(state) - known
        if unknown:
            raise CheckpointError(
                f"unknown transfer-counter fields: {sorted(unknown)}"
            )
        return cls(**{name: int(value) for name, value in state.items()})
