"""Byte and request accounting shared by all dataloaders.

Every loader reports where each requested feature vector was served from —
storage, the constant CPU buffer, or the GPU software cache — so benchmarks
can compute effective bandwidths and redirect fractions exactly as the paper
does (Figs. 9-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TransferCounters:
    """Mutable accumulator of data-movement statistics."""

    storage_requests: int = 0
    storage_bytes: int = 0
    cpu_buffer_requests: int = 0
    cpu_buffer_bytes: int = 0
    gpu_cache_hits: int = 0
    gpu_cache_bytes: int = 0
    page_faults: int = 0
    page_cache_hits: int = 0

    @property
    def total_requests(self) -> int:
        return (
            self.storage_requests
            + self.cpu_buffer_requests
            + self.gpu_cache_hits
        )

    @property
    def ingress_bytes(self) -> int:
        """Bytes that crossed the GPU's PCIe ingress link."""
        return self.storage_bytes + self.cpu_buffer_bytes

    @property
    def total_feature_bytes(self) -> int:
        """Bytes of feature data served from any tier."""
        return self.ingress_bytes + self.gpu_cache_bytes

    @property
    def gpu_cache_hit_ratio(self) -> float:
        total = self.total_requests
        return self.gpu_cache_hits / total if total else 0.0

    @property
    def redirect_fraction(self) -> float:
        """Fraction of requests served without touching storage."""
        total = self.total_requests
        if not total:
            return 0.0
        return (total - self.storage_requests) / total

    def merge(self, other: "TransferCounters") -> None:
        """Add ``other``'s counts into this accumulator."""
        self.storage_requests += other.storage_requests
        self.storage_bytes += other.storage_bytes
        self.cpu_buffer_requests += other.cpu_buffer_requests
        self.cpu_buffer_bytes += other.cpu_buffer_bytes
        self.gpu_cache_hits += other.gpu_cache_hits
        self.gpu_cache_bytes += other.gpu_cache_bytes
        self.page_faults += other.page_faults
        self.page_cache_hits += other.page_cache_hits

    def snapshot(self) -> "TransferCounters":
        """Return an independent copy of the current counts."""
        return TransferCounters(
            storage_requests=self.storage_requests,
            storage_bytes=self.storage_bytes,
            cpu_buffer_requests=self.cpu_buffer_requests,
            cpu_buffer_bytes=self.cpu_buffer_bytes,
            gpu_cache_hits=self.gpu_cache_hits,
            gpu_cache_bytes=self.gpu_cache_bytes,
            page_faults=self.page_faults,
            page_cache_hits=self.page_cache_hits,
        )
