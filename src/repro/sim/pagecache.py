"""Functional OS page cache (LRU over fixed-size pages).

The DGL mmap baseline reads node features through the operating system's
page cache: a hit is a DRAM access, a miss is a page fault that stalls the
faulting thread for the device latency plus handler overhead (Section 2.3).
This class tracks *which* pages are resident — the access stream is real —
while the time cost of the resulting hit/miss counts is assessed by
:class:`repro.sim.cpu.CPUModel`.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..errors import CapacityError, ConfigError


class PageCache:
    """An LRU page cache with a fixed capacity in pages.

    Page ids are arbitrary non-negative integers (node-to-page mapping is
    the caller's concern; see :mod:`repro.storage.layout`).
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ConfigError(
                f"capacity must be non-negative, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def access(self, page_ids: np.ndarray) -> tuple[int, int]:
        """Touch ``page_ids`` in order; fault in the misses.

        Returns:
            ``(hits, misses)`` for this access batch.
        """
        if self.capacity_pages == 0:
            n = len(page_ids)
            self.misses += n
            return 0, n
        hits = 0
        misses = 0
        pages = self._pages
        for page_id in page_ids:
            page_id = int(page_id)
            if page_id in pages:
                pages.move_to_end(page_id)
                hits += 1
            else:
                misses += 1
                if len(pages) >= self.capacity_pages:
                    pages.popitem(last=False)
                    self.evictions += 1
                pages[page_id] = None
        self.hits += hits
        self.misses += misses
        if len(pages) > self.capacity_pages:
            raise CapacityError(
                f"page cache holds {len(pages)} pages, capacity is "
                f"{self.capacity_pages}"
            )
        return hits, misses

    @property
    def hit_ratio(self) -> float:
        """Lifetime hit ratio (0.0 when nothing has been accessed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters without dropping contents."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
