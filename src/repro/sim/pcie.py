"""PCIe ingress link model.

All bytes entering the GPU — pages read from the SSDs and feature vectors
copied from the constant CPU buffer or from pinned (UVA) CPU memory — share
the GPU's single PCIe ingress link.  The constant CPU buffer exists to use
the headroom between a small SSD array's bandwidth and the 32 GB/s link
(Section 3.3); this class enforces that ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PCIeSpec
from ..errors import ConfigError


@dataclass(frozen=True)
class PCIeLink:
    """Shared-bandwidth model of the GPU ingress link.

    Args:
        spec: the link specification.
        cpu_path_efficiency: fraction of link bandwidth reachable on the
            DRAM->GPU zero-copy path.  Below 1.0 because GPU threads that
            copy feature vectors out of the CPU buffer stop enqueueing
            storage requests while doing so (Section 4.3 observes this
            effect keeps GIDS slightly under peak).
        degradation_factor: fault-injection knob — the link runs at
            ``1/degradation_factor`` of its rated bandwidth (a downtrained
            or error-retrying link).  1.0 means healthy.
    """

    spec: PCIeSpec = PCIeSpec()
    cpu_path_efficiency: float = 0.85
    degradation_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_path_efficiency <= 1.0:
            raise ConfigError("cpu_path_efficiency must be in (0, 1]")
        if self.degradation_factor < 1.0:
            raise ConfigError("degradation_factor must be >= 1")

    @property
    def bandwidth(self) -> float:
        return self.spec.bandwidth_bytes / self.degradation_factor

    @property
    def cpu_path_bandwidth(self) -> float:
        """Achievable DRAM->GPU bandwidth over this link, bytes/s."""
        return self.bandwidth * self.cpu_path_efficiency

    def transfer_time(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` over the link at full bandwidth."""
        if n_bytes < 0:
            raise ConfigError(f"byte count must be non-negative, got {n_bytes}")
        return n_bytes / self.bandwidth

    def ingress_time(
        self,
        storage_bytes: float,
        storage_time: float,
        cpu_bytes: float,
    ) -> float:
        """Combined ingress time for one aggregation phase.

        Storage reads and CPU-buffer copies proceed concurrently; the phase
        ends when both streams have landed, and the total volume can never
        move faster than the link allows:

        * the storage stream takes ``storage_time`` (from the SSD model),
        * the CPU stream takes ``cpu_bytes / cpu_path_bandwidth``,
        * the link caps everything at ``total_bytes / bandwidth``.
        """
        if storage_time < 0:
            raise ConfigError("storage_time must be non-negative")
        if storage_bytes < 0 or cpu_bytes < 0:
            raise ConfigError("byte counts must be non-negative")
        cpu_time = cpu_bytes / self.cpu_path_bandwidth
        link_floor = (storage_bytes + cpu_bytes) / self.bandwidth
        return max(storage_time, cpu_time, link_floor)
