"""GPU-side execution model.

Calibrated to Figure 3 of the paper: GPU sampling + aggregation kernels
generate 77M feature requests/s, and the training kernels consume aggregated
features at 29M requests/s.  Kernel launches carry a fixed software overhead
(25 us, Section 4.2) which matters for small graphs — the reason GPU sampling
wins by a larger margin on larger graphs (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUSpec
from ..errors import ConfigError


@dataclass(frozen=True)
class GPUModel:
    """Rate-based GPU execution model."""

    spec: GPUSpec = GPUSpec()

    def sampling_time(self, n_sampled: int, n_kernels: int = 1) -> float:
        """Time for GPU neighborhood sampling producing ``n_sampled`` nodes.

        Args:
            n_sampled: total sampled node count across all layers.
            n_kernels: kernel launches (one per sampling layer in DGL's
                GPU sampling path), each paying the launch overhead.
        """
        if n_sampled < 0:
            raise ConfigError("n_sampled must be non-negative")
        if n_kernels < 0:
            raise ConfigError("n_kernels must be non-negative")
        launch = n_kernels * self.spec.kernel_launch_overhead_s
        return launch + n_sampled / self.spec.request_generation_rate

    def request_generation_time(self, n_requests: int) -> float:
        """Time to *generate* ``n_requests`` feature requests (Fig. 3 rate)."""
        if n_requests < 0:
            raise ConfigError("n_requests must be non-negative")
        return n_requests / self.spec.request_generation_rate

    def training_time(self, n_features: int) -> float:
        """Time for the training kernels to consume ``n_features`` vectors."""
        if n_features < 0:
            raise ConfigError("n_features must be non-negative")
        return n_features / self.spec.training_consumption_rate

    def hbm_read_time(self, n_bytes: float) -> float:
        """Time to read ``n_bytes`` from HBM (GPU cache hits)."""
        if n_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        return n_bytes / self.spec.hbm_bandwidth
