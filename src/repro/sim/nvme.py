"""NVMe queue-pair model: the mechanism underneath BaM's storage path.

BaM exposes NVMe submission/completion queue pairs directly to GPU
threads: a thread builds a command, writes it into a submission queue
(SQ), rings the doorbell, and later polls the matching completion queue
(CQ).  Thousands of threads sharing many queue pairs is what creates the
request-level parallelism the Eq. 2-3 model summarizes.

This module simulates that mechanism explicitly — per-queue-pair command
slots, doorbell batching, device-side service with bounded internal
parallelism — so the aggregate behavior of :class:`repro.sim.ssd.SSDArray`
can be cross-validated against a mechanism-level simulation (see
``tests/test_sim_nvme.py``), the same relationship the paper establishes
between its analytic model and its measured microbenchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..config import SSDSpec
from ..errors import ConfigError
from ..utils import as_rng


@dataclass(frozen=True)
class QueuePairSpec:
    """Host-side queue-pair characteristics.

    Args:
        num_queue_pairs: SQ/CQ pairs the driver allocates on the device
            (BaM uses up to 128).
        queue_depth: command slots per submission queue (NVMe allows up to
            64K; 1024 is the BaM default).
        submission_overhead_s: GPU-thread time to build and enqueue one
            command (tens of nanoseconds of global-memory traffic).
        doorbell_batch: commands accumulated per doorbell write; batching
            amortizes the MMIO cost.
        doorbell_overhead_s: cost of one doorbell MMIO write.
    """

    num_queue_pairs: int = 32
    queue_depth: int = 256
    submission_overhead_s: float = 100e-9
    doorbell_batch: int = 8
    doorbell_overhead_s: float = 500e-9

    def __post_init__(self) -> None:
        if self.num_queue_pairs <= 0:
            raise ConfigError("need at least one queue pair")
        if self.queue_depth <= 0:
            raise ConfigError("queue depth must be positive")
        if self.submission_overhead_s < 0 or self.doorbell_overhead_s < 0:
            raise ConfigError("overheads must be non-negative")
        if self.doorbell_batch <= 0:
            raise ConfigError("doorbell batch must be positive")


class NVMeQueueSim:
    """Event-driven simulation of one kernel's reads through queue pairs.

    Requests are assigned to queue pairs round-robin (BaM hashes thread id
    to queue pair).  A request occupies an SQ slot from submission until
    completion; the device services at most ``internal_parallelism``
    commands concurrently, each for a (stochastic) device latency.
    """

    def __init__(
        self,
        ssd: SSDSpec,
        queues: QueuePairSpec | None = None,
        *,
        latency_cv: float = 0.15,
        seed: int | np.random.Generator | None = 0,
        fault_injector: "FaultInjector | None" = None,
        tracer=None,
    ) -> None:
        if latency_cv < 0:
            raise ConfigError("latency_cv must be non-negative")
        self.ssd = ssd
        self.queues = queues if queues is not None else QueuePairSpec()
        self.latency_cv = latency_cv
        self._rng = as_rng(seed)
        self.fault_injector = fault_injector
        self.tracer = tracer
        #: Commands that completed with CQ error status in the last run().
        self.last_cq_errors = 0

    def _latencies(self, n: int) -> np.ndarray:
        mean = self.ssd.read_latency_s
        if self.latency_cv == 0:
            return np.full(n, mean)
        sigma2 = np.log1p(self.latency_cv**2)
        mu = np.log(mean) - sigma2 / 2.0
        return self._rng.lognormal(mu, np.sqrt(sigma2), size=n)

    def run(self, n_requests: int) -> tuple[float, float]:
        """Simulate ``n_requests`` 4 KB reads; returns ``(seconds, IOPS)``.

        The submission side is modeled as a serial stream of command
        builds plus batched doorbells (massive thread parallelism makes
        per-thread submission concurrent, but SQ slot allocation serializes
        per queue, so aggregate submission throughput is bounded by the
        per-command overhead divided across queue pairs).
        """
        if n_requests < 0:
            raise ConfigError("n_requests must be non-negative")
        if n_requests == 0:
            return 0.0, 0.0
        q = self.queues
        latencies = self._latencies(n_requests)
        # Slot quantization correction: with `slots` concurrent commands at
        # mean latency L the device would sustain slots/L IOPS, which the
        # integer rounding of `internal_parallelism` can push past the
        # rated peak.  Scale service times so the sustained rate equals
        # the spec exactly.
        slots = max(1, int(round(self.ssd.internal_parallelism)))
        latencies *= slots / (self.ssd.peak_iops * self.ssd.read_latency_s)

        # Submission times: each queue pair is an independent serial
        # submitter; request i goes to queue i % Q at that queue's pace.
        per_command = q.submission_overhead_s + (
            q.doorbell_overhead_s / q.doorbell_batch
        )
        queue_of = np.arange(n_requests) % q.num_queue_pairs
        rank_in_queue = np.arange(n_requests) // q.num_queue_pairs
        submit_time = (rank_in_queue + 1) * per_command

        # Device service: bounded internal parallelism; a request also
        # cannot be submitted while its queue's depth is exhausted, which
        # we model by delaying submission until the slot `rank - depth`
        # of the same queue has completed.
        inj = self.fault_injector
        failed = None
        self.last_cq_errors = 0
        if inj is not None:
            latencies = latencies * inj.latency_multipliers(n_requests)
            failed = inj.failure_mask(n_requests)

        device_free: list[float] = [0.0] * slots
        heapq.heapify(device_free)
        completion = np.zeros(n_requests)
        for i in range(n_requests):
            ready = submit_time[i]
            blocker = i - q.queue_depth * q.num_queue_pairs
            if blocker >= 0:
                # Same-queue slot reuse: wait for an earlier completion.
                ready = max(ready, completion[blocker])
            slot_free = heapq.heappop(device_free)
            start = max(ready, slot_free)
            done = start + latencies[i]
            if failed is not None and failed[i]:
                # CQ entry carried an error status: the host re-submits the
                # command (bounded retries, backoff), holding the SQ slot.
                self.last_cq_errors += 1
                done = self._resubmit(done, inj)
            heapq.heappush(device_free, done)
            completion[i] = done
        elapsed = float(completion.max())
        iops = n_requests / elapsed
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(
                "nvme_kernel",
                "ssd",
                start_s=tracer.clock_s,
                duration_s=elapsed,
                n_requests=n_requests,
                iops=iops,
                cq_errors=self.last_cq_errors,
            )
        return elapsed, iops

    def _resubmit(self, done: float, inj) -> float:
        """Re-issue one failed command until success or retry exhaustion."""
        policy = inj.policy
        resubmit_cost = self.queues.submission_overhead_s + (
            self.queues.doorbell_overhead_s / self.queues.doorbell_batch
        )
        for attempt in range(1, policy.max_retries + 1):
            done += (
                policy.backoff_s(attempt, inj.rng)
                + resubmit_cost
                + self.ssd.read_latency_s
            )
            inj.stats.retries += 1
            if not inj.retry_failed():
                return done
            self.last_cq_errors += 1
            inj.stats.injected_failures += 1
        inj.stats.unrecovered += 1
        return done

    def sustained_iops(self, n_requests: int = 16384) -> float:
        """Steady-state IOPS estimate from one large batch."""
        return self.run(n_requests)[1]
