"""CPU-side execution model for data preparation.

The baseline dataloaders (DGL mmap, Ginex) run graph sampling and feature
gathering on the CPU.  Figure 3 of the paper shows that CPU request
generation plateaus at 4.1M feature requests/s (16 threads) — far below the
GPU training kernels' 29M/s consumption rate — and that page faults on
memory-mapped feature files add storage latency that the CPU cannot hide.
This model turns counted work (requests generated, pages faulted) into
simulated time using those calibrated rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CPUSpec, SSDSpec
from ..errors import ConfigError


@dataclass(frozen=True)
class CPUModel:
    """Rate-based CPU execution model.

    Args:
        spec: calibrated CPU characteristics.
        threads: worker threads used for data preparation (16 in the paper's
            measurements, beyond which throughput plateaus).
    """

    spec: CPUSpec = CPUSpec()
    threads: int = 16

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ConfigError(f"threads must be positive, got {self.threads}")

    @property
    def request_rate(self) -> float:
        """Feature-request generation rate (requests/s) at this thread count."""
        return self.spec.request_rate(self.threads)

    def sampling_time(self, n_sampled: int) -> float:
        """Time to run neighborhood sampling producing ``n_sampled`` nodes.

        Sampling is a pointer-chasing traversal; its throughput is bounded by
        the same request-generation plateau as gathering (Fig. 3 measures
        the two stages together as "data preparation").
        """
        if n_sampled < 0:
            raise ConfigError("n_sampled must be non-negative")
        return n_sampled / self.request_rate

    def gather_time_resident(self, n_features: int) -> float:
        """Time to gather ``n_features`` vectors that are memory-resident."""
        if n_features < 0:
            raise ConfigError("n_features must be non-negative")
        return n_features / self.request_rate

    def fault_service_time(
        self, n_faults: int, ssd: SSDSpec, *, threads: int | None = None
    ) -> float:
        """Time the OS paging path needs to fault in ``n_faults`` pages.

        Each fault costs the handler overhead plus a full device read; the
        on-demand paging path keeps only ``fault_queue_depth_per_thread``
        I/Os in flight per faulting thread, so faults are almost serial per
        thread — the reason mmap cannot hide storage latency (Section 2.3).

        Args:
            n_faults: pages to fault in.
            ssd: the backing device.
            threads: concurrently faulting threads; defaults to the model's
                worker count.  NumPy's ``memmap`` fancy-indexing gather — the
                paper's baseline implementation — faults from a *single*
                thread, so the mmap loader passes 1 here.
        """
        if n_faults < 0:
            raise ConfigError("n_faults must be non-negative")
        if n_faults == 0:
            return 0.0
        fault_threads = self.threads if threads is None else threads
        if fault_threads <= 0:
            raise ConfigError("fault thread count must be positive")
        per_fault = self.spec.page_fault_overhead_s + ssd.read_latency_s
        concurrency = fault_threads * self.spec.fault_queue_depth_per_thread
        # Faults also cannot exceed what the device itself can deliver.
        device_floor = n_faults / ssd.peak_iops
        return max(n_faults * per_fault / concurrency, device_floor)

    def async_io_rate(
        self,
        ssd: SSDSpec,
        num_ssds: int = 1,
        *,
        queue_depth_per_thread: int = 8,
        submit_overhead_s: float = 20e-6,
    ) -> float:
        """Achievable IOPS of CPU-initiated asynchronous storage reads.

        Used by the Ginex baseline, which issues batched async reads instead
        of faulting.  Three ceilings apply: the in-flight window over device
        latency (Little's law), the CPU cost of submitting and completing
        each I/O through the kernel storage stack, and the devices' peak.
        This is what "the CPU cannot fully hide storage latency" (Section 5)
        amounts to quantitatively.
        """
        if queue_depth_per_thread <= 0:
            raise ConfigError("queue depth must be positive")
        if submit_overhead_s <= 0:
            raise ConfigError("submit overhead must be positive")
        if num_ssds <= 0:
            raise ConfigError("num_ssds must be positive")
        in_flight = self.threads * queue_depth_per_thread
        latency_bound = in_flight / ssd.read_latency_s
        submit_bound = self.threads / submit_overhead_s
        device_bound = ssd.peak_iops * num_ssds
        return min(latency_bound, submit_bound, device_bound)

    def dram_read_time(self, n_bytes: float) -> float:
        """Time to stream ``n_bytes`` out of CPU DRAM."""
        if n_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        return n_bytes / self.spec.memory_bandwidth
