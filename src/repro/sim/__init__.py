"""Hardware simulation substrate.

These modules replace the paper's physical testbed (A100 GPU, Intel Optane /
Samsung 980 Pro NVMe SSDs, PCIe Gen4, EPYC CPU) with calibrated device
models.  Every model consumes *real* access streams produced by the
functional layers (sampling, caching) and returns *simulated time*; no
wall-clock measurement of the Python process is ever reported.
"""

from .ssd import SSDArray, SSDMicrobench
from .nvme import NVMeQueueSim, QueuePairSpec
from .pcie import PCIeLink
from .cpu import CPUModel
from .gpu import GPUModel
from .pagecache import PageCache
from .counters import TransferCounters

__all__ = [
    "SSDArray",
    "SSDMicrobench",
    "NVMeQueueSim",
    "QueuePairSpec",
    "PCIeLink",
    "CPUModel",
    "GPUModel",
    "PageCache",
    "TransferCounters",
]
