"""Baseline dataloaders the paper compares against.

* :class:`DGLMmapLoader` — the state-of-the-art DGL dataloader extended with
  memory-mapped feature files (the paper's primary baseline, Fig. 4).
* :class:`GinexLoader` — Ginex-style super-batch Belady caching with
  pipelined CPU data preparation (Park et al., VLDB'22).
* :class:`UVALoader` — DGL's UVA zero-copy loader, valid only when the
  whole dataset fits in CPU memory (Section 2.3).
"""

from .mmap_loader import DGLMmapLoader
from .ginex import GinexLoader
from .uva import UVALoader

__all__ = ["DGLMmapLoader", "GinexLoader", "UVALoader"]
