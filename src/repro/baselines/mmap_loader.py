"""DGL baseline dataloader with memory-mapped feature files (Fig. 4).

Graph structure is pinned in CPU memory; node features are memory-mapped
from storage.  Data preparation runs on the CPU: sampling traverses the
structure at the CPU's plateau request rate, and feature gathering reads the
mapped table through the OS page cache — a hit costs a DRAM access, a miss
costs a page fault whose latency the nearly synchronous paging path cannot
hide (Section 2.3).  Gathered features then cross PCIe to the GPU.

The page cache is *functional*: real page ids stream through a real LRU, so
the fault count reflects the actual locality of the sampled workload and
datasets smaller than CPU memory fault only until warm (which is why the
baseline is competitive on ogbn-papers100M and MAG240M, Figs. 13-14).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigError
from ..graph.datasets import ScaledDataset
from ..pipeline.metrics import IterationMetrics, RunReport, StageTimes
from ..sampling.minibatch import MiniBatch
from ..sampling.neighbor import NeighborSampler
from ..sampling.ladies import LadiesSampler
from ..sampling.seeds import epoch_seed_batches
from ..sim.counters import TransferCounters
from ..sim.cpu import CPUModel
from ..sim.gpu import GPUModel
from ..sim.pagecache import PageCache
from ..sim.pcie import PCIeLink
from ..storage.feature_store import FeatureStore
from ..utils import as_rng


class DGLMmapLoader:
    """CPU data preparation over memory-mapped feature files."""

    name = "DGL-mmap"

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        *,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (10, 5, 5),
        sampler_kind: str = "neighbor",
        layer_sizes: tuple[int, ...] | None = None,
        threads: int = 16,
        fault_threads: int = 1,
        features: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if fault_threads <= 0:
            raise ConfigError("fault_threads must be positive")
        self.dataset = dataset
        self.system = system
        self.batch_size = batch_size
        # DGL's mmap path gathers with NumPy memmap fancy indexing, which
        # faults from a single thread; raise this to model a hand-threaded
        # gather.
        self.fault_threads = fault_threads
        self._rng = as_rng(seed)

        self.store = FeatureStore(
            dataset.num_nodes, dataset.feature_dim, data=features
        )
        self.layout = self.store.layout
        self.cpu = CPUModel(system.cpu, threads=threads)
        self.gpu = GPUModel(system.gpu)
        self.pcie = PCIeLink(system.pcie)

        if sampler_kind == "neighbor":
            self.sampler = NeighborSampler(
                dataset.graph, fanouts, seed=self._rng
            )
        elif sampler_kind == "ladies":
            sizes = layer_sizes if layer_sizes is not None else (512,) * 3
            self.sampler = LadiesSampler(dataset.graph, sizes, seed=self._rng)
        else:
            raise ConfigError(
                f"unknown sampler kind {sampler_kind!r}; "
                "expected 'neighbor' or 'ladies'"
            )

        # The OS page cache gets whatever CPU memory the pinned structure
        # data leaves free.
        free_bytes = max(
            0.0, system.usable_cpu_memory - dataset.structure_data_bytes
        )
        self.page_cache = PageCache(
            capacity_pages=int(free_bytes // self.layout.page_bytes)
        )
        self._seed_stream = self._seed_batches()

    def _seed_batches(self) -> Iterator[np.ndarray]:
        while True:
            yield from epoch_seed_batches(
                self.dataset.train_ids,
                self.batch_size,
                shuffle=True,
                seed=self._rng,
            )

    def _one_iteration(self) -> tuple[MiniBatch, IterationMetrics]:
        seeds = next(self._seed_stream)
        batch = self.sampler.sample(seeds)
        nodes = batch.input_nodes
        pages = self.layout.pages_for_nodes(nodes)
        hits, misses = self.page_cache.access(pages)

        sampling_time = self.cpu.sampling_time(batch.num_sampled)
        aggregation_time = self.cpu.gather_time_resident(
            len(nodes)
        ) + self.cpu.fault_service_time(
            misses, self.system.ssd, threads=self.fault_threads
        )
        feature_bytes = len(nodes) * self.store.feature_bytes
        transfer_time = self.pcie.transfer_time(feature_bytes)
        training_time = self.gpu.training_time(len(nodes))

        counters = TransferCounters(
            storage_requests=misses,
            storage_bytes=misses * self.layout.page_bytes,
            page_faults=misses,
            page_cache_hits=hits,
        )
        metrics = IterationMetrics(
            times=StageTimes(
                sampling=sampling_time,
                aggregation=aggregation_time,
                transfer=transfer_time,
                training=training_time,
            ),
            num_seeds=len(batch.seeds),
            num_input_nodes=len(nodes),
            num_sampled=batch.num_sampled,
            num_edges=batch.num_edges,
            counters=counters,
        )
        return batch, metrics

    def run(self, num_iterations: int, *, warmup: int = 100) -> RunReport:
        """Warm the OS page cache, then measure ``num_iterations``.

        The paper warms the baseline for 1000 iterations; at our scaled
        dataset sizes the page cache reaches steady state much sooner, so
        100 warmup iterations are the default.
        """
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if warmup < 0:
            raise ConfigError("warmup must be non-negative")
        if self.page_cache.capacity_pages >= self.layout.total_pages:
            # The whole feature file fits in the page cache: after the
            # paper's 1000-iteration warmup the OS has effectively loaded
            # it (sequential faults at device bandwidth), so the measured
            # window sees no faults — the behavior Figs. 13-14 report for
            # ogbn-papers100M and MAG240M.
            self.page_cache.access(
                np.arange(self.layout.total_pages, dtype=np.int64)
            )
        for _ in range(warmup):
            self._one_iteration()
        self.page_cache.reset_stats()
        report = RunReport(loader_name=self.name, overlapped=False)
        for _ in range(num_iterations):
            _, metrics = self._one_iteration()
            report.append(metrics)
        return report

    def iter_batches(
        self, num_iterations: int
    ) -> Iterator[tuple[MiniBatch, np.ndarray]]:
        """Yield ``(mini-batch, input feature matrix)`` pairs for training."""
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        for _ in range(num_iterations):
            batch, _ = self._one_iteration()
            yield batch, self.store.fetch(batch.input_nodes)
