"""Ginex-style baseline: super-batch Belady caching on the CPU.

Ginex (Park et al., VLDB'22) samples a *super-batch* of mini-batches up
front, which makes the future access sequence known, and manages an
in-CPU-memory feature cache with Belady's provably optimal eviction.  It
pipelines sampling, cache planning and gathering so that sampling time
hides behind feature I/O.  Feature misses are fetched with CPU-initiated
asynchronous reads — better than mmap's synchronous faults, but still
bounded by the CPU's I/O submission capacity and the in-flight window over
device latency (Section 5 of the GIDS paper: Ginex "cannot fully hide
storage latency").

As in the paper, this loader supports only homogeneous graphs and
neighborhood sampling.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..cache.belady import BeladyCache
from ..config import SystemConfig
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..graph.datasets import ScaledDataset
from ..integrity import VERIFY_BANDWIDTH_BYTES_PER_S, VERIFY_MODES
from ..pipeline.metrics import IterationMetrics, RunReport, StageTimes
from ..sampling.minibatch import MiniBatch
from ..sampling.neighbor import NeighborSampler
from ..sampling.seeds import epoch_seed_batches
from ..sim.counters import TransferCounters
from ..sim.cpu import CPUModel
from ..sim.gpu import GPUModel
from ..sim.pcie import PCIeLink
from ..storage.feature_store import FeatureStore
from ..utils import as_rng


class GinexLoader:
    """Super-batch Belady caching with pipelined CPU data preparation.

    Args:
        dataset: the (scaled) graph dataset; must be homogeneous.
        system: hardware configuration.
        superbatch_size: mini-batches sampled ahead per super-batch.
        planning_rate: accesses/s the CPU can plan Belady decisions for
            (changeset inspection + metadata updates).
        sample_threads: CPU threads of the (pipelined) sampling stage.
        io_threads: CPU threads of the feature I/O stage.  Ginex's pipeline
            dedicates a small pool to feature I/O (the other stages hold the
            remaining cores), which is what keeps its achieved storage IOPS
            far below the GPU-initiated path.
        io_queue_depth: outstanding async reads per I/O thread.
    """

    name = "Ginex"

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        *,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (10, 5, 5),
        superbatch_size: int = 8,
        planning_rate: float = 2e6,
        sample_threads: int = 16,
        io_threads: int = 4,
        io_queue_depth: int = 2,
        features: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        verify_reads: str = "off",
        verify_sample_rate: float = 0.1,
    ) -> None:
        if dataset.hetero is not None:
            raise ConfigError(
                "Ginex supports only homogeneous graphs (Section 4.1)"
            )
        if superbatch_size <= 0:
            raise ConfigError("superbatch_size must be positive")
        if planning_rate <= 0:
            raise ConfigError("planning_rate must be positive")
        self.dataset = dataset
        self.system = system
        self.batch_size = batch_size
        self.superbatch_size = superbatch_size
        self.planning_rate = planning_rate
        self._rng = as_rng(seed)

        self.store = FeatureStore(
            dataset.num_nodes, dataset.feature_dim, data=features
        )
        self.layout = self.store.layout
        self.cpu = CPUModel(system.cpu, threads=sample_threads)
        self._io_cpu = CPUModel(system.cpu, threads=io_threads)
        self.gpu = GPUModel(system.gpu)
        self.pcie = PCIeLink(system.pcie)
        self.sampler = NeighborSampler(dataset.graph, fanouts, seed=self._rng)

        free_bytes = max(
            0.0, system.usable_cpu_memory - dataset.structure_data_bytes
        )
        self.cache = BeladyCache(
            capacity_pages=int(free_bytes // self.layout.page_bytes)
        )
        self._io_queue_depth = io_queue_depth
        self._io_rate = self._io_cpu.async_io_rate(
            system.ssd,
            system.num_ssds,
            queue_depth_per_thread=io_queue_depth,
        )
        self._seed_stream = self._seed_batches()

        # Fault injection mirrors the GPU-initiated loaders: CPU-issued
        # async reads suffer the same failure/spike rates and device
        # events; retries and backoff are charged to the aggregation stage.
        self.fault_plan = fault_plan
        self.faults: FaultInjector | None = None
        self._sim_now_s = 0.0
        # Ginex's miss serving is aggregate (counts, not page ids), so its
        # integrity support is aggregate too: transient corruption (bit
        # flips, torn reads) is drawn binomially over the delivered reads
        # and — under "sample"/"full" verification — detected and repaired
        # by modeled re-read.  Storm-poisoned media needs per-page identity
        # and is modeled only by the GIDS-family loaders.
        if verify_reads not in VERIFY_MODES:
            raise ConfigError(
                f"unknown verify mode {verify_reads!r}; "
                f"expected one of {VERIFY_MODES}"
            )
        self.verify_reads = verify_reads
        self.verify_sample_rate = float(verify_sample_rate)
        if fault_plan is not None and not fault_plan.is_null():
            self.faults = FaultInjector(fault_plan, retry_policy)
            if fault_plan.pcie_degradation_factor > 1.0:
                self.pcie = PCIeLink(
                    system.pcie,
                    degradation_factor=fault_plan.pcie_degradation_factor,
                )

    def _seed_batches(self) -> Iterator[np.ndarray]:
        while True:
            yield from epoch_seed_batches(
                self.dataset.train_ids,
                self.batch_size,
                shuffle=True,
                seed=self._rng,
            )

    def _superbatch(
        self, n_batches: int
    ) -> tuple[list[MiniBatch], list[IterationMetrics]]:
        """Sample, plan and serve one super-batch of ``n_batches``."""
        batches = [
            self.sampler.sample(next(self._seed_stream))
            for _ in range(n_batches)
        ]
        page_lists = [
            self.layout.pages_for_nodes(b.input_nodes) for b in batches
        ]
        accesses = np.concatenate(page_lists) if page_lists else np.empty(0)
        hits, misses = self.cache.process_superbatch(accesses)

        # Apportion super-batch hits/misses to iterations by page share.
        total_pages = max(1, len(accesses))
        planning_time_total = len(accesses) / self.planning_rate

        metrics = []
        for batch, pages in zip(batches, page_lists):
            share = len(pages) / total_pages
            it_misses = int(round(misses * share))
            it_hits = len(pages) - it_misses

            n_nodes = batch.num_input_nodes
            sampling_time = self.cpu.sampling_time(batch.num_sampled)
            io_time, counters = self._serve_misses(it_misses)
            counters.page_cache_hits = it_hits
            gather_time = (
                self.cpu.gather_time_resident(n_nodes)
                + planning_time_total * share
            )
            # Ginex pipelines sampling behind the gather/I/O stage; only the
            # part of sampling that the aggregation cannot hide is exposed.
            exposed_sampling = max(
                0.0, sampling_time - (io_time + gather_time)
            )
            feature_bytes = n_nodes * self.store.feature_bytes
            times = StageTimes(
                sampling=exposed_sampling,
                aggregation=io_time + gather_time,
                transfer=self.pcie.transfer_time(feature_bytes),
                training=self.gpu.training_time(n_nodes),
            )
            metrics.append(
                IterationMetrics(
                    times=times,
                    num_seeds=len(batch.seeds),
                    num_input_nodes=n_nodes,
                    num_sampled=batch.num_sampled,
                    num_edges=batch.num_edges,
                    counters=counters,
                )
            )
        self._sim_now_s += sum(m.times.total for m in metrics)
        return batches, metrics

    def _serve_misses(self, it_misses: int) -> tuple[float, TransferCounters]:
        """Model feature I/O for one iteration's cache misses.

        Healthy path: ``misses / io_rate``.  Under a fault plan the misses
        on dropped-out devices fall back to a CPU-resident gather, failed
        reads are retried with backoff, and the async I/O rate is
        re-derived from the surviving device count.
        """
        page_bytes = self.layout.page_bytes
        if self.faults is None:
            return it_misses / self._io_rate, TransferCounters(
                storage_requests=it_misses,
                storage_bytes=it_misses * page_bytes,
            )

        active, _ = self.faults.device_states(
            self._sim_now_s, self.system.num_ssds
        )
        n_active = int(active.sum())
        n_lost = (
            it_misses
            if n_active == 0
            else int(round(it_misses * (1.0 - n_active / self.system.num_ssds)))
        )
        n_storage = it_misses - n_lost
        outcome = self.faults.resolve_batch(n_storage)
        n_spiked = self.faults.spike_count(n_storage)
        n_fallback = n_lost + outcome.unrecovered
        delivered = n_storage - outcome.unrecovered

        io_time = outcome.backoff_s
        if n_storage:
            io_rate = self._io_cpu.async_io_rate(
                self.system.ssd,
                n_active,
                queue_depth_per_thread=self._io_queue_depth,
            )
            io_time += (n_storage + outcome.retries) / io_rate
            # A spiked read occupies one in-flight I/O slot for the extra
            # latencies; the window absorbs it across its whole depth.
            in_flight = max(1, self._io_cpu.threads * self._io_queue_depth)
            io_time += (
                n_spiked
                * (self.faults.plan.tail_latency_multiplier - 1.0)
                * self.system.ssd.read_latency_s
                / in_flight
            )
        # Lost/unrecovered pages are gathered from the CPU-resident
        # feature mirror instead.
        io_time += self.cpu.gather_time_resident(n_fallback)

        # Aggregate integrity pass: transient corruption among the
        # delivered reads, verified per the configured mode.  Every
        # detection heals on one re-read (transient by construction here),
        # so Ginex never quarantines.
        plan = self.faults.plan
        n_corrupt = detected = verified = 0
        transient_rate = min(1.0, plan.bitflip_rate + plan.torn_page_rate)
        if transient_rate > 0.0 and delivered > 0:
            n_corrupt = int(
                self.faults.rng.binomial(delivered, transient_rate)
            )
            self.faults.count_emitted(n_corrupt)
        if self.verify_reads == "full":
            verified = delivered
            detected = n_corrupt
        elif self.verify_reads == "sample" and delivered > 0:
            verified = int(
                self.faults.rng.binomial(delivered, self.verify_sample_rate)
            )
            if n_corrupt:
                detected = int(
                    self.faults.rng.binomial(
                        n_corrupt, self.verify_sample_rate
                    )
                )
        if verified:
            io_time += verified * page_bytes / VERIFY_BANDWIDTH_BYTES_PER_S
        if detected:
            io_time += detected / self._io_rate
        integrity_on = self.verify_reads != "off" or plan.has_corruption
        unverified = delivered - verified if integrity_on else 0

        counters = TransferCounters(
            storage_requests=n_storage,
            storage_bytes=delivered * page_bytes,
            storage_retries=outcome.retries,
            injected_faults=outcome.injected_failures,
            latency_spikes=n_spiked,
            fallback_requests=n_fallback,
            fallback_bytes=n_fallback * page_bytes,
            retry_timeouts=1 if outcome.timed_out else 0,
            verified_pages=verified,
            unverified_pages=unverified,
            corrupt_detected=detected,
            corrupt_repaired=detected,
            integrity_rereads=detected,
        )
        return io_time, counters

    def run(self, num_iterations: int, *, warmup: int = 100) -> RunReport:
        """Warm the Belady cache, then measure ``num_iterations``."""
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if warmup < 0:
            raise ConfigError("warmup must be non-negative")
        remaining = warmup
        while remaining > 0:
            n = min(self.superbatch_size, remaining)
            self._superbatch(n)
            remaining -= n
        self.cache.stats.reset()
        report = RunReport(loader_name=self.name, overlapped=False)
        remaining = num_iterations
        while remaining > 0:
            n = min(self.superbatch_size, remaining)
            _, metrics = self._superbatch(n)
            for m in metrics:
                report.append(m)
            remaining -= n
        return report

    def iter_batches(
        self, num_iterations: int
    ) -> Iterator[tuple[MiniBatch, np.ndarray]]:
        """Yield ``(mini-batch, input feature matrix)`` pairs for training."""
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        remaining = num_iterations
        while remaining > 0:
            n = min(self.superbatch_size, remaining)
            batches, _ = self._superbatch(n)
            for batch in batches:
                yield batch, self.store.fetch(batch.input_nodes)
            remaining -= n
