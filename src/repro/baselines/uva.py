"""UVA zero-copy baseline: the whole dataset pinned in CPU memory.

DGL's UVA mode (Section 2.3) pins both the structure and the feature table
in CPU memory and lets GPU kernels sample and gather through zero-copy
accesses.  It is fast — data preparation runs on the GPU — but only valid
when the entire dataset fits in (usable) CPU memory; constructing this
loader for a larger dataset raises :class:`~repro.errors.CapacityError`,
mirroring the hard limit that motivates GIDS.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..config import SystemConfig
from ..errors import CapacityError, ConfigError
from ..graph.datasets import ScaledDataset
from ..pipeline.metrics import IterationMetrics, RunReport, StageTimes
from ..sampling.minibatch import MiniBatch
from ..sampling.neighbor import NeighborSampler
from ..sampling.seeds import epoch_seed_batches
from ..sim.counters import TransferCounters
from ..sim.gpu import GPUModel
from ..sim.pcie import PCIeLink
from ..storage.feature_store import FeatureStore
from ..utils import as_rng


class UVALoader:
    """GPU data preparation over CPU-pinned memory (no storage involved)."""

    name = "DGL-UVA"

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        *,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (10, 5, 5),
        features: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if dataset.total_bytes > system.usable_cpu_memory:
            raise CapacityError(
                f"{dataset.name} needs {dataset.total_bytes} bytes pinned but "
                f"only {system.usable_cpu_memory:.0f} bytes of CPU memory are "
                "usable; UVA requires the whole dataset in CPU memory"
            )
        self.dataset = dataset
        self.system = system
        self.batch_size = batch_size
        self._rng = as_rng(seed)

        self.store = FeatureStore(
            dataset.num_nodes, dataset.feature_dim, data=features
        )
        self.gpu = GPUModel(system.gpu)
        self.pcie = PCIeLink(system.pcie)
        self.sampler = NeighborSampler(dataset.graph, fanouts, seed=self._rng)
        self._seed_stream = self._seed_batches()

    def _seed_batches(self) -> Iterator[np.ndarray]:
        while True:
            yield from epoch_seed_batches(
                self.dataset.train_ids,
                self.batch_size,
                shuffle=True,
                seed=self._rng,
            )

    def _one_iteration(self) -> tuple[MiniBatch, IterationMetrics]:
        seeds = next(self._seed_stream)
        batch = self.sampler.sample(seeds)
        n_nodes = batch.num_input_nodes
        feature_bytes = n_nodes * self.store.feature_bytes

        sampling_time = self.gpu.sampling_time(
            batch.num_sampled, n_kernels=batch.num_layers
        )
        # Zero-copy gather streams features from pinned DRAM over PCIe.
        aggregation_time = feature_bytes / self.pcie.cpu_path_bandwidth
        times = StageTimes(
            sampling=sampling_time,
            aggregation=aggregation_time,
            transfer=0.0,
            training=self.gpu.training_time(n_nodes),
        )
        counters = TransferCounters(
            cpu_buffer_requests=n_nodes,
            cpu_buffer_bytes=feature_bytes,
        )
        metrics = IterationMetrics(
            times=times,
            num_seeds=len(batch.seeds),
            num_input_nodes=n_nodes,
            num_sampled=batch.num_sampled,
            num_edges=batch.num_edges,
            counters=counters,
        )
        return batch, metrics

    def run(self, num_iterations: int, *, warmup: int = 0) -> RunReport:
        """Measure ``num_iterations`` (UVA needs no cache warmup)."""
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if warmup < 0:
            raise ConfigError("warmup must be non-negative")
        for _ in range(warmup):
            self._one_iteration()
        report = RunReport(loader_name=self.name, overlapped=False)
        for _ in range(num_iterations):
            _, metrics = self._one_iteration()
            report.append(metrics)
        return report

    def iter_batches(
        self, num_iterations: int
    ) -> Iterator[tuple[MiniBatch, np.ndarray]]:
        """Yield ``(mini-batch, input feature matrix)`` pairs for training."""
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        for _ in range(num_iterations):
            batch, _ = self._one_iteration()
            yield batch, self.store.fetch(batch.input_nodes)
