"""Hardware specifications and calibrated presets.

Every constant that the simulation substrate depends on lives here, sourced
from the GIDS paper (Table 1, Section 4.1 and 4.2, Figure 3):

* Intel Optane SSD: 11 us read latency, 1.5M peak IOPS at 4 KB.
* Samsung 980 Pro SSD: 324 us read latency, 0.7M peak IOPS at 4 KB.
* Kernel launch / initial software overhead: 25 us; termination: 5 us.
* PCIe Gen4 x16 GPU ingress: 32 GB/s.
* CPU data preparation plateaus at 4.1M feature requests/s (16 threads).
* GPU request generation: 77M req/s; training consumption: 29M req/s.
* NVIDIA A100: 40 GB HBM2 at 1555 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigError

#: Storage page (cache-line) granularity used throughout the paper.
PAGE_BYTES = 4096


@dataclass(frozen=True)
class SSDSpec:
    """A single NVMe SSD as seen by the GPU.

    ``peak_iops`` and ``read_latency_s`` are for 4 KB random reads; the
    device-internal parallelism implied by Little's law
    (``peak_iops * read_latency_s``) determines how many requests must be in
    flight before the device saturates.

    ``seq_read_bandwidth`` / ``seq_write_bandwidth`` describe the *large
    sequential transfer* path (128 KB+ requests streaming through every
    channel), which on real NVMe devices is far faster than
    ``peak_iops * 4 KB``.  Mini-batch sampling never sees that path — it is
    exercised by full-graph partition sweeps and activation spill/reload
    (``repro.fullgraph``).  ``None`` falls back to the random-read ceiling
    so specs that predate the field stay valid.
    """

    name: str
    read_latency_s: float
    peak_iops: float
    page_bytes: int = PAGE_BYTES
    seq_read_bandwidth: float | None = None
    seq_write_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.read_latency_s <= 0:
            raise ConfigError(f"{self.name}: read latency must be positive")
        if self.peak_iops <= 0:
            raise ConfigError(f"{self.name}: peak IOPS must be positive")
        if self.page_bytes <= 0:
            raise ConfigError(f"{self.name}: page size must be positive")
        if self.seq_read_bandwidth is not None and self.seq_read_bandwidth <= 0:
            raise ConfigError(
                f"{self.name}: sequential read bandwidth must be positive"
            )
        if self.seq_write_bandwidth is not None and self.seq_write_bandwidth <= 0:
            raise ConfigError(
                f"{self.name}: sequential write bandwidth must be positive"
            )

    @property
    def peak_bandwidth(self) -> float:
        """Peak sequential-equivalent read bandwidth in bytes/s."""
        return self.peak_iops * self.page_bytes

    @property
    def sequential_read_bandwidth(self) -> float:
        """Large-transfer sequential read bandwidth in bytes/s.

        Falls back to the 4 KB random-read ceiling when the spec does not
        model a distinct sequential path.
        """
        if self.seq_read_bandwidth is not None:
            return self.seq_read_bandwidth
        return self.peak_bandwidth

    @property
    def sequential_write_bandwidth(self) -> float:
        """Large-transfer sequential write bandwidth in bytes/s.

        Falls back to the sequential *read* bandwidth (and transitively to
        the random-read ceiling) when unspecified.
        """
        if self.seq_write_bandwidth is not None:
            return self.seq_write_bandwidth
        return self.sequential_read_bandwidth

    @property
    def internal_parallelism(self) -> float:
        """Requests that must be in flight to sustain peak IOPS (Little's law)."""
        return self.peak_iops * self.read_latency_s


@dataclass(frozen=True)
class PCIeSpec:
    """A PCIe link between the GPU and the rest of the system."""

    name: str = "PCIe Gen4 x16"
    bandwidth_bytes: float = 32e9

    def __post_init__(self) -> None:
        if self.bandwidth_bytes <= 0:
            raise ConfigError("PCIe bandwidth must be positive")


@dataclass(frozen=True)
class CPUSpec:
    """CPU-side data-preparation capability.

    The request-generation rate scales nearly linearly with threads up to
    ``plateau_threads`` and is flat beyond it (Figure 3: 4.1M req/s at 16
    threads on an EPYC 7702).
    """

    name: str = "AMD EPYC 7702"
    cores: int = 64
    memory_bytes: float = 1e12
    memory_bandwidth: float = 190e9
    plateau_threads: int = 16
    plateau_request_rate: float = 4.1e6
    #: CPU-side software cost of an OS page-fault (handler + page-table walk),
    #: paid on top of the storage device latency for every faulted page.
    page_fault_overhead_s: float = 15e-6
    #: Outstanding storage I/Os the OS paging path can keep in flight per
    #: faulting thread.  mmap-style on-demand random paging is synchronous
    #: (no useful readahead), which is why it cannot hide storage latency
    #: (Section 2.3).
    fault_queue_depth_per_thread: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.plateau_threads <= 0:
            raise ConfigError("CPU core/thread counts must be positive")
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigError("CPU memory size/bandwidth must be positive")
        if self.plateau_request_rate <= 0:
            raise ConfigError("CPU request rate must be positive")

    def request_rate(self, threads: int) -> float:
        """Feature-request generation rate for ``threads`` worker threads."""
        if threads <= 0:
            raise ConfigError(f"thread count must be positive, got {threads}")
        effective = min(threads, self.plateau_threads)
        return self.plateau_request_rate * effective / self.plateau_threads


@dataclass(frozen=True)
class GPUSpec:
    """GPU execution-rate model (NVIDIA A100-40GB by default)."""

    name: str = "NVIDIA A100-40GB"
    memory_bytes: float = 40e9
    hbm_bandwidth: float = 1555e9
    sm_count: int = 108
    #: Feature-request generation rate of GPU sampling+aggregation (Fig. 3).
    request_generation_rate: float = 77e6
    #: Feature consumption rate of the training kernels (Fig. 3).
    training_consumption_rate: float = 29e6
    #: Software overhead from the start of a feature-aggregation kernel until
    #: the first storage request is issued (Section 4.2).
    kernel_launch_overhead_s: float = 25e-6
    #: Time between the last storage completion and kernel end (Section 4.2).
    kernel_termination_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.hbm_bandwidth <= 0:
            raise ConfigError("GPU memory size/bandwidth must be positive")
        if self.request_generation_rate <= 0:
            raise ConfigError("GPU request generation rate must be positive")
        if self.training_consumption_rate <= 0:
            raise ConfigError("GPU consumption rate must be positive")


#: Intel Optane SSD (Section 4.2): 11 us latency, 1.5M IOPS @4 KB (~6 GB/s).
#: Sequential path from the P5800X datasheet: 7.2 GB/s read, 6.2 GB/s write.
INTEL_OPTANE = SSDSpec(
    name="Intel Optane SSD",
    read_latency_s=11e-6,
    peak_iops=1.5e6,
    seq_read_bandwidth=7.2e9,
    seq_write_bandwidth=6.2e9,
)

#: Samsung 980 Pro (Section 4.2): 324 us latency, 0.7M IOPS @4 KB (~2.8 GB/s).
#: Sequential path from the datasheet: 7.0 GB/s read, 5.0 GB/s write.
SAMSUNG_980PRO = SSDSpec(
    name="Samsung 980 Pro SSD",
    read_latency_s=324e-6,
    peak_iops=0.7e6,
    seq_read_bandwidth=7.0e9,
    seq_write_bandwidth=5.0e9,
)

#: A100 + EPYC presets matching Table 1.
A100 = GPUSpec()
EPYC_7702 = CPUSpec()
PCIE_GEN4_X16 = PCIeSpec()


@dataclass(frozen=True)
class SystemConfig:
    """A full evaluation system: one GPU, one CPU, one or more SSDs.

    ``cpu_memory_limit_bytes`` mirrors the paper's trick of locking part of
    CPU DRAM away so that large datasets exceed the usable CPU memory
    (Section 4.1: 512 GB usable out of 1 TB).
    """

    gpu: GPUSpec = A100
    cpu: CPUSpec = EPYC_7702
    pcie: PCIeSpec = PCIE_GEN4_X16
    ssd: SSDSpec = INTEL_OPTANE
    num_ssds: int = 1
    cpu_memory_limit_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.num_ssds <= 0:
            raise ConfigError(f"need at least one SSD, got {self.num_ssds}")
        if self.cpu_memory_limit_bytes is not None:
            if self.cpu_memory_limit_bytes <= 0:
                raise ConfigError("CPU memory limit must be positive")
            if self.cpu_memory_limit_bytes > self.cpu.memory_bytes:
                raise ConfigError(
                    "CPU memory limit exceeds the physical CPU memory"
                )

    @property
    def usable_cpu_memory(self) -> float:
        """CPU memory available to the training process, in bytes."""
        if self.cpu_memory_limit_bytes is None:
            return self.cpu.memory_bytes
        return self.cpu_memory_limit_bytes

    @property
    def aggregate_ssd_iops(self) -> float:
        """Collective peak IOPS of all attached SSDs."""
        return self.ssd.peak_iops * self.num_ssds

    @property
    def aggregate_ssd_bandwidth(self) -> float:
        """Collective peak read bandwidth of all attached SSDs, bytes/s."""
        return self.ssd.peak_bandwidth * self.num_ssds

    def with_ssd(self, ssd: SSDSpec, num_ssds: int | None = None) -> "SystemConfig":
        """Return a copy of this system with a different storage setup."""
        return replace(
            self, ssd=ssd, num_ssds=self.num_ssds if num_ssds is None else num_ssds
        )


@dataclass(frozen=True)
class LoaderConfig:
    """Tunable knobs of the GIDS dataloader (Section 4.1 defaults).

    Sizes are expressed in bytes of *simulated* hardware; dataset-relative
    quantities (CPU buffer fraction) are resolved against the dataset by the
    loader at construction time.
    """

    gpu_cache_bytes: float = 8e9
    cpu_buffer_fraction: float = 0.10
    window_depth: int = 8
    accumulator_enabled: bool = True
    #: Fraction of peak SSD IOPS the accumulator targets when sizing the
    #: required number of outstanding storage accesses (Section 4.2 uses 95%).
    accumulator_target: float = 0.95
    #: Hot-node ranking used to fill the constant CPU buffer.
    hot_node_metric: str = "reverse_pagerank"
    #: Upper bound on iterations the accumulator may merge/run ahead.
    max_merged_iterations: int = 64

    def __post_init__(self) -> None:
        if self.gpu_cache_bytes < 0:
            raise ConfigError("GPU cache size must be non-negative")
        if not 0.0 <= self.cpu_buffer_fraction <= 1.0:
            raise ConfigError("CPU buffer fraction must be within [0, 1]")
        if self.window_depth < 0:
            raise ConfigError("window depth must be non-negative")
        if not 0.0 < self.accumulator_target < 1.0:
            raise ConfigError("accumulator target must be within (0, 1)")
        if self.max_merged_iterations <= 0:
            raise ConfigError("max merged iterations must be positive")
        if self.hot_node_metric not in ("reverse_pagerank", "out_degree", "random"):
            raise ConfigError(
                f"unknown hot node metric {self.hot_node_metric!r}; expected "
                "'reverse_pagerank', 'out_degree' or 'random'"
            )
