"""One function per paper figure/table.

Each function builds its workload through :func:`repro.bench.get_workload`
(cached per process), runs the loaders involved, and returns an
:class:`ExperimentResult` whose rows mirror the series the paper plots.
``benchmarks/`` wraps these in pytest-benchmark entry points; the examples
call them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.ginex import GinexLoader
from ..baselines.mmap_loader import DGLMmapLoader
from ..config import (
    INTEL_OPTANE,
    SAMSUNG_980PRO,
    SSDSpec,
    SystemConfig,
)
from ..core.bam import BaMDataLoader
from ..core.gids import GIDSDataLoader
from ..graph.datasets import get_dataset_spec
from ..sim.cpu import CPUModel
from ..sim.gpu import GPUModel
from ..sim.ssd import SSDArray, SSDMicrobench
from ..utils import format_bytes
from .tables import render_table
from .workloads import get_workload

#: Iterations measured per loader run (the paper measures 100 at full
#: scale; 40 keeps every benchmark in seconds at our scale).
MEASURE_ITERS = 40
#: Warmup iterations: the paper uses 1000 for CPU baselines and 10 for
#: GIDS (Section 4.1); our page caches reach steady state sooner.
WARMUP_BASELINE = 150
WARMUP_GIDS = 10


@dataclass
class ExperimentResult:
    """Tabular result of one reproduced figure or table."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        table = render_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            table += f"\n  paper: {self.notes}"
        return table


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


# ---------------------------------------------------------------------------
# Figure 3 — request generation/consumption rates


def fig03_request_rates(
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Data-preparation request rates on CPU vs GPU (IGB-small workload).

    Real sampled batches provide the request stream; the calibrated rate
    models convert generated work into requests/second.
    """
    workload = get_workload("IGB-small")
    gpu = GPUModel()
    rows: list[list[object]] = []
    for threads in thread_counts:
        cpu = CPUModel(threads=threads)
        rows.append(
            [f"CPU ({threads} threads)", _fmt(cpu.request_rate / 1e6)]
        )
    rows.append(
        ["GPU generation", _fmt(gpu.spec.request_generation_rate / 1e6)]
    )
    rows.append(
        ["GPU consumption (training)",
         _fmt(gpu.spec.training_consumption_rate / 1e6)]
    )
    cpu16 = CPUModel(threads=16)
    return ExperimentResult(
        experiment="Figure 3: feature-request rates (IGB-small)",
        headers=["source", "Mreq/s"],
        rows=rows,
        notes="CPU plateaus at 4.1M req/s (16 threads); GPU generates 77M "
        "and consumes 29M req/s",
        extras={
            "cpu_plateau": cpu16.request_rate,
            "gpu_generation": gpu.spec.request_generation_rate,
            "gpu_consumption": gpu.spec.training_consumption_rate,
            "workload": workload.name,
        },
    )


# ---------------------------------------------------------------------------
# Figure 5 — baseline training-time breakdown


def fig05_breakdown(
    dataset_names: tuple[str, ...] = (
        "ogbn-papers100M",
        "MAG240M",
        "IGB-Full",
        "IGBH-Full",
    ),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Stage breakdown of the DGL-mmap baseline across the four datasets."""
    rows = []
    extras = {}
    for name in dataset_names:
        workload = get_workload(name)
        system = workload.system(INTEL_OPTANE)
        loader = DGLMmapLoader(
            workload.dataset,
            system,
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            seed=1,
        )
        report = loader.run(iters, warmup=WARMUP_BASELINE)
        fractions = report.breakdown_fractions()
        rows.append(
            [
                name,
                _fmt(100 * fractions["sampling"], 1),
                _fmt(100 * fractions["aggregation"], 1),
                _fmt(100 * fractions["transfer"], 1),
                _fmt(100 * fractions["training"], 1),
                _fmt(report.time_per_iteration() * 1e3, 2),
            ]
        )
        extras[name] = fractions
    return ExperimentResult(
        experiment="Figure 5: DGL-mmap training-time breakdown (%)",
        headers=[
            "dataset", "sampling", "aggregation", "transfer", "training",
            "ms/iter",
        ],
        rows=rows,
        notes="sampling + aggregation dominate; training is barely visible "
        "for the larger-than-memory IGB-Full/IGBH-Full graphs",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figure 7 — CPU vs GPU graph sampling time


def fig07_sampling(
    dataset_names: tuple[str, ...] = ("IGB-tiny", "IGB-small", "IGB-medium"),
    iters: int = 20,
) -> ExperimentResult:
    """Graph sampling time on CPU vs GPU for growing graph sizes."""
    cpu = CPUModel(threads=16)
    gpu = GPUModel()
    rows = []
    extras = {}
    for name in dataset_names:
        workload = get_workload(name)
        sampler_work = []
        from ..sampling.neighbor import NeighborSampler
        from ..sampling.seeds import epoch_seed_batches

        sampler = NeighborSampler(
            workload.dataset.graph, workload.fanouts, seed=2
        )
        batches = epoch_seed_batches(
            workload.dataset.train_ids, workload.batch_size, seed=2
        )
        for _, seeds in zip(range(iters), batches):
            sampler_work.append(sampler.sample(seeds).num_sampled)
        total = int(np.sum(sampler_work))
        cpu_time = cpu.sampling_time(total)
        gpu_time = gpu.sampling_time(
            total, n_kernels=len(workload.fanouts) * iters
        )
        rows.append(
            [
                name,
                _fmt(cpu_time * 1e3, 3),
                _fmt(gpu_time * 1e3, 3),
                _fmt(cpu_time / gpu_time, 2),
            ]
        )
        extras[name] = cpu_time / gpu_time
    return ExperimentResult(
        experiment="Figure 7: graph sampling time, CPU vs GPU",
        headers=["dataset", "CPU ms", "GPU ms", "GPU speedup"],
        rows=rows,
        notes="GPU wins everywhere, >3x on IGB-medium",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figure 8 — SSD bandwidth vs overlapping accesses (model vs measured)


def fig08_ssd_model(
    overlaps: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    repeats: int = 3,
) -> ExperimentResult:
    """Eq. 2-3 model vs event-driven measurement for both SSDs."""
    rows = []
    extras = {}
    for spec in (INTEL_OPTANE, SAMSUNG_980PRO):
        arr = SSDArray(spec)
        bench = SSDMicrobench(spec, seed=0)
        measured = bench.sweep(list(overlaps), repeats=repeats)
        for n, meas in zip(overlaps, measured):
            model = arr.achieved_iops(n)
            rows.append(
                [
                    spec.name,
                    n,
                    _fmt(model / 1e6, 3),
                    _fmt(meas / 1e6, 3),
                    _fmt(model * spec.page_bytes / 1e9, 2),
                ]
            )
        required = arr.required_overlapping(0.95)
        extras[spec.name] = {
            "required_95pct": required,
            "model_iops": [arr.achieved_iops(n) for n in overlaps],
            "measured_iops": measured,
        }
    return ExperimentResult(
        experiment="Figure 8: SSD IOPS vs overlapping accesses",
        headers=["SSD", "overlapping", "model MIOPS", "measured MIOPS",
                 "model GB/s"],
        rows=rows,
        notes="model tracks measurement; ~1k accesses reach 95% of peak on "
        "Optane (paper: 812 model / 1024 measured)",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figure 9 — dynamic storage access accumulator


def fig09_accumulator(
    batch_sizes: tuple[int, ...] = (32, 64, 128),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """PCIe ingress bandwidth with/without the accumulator (2 Optane SSDs,
    fanout (5,5), IGB-Full), for both the BaM and GIDS dataloaders."""
    workload = get_workload("IGB-Full", fanouts=(5, 5))
    system = workload.system(INTEL_OPTANE, num_ssds=2)
    rows = []
    extras = {}
    for batch_size in batch_sizes:
        row = [batch_size]
        for loader_name, gids_features in (("BaM", False), ("GIDS", True)):
            for accumulate in (False, True):
                config = workload.loader_config(
                    accumulator_enabled=accumulate,
                    cpu_buffer_fraction=0.10 if gids_features else 0.0,
                    window_depth=8 if gids_features else 0,
                )
                loader = GIDSDataLoader(
                    workload.dataset,
                    system,
                    config,
                    batch_size=batch_size,
                    fanouts=(5, 5),
                    hot_nodes=workload.hot_nodes if gids_features else None,
                    seed=3,
                )
                loader.name = loader_name
                report = loader.run(iters, warmup=WARMUP_GIDS)
                bw = report.pcie_ingress_bandwidth / 1e9
                row.append(_fmt(bw, 2))
                extras[(loader_name, accumulate, batch_size)] = bw
        rows.append(row)
    return ExperimentResult(
        experiment="Figure 9: PCIe ingress bandwidth, GB/s "
        "(2x Intel Optane, fanout (5,5))",
        headers=[
            "batch", "BaM", "BaM+acc", "GIDS", "GIDS+acc",
        ],
        rows=rows,
        notes="accumulator lifts BaM up to 1.25x and GIDS up to 1.95x, "
        "most at the smallest batch",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figure 10 — constant CPU buffer


def fig10_cpu_buffer(
    fractions: tuple[float, ...] = (0.10, 0.20),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Effective aggregation bandwidth vs CPU buffer size and hot-node
    metric (single SSD, window buffering off, as in Section 4.4)."""
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE, num_ssds=1)
    rows = []
    extras = {}

    def run(fraction: float, metric: str) -> float:
        config = workload.loader_config(
            cpu_buffer_fraction=fraction,
            window_depth=0,
            hot_node_metric=metric,
        )
        hot = workload.hot_nodes if metric == "reverse_pagerank" else None
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            config,
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            hot_nodes=hot,
            seed=4,
        )
        report = loader.run(iters, warmup=WARMUP_GIDS)
        return report.effective_aggregation_bandwidth / 1e9

    baseline = run(0.0, "reverse_pagerank")
    rows.append(["no CPU buffer", "-", _fmt(baseline, 2), "1.00"])
    extras["baseline"] = baseline
    for fraction in fractions:
        for metric in ("random", "out_degree", "reverse_pagerank"):
            bw = run(fraction, metric)
            rows.append(
                [
                    f"{int(fraction * 100)}% buffer",
                    metric,
                    _fmt(bw, 2),
                    _fmt(bw / baseline, 2),
                ]
            )
            extras[(fraction, metric)] = bw
    return ExperimentResult(
        experiment="Figure 10: feature aggregation bandwidth with the "
        "constant CPU buffer (GB/s, 1x Optane)",
        headers=["buffer", "hot-node metric", "GB/s", "vs baseline"],
        rows=rows,
        notes="paper: 6.6 -> 10.4 (10%) -> 23.4 GB/s (20% + reverse "
        "PageRank), up to 3.53x",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figures 11 & 12 — window buffering


def fig11_window_depth(
    depths: tuple[int, ...] = (0, 4, 8),
    iters: int = 60,
) -> ExperimentResult:
    """Cache hit ratio and aggregation time vs window depth (8 GB-scaled
    cache; CPU buffer off so cache behavior is isolated)."""
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE, num_ssds=1)
    rows = []
    extras = {}
    base_hit = None
    base_time = None
    for depth in depths:
        config = workload.loader_config(
            window_depth=depth, cpu_buffer_fraction=0.0
        )
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            config,
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            seed=5,
        )
        report = loader.run(iters, warmup=2 * WARMUP_GIDS)
        hit = report.gpu_cache_hit_ratio
        agg = report.aggregation_time / iters
        if depth == depths[0]:
            base_hit, base_time = max(hit, 1e-9), agg
        rows.append(
            [
                depth,
                _fmt(100 * hit, 2),
                _fmt(hit / base_hit, 2),
                _fmt(agg * 1e3, 3),
                _fmt(base_time / agg, 3),
            ]
        )
        extras[depth] = {"hit_ratio": hit, "agg_time": agg}
    return ExperimentResult(
        experiment="Figure 11: window buffering vs depth (8 GB-scaled cache)",
        headers=[
            "depth", "hit %", "hit vs depth0", "agg ms/iter", "agg speedup",
        ],
        rows=rows,
        notes="paper: depth 4 -> 1.2x hit ratio / 1.04x time; depth 8 -> "
        "2.19x hit ratio / 1.13x time",
        extras=extras,
    )


def fig12_cache_sizes(
    cache_gb: tuple[float, ...] = (4.0, 8.0, 16.0),
    depth: int = 16,
    iters: int = 60,
) -> ExperimentResult:
    """Window buffering (depth 16) vs random eviction across cache sizes."""
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE, num_ssds=1)
    rows = []
    extras = {}
    for gb in cache_gb:
        cache_bytes = gb * 1e9 * workload.capacity_scale
        results = {}
        for window in (0, depth):
            config = workload.loader_config(
                gpu_cache_bytes=cache_bytes,
                window_depth=window,
                cpu_buffer_fraction=0.0,
            )
            loader = GIDSDataLoader(
                workload.dataset,
                system,
                config,
                batch_size=workload.batch_size,
                fanouts=workload.fanouts,
                seed=6,
            )
            report = loader.run(iters, warmup=2 * WARMUP_GIDS)
            results[window] = report
        base = results[0]
        buffered = results[depth]
        speedup = base.aggregation_time / buffered.aggregation_time
        rows.append(
            [
                f"{gb:.0f} GB",
                _fmt(100 * base.gpu_cache_hit_ratio, 2),
                _fmt(100 * buffered.gpu_cache_hit_ratio, 2),
                _fmt(speedup, 3),
            ]
        )
        extras[gb] = {
            "base_hit": base.gpu_cache_hit_ratio,
            "window_hit": buffered.gpu_cache_hit_ratio,
            "speedup": speedup,
            "base_agg_time": base.aggregation_time,
            "window_agg_time": buffered.aggregation_time,
        }
    return ExperimentResult(
        experiment=f"Figure 12: window buffering (depth {depth}) vs cache size",
        headers=["cache", "hit % (random)", "hit % (window)", "agg speedup"],
        rows=rows,
        notes="paper: 1.20x / 1.18x / 1.12x at 4 / 8 / 16 GB; 4 GB + window "
        "beats 16 GB without",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Figures 13 & 14 — end-to-end training time


def _e2e_for_ssd(
    ssd: SSDSpec,
    dataset_names: tuple[str, ...],
    iters: int,
) -> ExperimentResult:
    rows = []
    extras = {}
    for name in dataset_names:
        workload = get_workload(name)
        # IGBH-Full uses two SSDs in the paper (storage capacity).
        num_ssds = 2 if name == "IGBH-Full" else 1
        system = workload.system(ssd, num_ssds=num_ssds)
        common = dict(
            batch_size=workload.batch_size, fanouts=workload.fanouts, seed=7
        )
        config = workload.loader_config()
        gids = GIDSDataLoader(
            workload.dataset, system, config,
            hot_nodes=workload.hot_nodes, **common,
        ).run(iters, warmup=WARMUP_GIDS)
        bam = BaMDataLoader(
            workload.dataset, system, config, **common
        ).run(iters, warmup=WARMUP_GIDS)
        mmap = DGLMmapLoader(workload.dataset, system, **common).run(
            iters, warmup=WARMUP_BASELINE
        )
        heterogeneous = workload.dataset.hetero is not None
        if heterogeneous:
            ginex_time = None  # Ginex supports only homogeneous graphs.
        else:
            ginex = GinexLoader(workload.dataset, system, **common).run(
                iters, warmup=WARMUP_BASELINE
            )
            ginex_time = ginex.e2e_time
        g = gids.e2e_time
        rows.append(
            [
                name,
                _fmt(g * 1e3, 2),
                _fmt(bam.e2e_time * 1e3, 2),
                "-" if ginex_time is None else _fmt(ginex_time * 1e3, 2),
                _fmt(mmap.e2e_time * 1e3, 2),
                _fmt(mmap.e2e_time / g, 1),
                "-" if ginex_time is None else _fmt(ginex_time / g, 1),
                _fmt(bam.e2e_time / g, 2),
            ]
        )
        extras[name] = {
            "GIDS": g,
            "BaM": bam.e2e_time,
            "Ginex": ginex_time,
            "DGL-mmap": mmap.e2e_time,
        }
    return ExperimentResult(
        experiment=f"E2E training time for {MEASURE_ITERS} iterations, ms "
        f"({ssd.name})",
        headers=[
            "dataset", "GIDS", "BaM", "Ginex", "DGL-mmap",
            "vs mmap", "vs Ginex", "vs BaM",
        ],
        rows=rows,
        extras=extras,
    )


def fig13_e2e_980pro(
    dataset_names: tuple[str, ...] = (
        "ogbn-papers100M", "MAG240M", "IGB-Full", "IGBH-Full",
    ),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """End-to-end comparison on Samsung 980 Pro SSDs."""
    result = _e2e_for_ssd(SAMSUNG_980PRO, dataset_names, iters)
    result.experiment = "Figure 13: " + result.experiment
    result.notes = (
        "paper: GIDS up to 582x vs DGL-mmap, 10.6-37x vs Ginex, ~3.1x vs BaM"
    )
    return result


def fig14_e2e_optane(
    dataset_names: tuple[str, ...] = (
        "ogbn-papers100M", "MAG240M", "IGB-Full", "IGBH-Full",
    ),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """End-to-end comparison on Intel Optane SSDs."""
    result = _e2e_for_ssd(INTEL_OPTANE, dataset_names, iters)
    result.experiment = "Figure 14: " + result.experiment
    result.notes = (
        "paper: GIDS up to 17.3x vs DGL-mmap, ~10.6x vs Ginex, ~3.2x vs BaM;"
        " smaller gains than 980 Pro because Optane latency is ~30x lower"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 15 — LADIES layer-wise sampling


def fig15_ladies(
    iters: int = MEASURE_ITERS,
    layer_sizes: tuple[int, ...] = (256, 256, 256),
) -> ExperimentResult:
    """Feature aggregation time with neighborhood vs LADIES sampling."""
    workload = get_workload("IGB-Full")
    system = workload.system(SAMSUNG_980PRO, num_ssds=1)
    rows = []
    extras = {}
    for kind, kwargs in (
        ("neighborhood", dict(sampler_kind="neighbor", fanouts=workload.fanouts)),
        ("LADIES", dict(sampler_kind="ladies", layer_sizes=layer_sizes)),
    ):
        common = dict(batch_size=workload.batch_size, seed=8, **kwargs)
        config = workload.loader_config()
        gids = GIDSDataLoader(
            workload.dataset, system, config,
            hot_nodes=workload.hot_nodes, **common,
        ).run(iters, warmup=WARMUP_GIDS)
        bam = BaMDataLoader(
            workload.dataset, system, config, **common
        ).run(iters, warmup=WARMUP_GIDS)
        mmap = DGLMmapLoader(workload.dataset, system, **common).run(
            iters, warmup=WARMUP_BASELINE
        )
        g = gids.aggregation_time
        rows.append(
            [
                kind,
                _fmt(g * 1e3, 2),
                _fmt(bam.aggregation_time * 1e3, 2),
                _fmt(mmap.aggregation_time * 1e3, 2),
                _fmt(mmap.aggregation_time / g, 1),
                _fmt(bam.aggregation_time / g, 2),
            ]
        )
        extras[kind] = {
            "GIDS": g,
            "BaM": bam.aggregation_time,
            "DGL-mmap": mmap.aggregation_time,
        }
    return ExperimentResult(
        experiment="Figure 15: feature aggregation time, ms "
        "(Samsung 980 Pro)",
        headers=["sampling", "GIDS", "BaM", "DGL-mmap", "vs mmap", "vs BaM"],
        rows=rows,
        notes="paper: with LADIES, GIDS is 412x faster than the DGL "
        "dataloader and 1.92x faster than BaM",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Tables


def table01_config() -> ExperimentResult:
    """Table 1: the evaluation system configuration (encoded presets)."""
    system = SystemConfig()
    rows = [
        ["CPU", system.cpu.name],
        ["CPU memory", format_bytes(system.cpu.memory_bytes)],
        ["GPU", system.gpu.name],
        ["GPU memory", format_bytes(system.gpu.memory_bytes)],
        ["HBM bandwidth", f"{system.gpu.hbm_bandwidth / 1e9:.0f} GB/s"],
        ["PCIe", system.pcie.name],
        ["PCIe bandwidth", f"{system.pcie.bandwidth_bytes / 1e9:.0f} GB/s"],
        [
            "SSDs",
            f"{INTEL_OPTANE.name} (11us, 1.5M IOPS) / "
            f"{SAMSUNG_980PRO.name} (324us, 0.7M IOPS)",
        ],
    ]
    return ExperimentResult(
        experiment="Table 1: evaluation system configuration",
        headers=["component", "specification"],
        rows=rows,
    )


def table02_datasets() -> ExperimentResult:
    """Table 2: real-world dataset characteristics (full scale)."""
    rows = []
    for name in ("ogbn-papers100M", "IGB-Full", "MAG240M", "IGBH-Full"):
        spec = get_dataset_spec(name)
        rows.append(
            [
                name,
                "heterogeneous" if spec.heterogeneous else "homogeneous",
                f"{spec.num_nodes:,}",
                f"{spec.num_edges:,}",
                spec.feature_dim,
            ]
        )
    return ExperimentResult(
        experiment="Table 2: real-world datasets",
        headers=["dataset", "type", "nodes", "edges", "feature dim"],
        rows=rows,
    )


def table03_igb_microbench() -> ExperimentResult:
    """Table 3: IGB micro-benchmark datasets (full scale)."""
    rows = []
    for name in ("IGB-tiny", "IGB-small", "IGB-medium", "IGB-large"):
        spec = get_dataset_spec(name)
        rows.append(
            [name, f"{spec.num_nodes:,}", f"{spec.num_edges:,}",
             spec.feature_dim]
        )
    return ExperimentResult(
        experiment="Table 3: IGB micro-benchmark datasets",
        headers=["dataset", "nodes", "edges", "feature dim"],
        rows=rows,
    )


def table04_sizes() -> ExperimentResult:
    """Table 4: feature vs structure size split, full scale and scaled."""
    rows = []
    extras = {}
    for name in ("ogbn-papers100M", "IGB-Full", "MAG240M", "IGBH-Full"):
        spec = get_dataset_spec(name)
        feature_pct = 100 * spec.feature_data_bytes / spec.total_bytes
        structure_pct = 100 * spec.structure_data_bytes / spec.total_bytes
        workload = get_workload(name)
        rows.append(
            [
                name,
                _fmt(spec.reported_feature_pct, 1),
                _fmt(spec.reported_structure_pct, 1),
                _fmt(feature_pct, 1),
                format_bytes(spec.reported_total_bytes),
                format_bytes(workload.dataset.total_bytes),
            ]
        )
        extras[name] = {
            "feature_pct": feature_pct,
            "structure_pct": structure_pct,
            "reported_feature_pct": spec.reported_feature_pct,
        }
    return ExperimentResult(
        experiment="Table 4: dataset size distribution",
        headers=[
            "dataset", "feature % (paper)", "structure % (paper)",
            "feature % (replica)", "full-scale size", "scaled replica",
        ],
        rows=rows,
        notes="paper: features are 68-96% of each dataset; structure always "
        "fits CPU memory",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures


def ablation_accumulator_target(
    targets: tuple[float, ...] = (0.80, 0.90, 0.95, 0.99),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Sensitivity of GIDS to the accumulator's peak-IOPS target."""
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE, num_ssds=1)
    rows = []
    extras = {}
    for target in targets:
        config = workload.loader_config(accumulator_target=target)
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            config,
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            hot_nodes=workload.hot_nodes,
            seed=9,
        )
        report = loader.run(iters, warmup=WARMUP_GIDS)
        threshold = loader.accumulator.storage_threshold
        rows.append(
            [
                _fmt(target, 2),
                threshold,
                _fmt(report.pcie_ingress_bandwidth / 1e9, 2),
                _fmt(report.time_per_iteration() * 1e3, 3),
            ]
        )
        extras[target] = report.time_per_iteration()
    return ExperimentResult(
        experiment="Ablation: accumulator target fraction",
        headers=["target", "storage threshold", "PCIe GB/s", "ms/iter"],
        rows=rows,
        notes="higher targets merge more iterations; returns diminish near "
        "peak while buffer memory grows",
        extras=extras,
    )


def ablation_ssd_scaling(
    ssd_counts: tuple[int, ...] = (1, 2, 4),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Multi-SSD scaling (Section 3.2): collective bandwidth and the
    accumulator's threshold both scale with the SSD count."""
    workload = get_workload("IGB-Full")
    rows = []
    extras = {}
    for num_ssds in ssd_counts:
        system = workload.system(INTEL_OPTANE, num_ssds=num_ssds)
        array = SSDArray(INTEL_OPTANE, num_ssds)
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            workload.loader_config(),
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            hot_nodes=workload.hot_nodes,
            seed=11,
        )
        report = loader.run(iters, warmup=WARMUP_GIDS)
        threshold = array.required_overlapping(0.95)
        rows.append(
            [
                num_ssds,
                _fmt(array.peak_bandwidth / 1e9, 2),
                threshold,
                _fmt(report.pcie_ingress_bandwidth / 1e9, 2),
                _fmt(report.time_per_iteration() * 1e3, 3),
            ]
        )
        extras[num_ssds] = {
            "threshold": threshold,
            "ms_per_iter": report.time_per_iteration() * 1e3,
            "pcie_gbps": report.pcie_ingress_bandwidth / 1e9,
        }
    return ExperimentResult(
        experiment="Ablation: SSD count scaling (Intel Optane, GIDS)",
        headers=["SSDs", "peak GB/s", "95% threshold", "PCIe GB/s",
                 "ms/iter"],
        rows=rows,
        notes="Section 3.2: the required overlap scales linearly with the "
        "SSD count; collective bandwidth approaches the PCIe ceiling",
        extras=extras,
    )


def ablation_feature_dimension(
    dims: tuple[int, ...] = (128, 512, 1024, 2048),
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Feature dimension vs storage traffic (Section 2.1's 512 B - 4 KB
    range).

    Small vectors pack several nodes per 4 KB page (helpful spatial
    sharing), dim-1024 vectors fill a page exactly, and larger vectors
    span pages.  The same sampled workload is served at every dimension so
    the page-count differences isolate the layout effect.
    """
    from dataclasses import replace as dc_replace

    base = get_workload("IGB-Full")
    system = base.system(INTEL_OPTANE)
    rows = []
    extras = {}
    for dim in dims:
        spec = dc_replace(base.dataset.spec, feature_dim=dim)
        dataset = type(base.dataset)(
            spec=spec,
            scale=base.dataset.scale,
            graph=base.dataset.graph,
            hetero=base.dataset.hetero,
            train_ids=base.dataset.train_ids,
            feature_dim=dim,
        )
        # The GPU cache keeps its byte size (hardware is fixed); what
        # changes with the dimension is how many vectors it can hold.
        config = base.loader_config()
        loader = GIDSDataLoader(
            dataset,
            system,
            config,
            batch_size=base.batch_size,
            fanouts=base.fanouts,
            hot_nodes=base.hot_nodes,
            seed=13,
        )
        report = loader.run(iters, warmup=WARMUP_GIDS)
        nodes = report.total_input_nodes
        pages = report.counters.storage_requests
        rows.append(
            [
                dim,
                loader.layout.nodes_per_page,
                loader.layout.pages_per_node,
                _fmt(pages / max(1, nodes), 3),
                _fmt(report.effective_aggregation_bandwidth / 1e9, 2),
                _fmt(report.time_per_iteration() * 1e3, 3),
            ]
        )
        extras[dim] = {
            "pages_per_requested_node": pages / max(1, nodes),
            "ms_per_iter": report.time_per_iteration() * 1e3,
        }
    return ExperimentResult(
        experiment="Ablation: feature dimension vs storage traffic",
        headers=["dim", "nodes/page", "pages/node", "storage pages per "
                 "requested node", "eff GB/s", "ms/iter"],
        rows=rows,
        notes="vectors larger than a page double storage requests; "
        "page-sharing at small dims helps only mildly because sparse "
        "random node ids rarely co-reside on a page (Section 2.1 / 3.5)",
        extras=extras,
    )


def ablation_structure_placement(
    iters: int = MEASURE_ITERS,
) -> ExperimentResult:
    """Section 3.5: why graph structure belongs in CPU memory, not storage.

    The paper's two arguments, made quantitative on a real sampled
    workload: (1) structure reads are 8-16 B but storage moves 4 KB pages
    — massive I/O amplification; (2) those fine-grained random pages would
    pollute the GPU software cache.  We count the actual structure
    accesses of the sampled iterations and model three placements:
    pinned in CPU memory over UVA (GIDS's choice), fetched from storage,
    and fetched from storage through the (shared) GPU cache.
    """
    workload = get_workload("IGB-Full")
    dataset = workload.dataset
    system = workload.system(INTEL_OPTANE)
    array = SSDArray(INTEL_OPTANE)

    from ..sampling.neighbor import NeighborSampler
    from ..sampling.seeds import epoch_seed_batches
    from ..sim.pcie import PCIeLink

    sampler = NeighborSampler(dataset.graph, workload.fanouts, seed=12)
    batches = epoch_seed_batches(
        dataset.train_ids, workload.batch_size, seed=12
    )
    structure_accesses = 0
    structure_pages = 0
    rng = np.random.default_rng(12)
    for _, seeds in zip(range(iters), batches):
        batch = sampler.sample(seeds)
        # One adjacency-list lookup per sampled node instance: an indptr
        # pair (16 B) plus the touched neighbor entries (8 B each).
        structure_accesses += batch.num_sampled
        # Each lookup lands on an effectively random 4 KB page of the
        # structure file (neighbor lists are small vs the page size).
        structure_pages += len(
            np.unique(
                rng.integers(
                    0,
                    max(1, dataset.structure_data_bytes // 4096),
                    size=batch.num_sampled,
                )
            )
        )

    entry_bytes = 16  # indptr pair per lookup
    useful_bytes = structure_accesses * entry_bytes
    page_bytes_moved = structure_pages * 4096
    amplification = page_bytes_moved / max(1, useful_bytes)

    pcie = PCIeLink(system.pcie)
    uva_time = useful_bytes / pcie.cpu_path_bandwidth
    storage_time = array.batch_service_time(structure_pages)

    rows = [
        [
            "pinned in CPU memory (UVA, GIDS)",
            _fmt(useful_bytes / 1e6, 2),
            _fmt(useful_bytes / 1e6, 2),
            "1.0",
            _fmt(uva_time * 1e3, 3),
        ],
        [
            "stored on SSD",
            _fmt(useful_bytes / 1e6, 2),
            _fmt(page_bytes_moved / 1e6, 2),
            _fmt(amplification, 1),
            _fmt(storage_time * 1e3, 3),
        ],
    ]
    return ExperimentResult(
        experiment="Ablation (Section 3.5): graph structure placement, "
        f"{iters} iterations",
        headers=["placement", "useful MB", "moved MB", "amplification",
                 "time ms"],
        rows=rows,
        notes="structure access granularity (8-16 B) vs 4 KB pages makes "
        "storage placement amplify I/O by orders of magnitude and would "
        "pollute the GPU cache; pinning in CPU memory is cheap because "
        "structure is ~5% of the dataset (Table 4)",
        extras={
            "amplification": amplification,
            "uva_time": uva_time,
            "storage_time": storage_time,
            "structure_fraction": (
                dataset.structure_data_bytes / dataset.total_bytes
            ),
        },
    )


def ablation_eviction_policy(iters: int = 60) -> ExperimentResult:
    """GPU cache eviction policy: random (BaM default) vs LRU."""
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE, num_ssds=1)
    rows = []
    extras = {}
    for policy in ("random", "lru"):
        config = workload.loader_config(cpu_buffer_fraction=0.0)
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            config,
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            seed=10,
        )
        loader.cache.policy = policy  # set before any access
        report = loader.run(iters, warmup=2 * WARMUP_GIDS)
        rows.append(
            [
                policy,
                _fmt(100 * report.gpu_cache_hit_ratio, 2),
                _fmt(report.aggregation_time / iters * 1e3, 3),
            ]
        )
        extras[policy] = report.gpu_cache_hit_ratio
    return ExperimentResult(
        experiment="Ablation: GPU cache eviction policy (window depth 8)",
        headers=["policy", "hit %", "agg ms/iter"],
        rows=rows,
        notes="random eviction is what BaM ships; window buffering matters "
        "more than the underlying policy",
        extras=extras,
    )


def observatory_ssd_sweep(
    num_ssds: tuple[int, ...] = (1, 2, 4, 8),
    iters: int = 20,
) -> ExperimentResult:
    """Bottleneck attribution across an SSD-array sweep (GIDS, 980 Pro).

    One Samsung 980 Pro cannot keep the aggregation stage fed, so the
    observatory attributes the run to the SSD; striping more devices in
    shifts the binding constraint to the PCIe link (the Fig. 8 story,
    read through the attribution layer instead of the bandwidth model).
    """
    from ..pipeline.export import report_to_dict

    workload = get_workload("IGB-Full")
    rows = []
    extras = {}
    for count in num_ssds:
        system = workload.system(SAMSUNG_980PRO, num_ssds=count)
        loader = GIDSDataLoader(
            workload.dataset,
            system,
            workload.loader_config(),
            batch_size=workload.batch_size,
            fanouts=workload.fanouts,
            seed=1,
        )
        report = loader.run(iters, warmup=WARMUP_GIDS)
        summary = report_to_dict(report, system=system)
        block = summary["attribution"]
        resources = block["resources"]
        rows.append(
            [
                count,
                block["bottleneck"],
                _fmt(100 * resources["ssd"]["utilization"], 1),
                _fmt(100 * resources["pcie"]["utilization"], 1),
                _fmt(100 * resources["cpu.buffer"]["utilization"], 1),
                _fmt(summary["e2e_seconds"] * 1e3, 2),
            ]
        )
        extras[count] = {
            "bottleneck": block["bottleneck"],
            "e2e_seconds": summary["e2e_seconds"],
            "ssd_utilization": resources["ssd"]["utilization"],
            "pcie_utilization": resources["pcie"]["utilization"],
        }
    return ExperimentResult(
        experiment="Observatory: bottleneck attribution vs SSD count",
        headers=[
            "SSDs", "bottleneck", "ssd %", "pcie %", "cpu.buf %", "E2E ms",
        ],
        rows=rows,
        notes="striping SSDs moves the binding constraint from the array "
        "to the PCIe link; E2E time improves until the link saturates",
        extras=extras,
    )
