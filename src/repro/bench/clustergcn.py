"""Section 4.7: the ClusterGCN partitioning trade-off, quantified.

The paper declines to evaluate subgraph-based sampling because the
prerequisite METIS partitioning "is an extremely time-consuming process
for large-scale graph datasets like IGB (more than 2 days)", while GIDS
maps arbitrarily large datasets with no preprocessing.  This experiment
measures real partitioning cost (wall-clock of our from-scratch
partitioner) on growing IGB replicas, fits the per-edge cost, and
extrapolates to the full-scale edge counts — then contrasts it with the
GIDS dataloader's zero preprocessing plus warmup time on the same graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import INTEL_OPTANE
from ..core.gids import GIDSDataLoader
from ..graph.datasets import get_dataset_spec, load_scaled
from ..graph.partition import edge_cut, partition_graph
from ..sampling.cluster import ClusterSampler
from .experiments import ExperimentResult, _fmt
from .workloads import get_workload


def section47_clustergcn(
    scales: tuple[float, ...] = (1e-4, 2e-4, 4e-4),
    num_parts: int = 32,
) -> ExperimentResult:
    """Partitioning cost vs graph size, extrapolated to IGB-Full."""
    rows = []
    per_edge_costs = []
    for scale in scales:
        dataset = load_scaled("IGB-Full", scale, seed=0)
        start = time.perf_counter()
        partition = partition_graph(
            dataset.graph, num_parts, refine_passes=1, seed=0
        )
        elapsed = time.perf_counter() - start
        cut = edge_cut(dataset.graph, partition.parts)
        per_edge = elapsed / max(1, dataset.num_edges)
        per_edge_costs.append(per_edge)
        rows.append(
            [
                f"IGB-Full x{scale:g}",
                f"{dataset.num_nodes:,}",
                f"{dataset.num_edges:,}",
                _fmt(elapsed, 2),
                _fmt(100 * cut / max(1, dataset.num_edges), 1),
                _fmt(partition.balance, 2),
            ]
        )

    per_edge = float(np.median(per_edge_costs))
    spec = get_dataset_spec("IGB-Full")
    extrapolated_hours = per_edge * spec.num_edges / 3600.0
    rows.append(
        [
            "IGB-Full x1 (extrapolated)",
            f"{spec.num_nodes:,}",
            f"{spec.num_edges:,}",
            f"~{extrapolated_hours:.1f} h",
            "-",
            "-",
        ]
    )

    # GIDS on the same (largest measured) replica: no preprocessing, only
    # its short cache warmup.
    workload = get_workload("IGB-Full")
    system = workload.system(INTEL_OPTANE)
    loader = GIDSDataLoader(
        workload.dataset,
        system,
        workload.loader_config(),
        batch_size=workload.batch_size,
        fanouts=workload.fanouts,
        hot_nodes=workload.hot_nodes,
        seed=0,
    )
    warm_report = loader.run(10, warmup=0)
    rows.append(
        [
            "GIDS preprocessing (none) + 10-iter warmup",
            f"{workload.dataset.num_nodes:,}",
            f"{workload.dataset.num_edges:,}",
            _fmt(warm_report.e2e_time, 4),
            "-",
            "-",
        ]
    )
    return ExperimentResult(
        experiment=f"Section 4.7: ClusterGCN partitioning cost "
        f"({num_parts} parts)",
        headers=["graph", "nodes", "edges", "seconds", "edge cut %",
                 "balance"],
        rows=rows,
        notes="paper: METIS on IGB takes >2 days, so subgraph-based "
        "sampling was not evaluated; GIDS needs no partitioning step",
        extras={
            "per_edge_seconds": per_edge,
            "extrapolated_hours": extrapolated_hours,
            "gids_warmup_seconds": warm_report.e2e_time,
        },
    )


@dataclass
class ClusterTrainingCheck:
    """Outcome of the functional ClusterGCN sanity run."""

    losses: list[float]
    batches: int


def clustergcn_functional_check(
    num_parts: int = 16,
    batches: int = 20,
) -> ClusterTrainingCheck:
    """Train GraphSAGE on ClusterGCN batches (functional completeness).

    Demonstrates the sampler integrates with the model even though the
    paper skips its evaluation — the losses must be finite and decreasing.
    """
    from ..storage.feature_store import FeatureStore
    from ..training.graphsage import GraphSAGE, synthetic_labels

    dataset = load_scaled("IGB-tiny", 0.03, seed=0)
    partition = partition_graph(dataset.graph, num_parts, seed=0)
    # All cluster members serve as seeds: cluster batches are few and
    # large, so a lower learning rate keeps full-batch updates stable.
    sampler = ClusterSampler(
        dataset.graph,
        partition,
        clusters_per_batch=2,
        num_layers=2,
        seed=1,
    )
    store = FeatureStore(dataset.num_nodes, dataset.feature_dim)
    model = GraphSAGE(
        dataset.feature_dim, 32, 4, num_layers=2, lr=0.01, seed=0
    )
    losses = []
    for _ in range(batches):
        batch = sampler.sample()
        features = store.fetch(batch.input_nodes)
        labels = synthetic_labels(store, batch.seeds, 4, seed=0)
        losses.append(model.train_step(batch, features, labels))
    return ClusterTrainingCheck(losses=losses, batches=batches)
