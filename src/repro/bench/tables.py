"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row values; each cell is stringified with ``str``.
        title: optional title line printed above the table.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
