"""Benchmark harness: workload construction and experiment functions.

``workloads`` builds scaled replicas of the paper's evaluation setups with
all capacity ratios preserved; ``experiments`` contains one function per
paper figure/table, each returning structured results and rendering the
rows the paper reports.  The ``benchmarks/`` directory wraps these in
pytest-benchmark entry points.
"""

from .workloads import Workload, get_workload
from .tables import render_table

__all__ = ["Workload", "get_workload", "render_table"]
