"""Scaled evaluation workloads with the paper's capacity ratios preserved.

Every experiment in the paper is defined by a dataset plus a set of
capacities (usable CPU memory, GPU cache size, CPU buffer fraction) and a
sampling workload (batch size, fanouts).  Shrinking the dataset by a factor
``s`` while shrinking all byte capacities by the *same* factor preserves
every ratio the results depend on — cache:dataset, page-cache:dataset,
buffer:dataset.

One more ratio matters for temporal locality: the fraction of the dataset a
single mini-batch touches.  At full scale a 4096-seed, 3-layer batch
gathers on the order of :data:`FULL_SCALE_BATCH_INPUTS` unique node
features; we calibrate the scaled batch size so the scaled footprint
fraction matches, which keeps the GPU-cache and page-cache hit dynamics
comparable.

Datasets and hot-node rankings are cached per process so a benchmark
session pays graph generation and PageRank once per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..config import (
    INTEL_OPTANE,
    LoaderConfig,
    SSDSpec,
    SystemConfig,
)
from ..errors import ConfigError
from ..graph.datasets import ScaledDataset, get_dataset_spec, load_scaled
from ..graph.pagerank import hot_node_ranking
from ..sampling.neighbor import NeighborSampler

#: Paper capacities (Table 1 / Section 4.1), in bytes at full scale.
PAPER_CPU_MEMORY = 512e9
PAPER_GPU_CACHE = 8e9
#: Assumed unique input nodes of one full-scale mini-batch (4096 seeds,
#: three sampling layers) — the calibration constant behind scaled batch
#: sizes.
FULL_SCALE_BATCH_INPUTS = 500_000

#: Default dataset shrink factors: chosen so benchmark graphs have a few
#: hundred thousand nodes (seconds of wall clock) while batch footprints
#: stay statistically meaningful (>= several hundred unique inputs).
DEFAULT_SCALES = {
    "IGB-Full": 0.002,
    "IGBH-Full": 0.001,
    "ogbn-papers100M": 0.005,
    "MAG240M": 0.002,
    "IGB-tiny": 1.0,
    "IGB-small": 0.3,
    "IGB-medium": 0.05,
    "IGB-large": 0.005,
}


@dataclass(frozen=True)
class Workload:
    """A ready-to-run scaled replica of one paper evaluation setup."""

    dataset: ScaledDataset
    batch_size: int
    fanouts: tuple[int, ...]
    hot_nodes: np.ndarray
    #: Shrink factor applied to all byte capacities.
    capacity_scale: float

    @property
    def name(self) -> str:
        return self.dataset.name

    def system(
        self, ssd: SSDSpec = INTEL_OPTANE, num_ssds: int = 1
    ) -> SystemConfig:
        """System config with the paper's CPU memory limit, scaled."""
        limit = min(
            PAPER_CPU_MEMORY * self.capacity_scale,
            SystemConfig().cpu.memory_bytes,
        )
        return SystemConfig(
            ssd=ssd, num_ssds=num_ssds, cpu_memory_limit_bytes=limit
        )

    def loader_config(self, **overrides) -> LoaderConfig:
        """GIDS defaults (8 GB cache, 10% buffer, depth 8), scaled."""
        kwargs = {
            "gpu_cache_bytes": PAPER_GPU_CACHE * self.capacity_scale,
            "cpu_buffer_fraction": 0.10,
            "window_depth": 8,
        }
        kwargs.update(overrides)
        return LoaderConfig(**kwargs)

    @property
    def fits_in_cpu_memory(self) -> bool:
        """Whether the scaled dataset fits the scaled CPU memory limit."""
        return self.dataset.total_bytes <= PAPER_CPU_MEMORY * self.capacity_scale


def calibrate_batch_size(
    dataset: ScaledDataset,
    fanouts: tuple[int, ...],
    target_inputs: int,
    *,
    seed: int = 0,
    min_batch: int = 8,
    max_batch: int = 8192,
) -> int:
    """Batch size whose sampled footprint is roughly ``target_inputs``.

    Uses two secant steps on the (monotone) batch-size -> unique-inputs
    relation, measured on real sampled batches.
    """
    if target_inputs <= 0:
        raise ConfigError("target_inputs must be positive")
    sampler = NeighborSampler(dataset.graph, fanouts, seed=seed)
    rng = np.random.default_rng(seed)

    def inputs_for(batch: int) -> int:
        seeds = rng.choice(
            dataset.train_ids,
            size=min(batch, len(dataset.train_ids)),
            replace=False,
        )
        return sampler.sample(seeds).num_input_nodes

    batch = max(min_batch, min(max_batch, target_inputs // 20))
    for _ in range(3):
        measured = inputs_for(batch)
        if measured == 0:
            break
        ratio = target_inputs / measured
        if 0.8 <= ratio <= 1.25:
            break
        batch = int(np.clip(batch * ratio, min_batch, max_batch))
    return batch


@lru_cache(maxsize=16)
def get_workload(
    name: str,
    *,
    scale: float | None = None,
    fanouts: tuple[int, ...] = (10, 5, 5),
    seed: int = 0,
    batch_size: int | None = None,
) -> Workload:
    """Build (and cache) the scaled workload for dataset ``name``.

    Args:
        name: paper dataset name.
        scale: shrink factor; defaults to :data:`DEFAULT_SCALES`.
        fanouts: neighbor-sampling fanouts of the workload.
        seed: generation seed.
        batch_size: explicit batch size; calibrated from the footprint
            ratio when omitted.
    """
    if scale is None:
        scale = DEFAULT_SCALES.get(name, 0.01)
    spec = get_dataset_spec(name)
    dataset = load_scaled(name, scale, seed=seed)
    # Ratio capacities against the *published* on-disk size (Table 4) where
    # available: the original MAG240M/papers100M fit in the paper's 512 GB
    # CPU memory, and the fits-in-memory behavior must carry over.
    full_total = (
        spec.reported_total_bytes
        if spec.reported_total_bytes is not None
        else spec.total_bytes
    )
    capacity_scale = dataset.total_bytes / full_total

    if batch_size is None:
        footprint_fraction = FULL_SCALE_BATCH_INPUTS / spec.num_nodes
        target_inputs = max(200, int(dataset.num_nodes * footprint_fraction))
        batch_size = calibrate_batch_size(
            dataset, fanouts, target_inputs, seed=seed
        )

    seed_weights = np.zeros(dataset.num_nodes)
    seed_weights[dataset.train_ids] = 1.0
    hot = hot_node_ranking(
        dataset.graph, "reverse_pagerank", seed_weights=seed_weights
    )
    return Workload(
        dataset=dataset,
        batch_size=batch_size,
        fanouts=fanouts,
        hot_nodes=hot,
        capacity_scale=capacity_scale,
    )
