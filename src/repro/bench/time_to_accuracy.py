"""Time-to-accuracy: functional training against simulated hardware time.

An extension beyond the paper's figures: since this reproduction runs
*real* training (NumPy GraphSAGE, exact gradients) while modeling *time*
with the device models, it can answer the question the E2E figures imply —
how much sooner does a GIDS-fed model reach a target accuracy than a
baseline-fed one?  Both loaders draw identical batch sequences (shared
seed; see ``tests/test_integration.py``), so the accuracy trajectory *per
step* is identical and the entire difference is the data-path time — the
cleanest possible statement of the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.mmap_loader import DGLMmapLoader
from ..config import SAMSUNG_980PRO, SSDSpec
from ..core.gids import GIDSDataLoader
from ..training.evaluate import synthetic_task_accuracy
from ..training.graphsage import GraphSAGE, synthetic_labels
from .experiments import ExperimentResult, _fmt
from .workloads import get_workload


@dataclass
class AccuracyTrace:
    """Accuracy checkpoints against cumulative simulated time."""

    loader: str
    times_s: list[float]
    accuracies: list[float]

    def time_to(self, target: float) -> float | None:
        """First simulated time at which accuracy reached ``target``."""
        for t, acc in zip(self.times_s, self.accuracies):
            if acc >= target:
                return t
        return None


def _run_trace(
    train_loader,
    timing_loader,
    eval_sampler,
    model: GraphSAGE,
    eval_ids: np.ndarray,
    num_classes: int,
    steps: int,
    eval_every: int,
    label_seed: int,
) -> AccuracyTrace:
    """Train through ``train_loader`` and checkpoint accuracy on a schedule.

    Per-step simulated time comes from ``timing_loader`` — a *separate*
    instance with identical configuration — so the timing run does not
    consume the training loader's RNG stream (keeping batch sequences
    identical across compared loaders).  Evaluation likewise uses its own
    dedicated sampler."""
    timing = timing_loader.run(steps, warmup=5)
    per_step = timing.e2e_time / timing.num_iterations

    times: list[float] = []
    accuracies: list[float] = []
    step = 0
    for batch, features in train_loader.iter_batches(steps):
        labels = synthetic_labels(
            train_loader.store, batch.seeds, num_classes, seed=label_seed
        )
        model.train_step(batch, features, labels)
        step += 1
        if step % eval_every == 0 or step == steps:
            result = synthetic_task_accuracy(
                model, eval_sampler, train_loader.store, eval_ids,
                num_classes, label_seed=label_seed,
            )
            times.append(step * per_step)
            accuracies.append(result.accuracy)
    return AccuracyTrace(
        loader=train_loader.name, times_s=times, accuracies=accuracies
    )


def time_to_accuracy(
    ssd: SSDSpec = SAMSUNG_980PRO,
    *,
    steps: int = 50,
    eval_every: int = 10,
    num_classes: int = 4,
    target: float = 0.6,
    batch_size: int = 256,
    fanouts: tuple[int, ...] = (5, 5),
) -> ExperimentResult:
    """GIDS vs DGL-mmap time-to-accuracy on the IGB-Full replica.

    A larger batch than the calibrated workload default is used so the
    model converges within a short trace; both loaders use the same one,
    so the comparison stays apples-to-apples.
    """
    workload = get_workload("IGB-Full")
    system = workload.system(ssd)
    common = dict(batch_size=batch_size, fanouts=fanouts, seed=21)

    from ..sampling.neighbor import NeighborSampler

    eval_ids = workload.dataset.train_ids[:200]
    traces: list[AccuracyTrace] = []
    for build in (
        lambda: GIDSDataLoader(
            workload.dataset, system, workload.loader_config(),
            hot_nodes=workload.hot_nodes, **common,
        ),
        lambda: DGLMmapLoader(workload.dataset, system, **common),
    ):
        train_loader = build()
        timing_loader = build()
        eval_sampler = NeighborSampler(
            workload.dataset.graph, fanouts, seed=99
        )
        model = GraphSAGE(
            workload.dataset.feature_dim, 64, num_classes,
            num_layers=len(fanouts), lr=0.05, seed=4,
        )
        traces.append(
            _run_trace(
                train_loader, timing_loader, eval_sampler, model,
                eval_ids, num_classes, steps, eval_every, label_seed=1,
            )
        )

    rows = []
    for trace in traces:
        reached = trace.time_to(target)
        rows.append(
            [
                trace.loader,
                _fmt(trace.times_s[-1] * 1e3, 2),
                _fmt(100 * trace.accuracies[-1], 1),
                "-" if reached is None else _fmt(reached * 1e3, 2),
            ]
        )
    gids, mmap = traces
    speedup = None
    t_gids, t_mmap = gids.time_to(target), mmap.time_to(target)
    if t_gids and t_mmap:
        speedup = t_mmap / t_gids
    return ExperimentResult(
        experiment=f"Time-to-accuracy (target {target:.0%}, {ssd.name})",
        headers=["loader", "total ms", "final acc %", f"ms to {target:.0%}"],
        rows=rows,
        notes="identical batch sequences -> identical per-step accuracy; "
        "the gap is purely data-path time",
        extras={
            "traces": traces,
            "speedup": speedup,
            "per_step_accuracy_identical": np.allclose(
                gids.accuracies, mmap.accuracies, atol=1e-9
            ),
        },
    )


def fullgraph_vs_minibatch(
    ssd: SSDSpec = SAMSUNG_980PRO,
    *,
    steps: int = 50,
    eval_every: int = 10,
    num_classes: int = 4,
    target: float = 0.6,
    batch_size: int = 256,
    fanouts: tuple[int, ...] = (5, 5),
    max_epochs: int = 20,
    hbm_budget_bytes: float = 8 * 2**20,
    scale: float = 5e-5,
) -> ExperimentResult:
    """Full-graph partition sweeps vs mini-batch GIDS, same SSD budget.

    Both arms train the same GraphSAGE geometry on the same IGB-Full
    replica against the same storage model and chase the same accuracy
    target on the same eval nodes (the first 200 train ids, the synthetic
    task's convention).  The mini-batch arm pays random 4K feature reads
    per sampled batch; the full-graph arm pays sequential feature
    streaming plus activation spill/reload under a deliberately tight HBM
    budget — the memory-wall regime.  Neither arm is "correct": the bench
    quantifies which data path converts SSD seconds into accuracy faster.

    A smaller replica than the mini-batch-only benchmark is used because
    the full-graph arm materializes every layer's activations for the
    whole graph (that being the point of the workload).
    """
    from ..fullgraph import FullGraphConfig, FullGraphTrainer
    from ..sampling.neighbor import NeighborSampler

    workload = get_workload("IGB-Full", scale=scale)
    system = workload.system(ssd)
    common = dict(batch_size=batch_size, fanouts=fanouts, seed=21)
    eval_ids = workload.dataset.train_ids[:200]

    def build():
        return GIDSDataLoader(
            workload.dataset, system, workload.loader_config(),
            hot_nodes=workload.hot_nodes, **common,
        )

    model = GraphSAGE(
        workload.dataset.feature_dim, 64, num_classes,
        num_layers=len(fanouts), lr=0.05, seed=4,
    )
    eval_sampler = NeighborSampler(workload.dataset.graph, fanouts, seed=99)
    mini = _run_trace(
        build(), build(), eval_sampler, model, eval_ids, num_classes,
        steps, eval_every, label_seed=1,
    )

    trainer = FullGraphTrainer(
        workload.dataset,
        system,
        FullGraphConfig(
            hidden_dim=64,
            num_classes=num_classes,
            num_layers=len(fanouts),
            hbm_budget_bytes=hbm_budget_bytes,
            label_seed=1,
            model_seed=4,
        ),
    )
    result = trainer.run_to_accuracy(target, max_epochs=max_epochs)
    full = AccuracyTrace(
        loader="GIDS-fullgraph",
        times_s=list(result.epoch_end_times_s),
        accuracies=list(result.accuracies),
    )

    rows = []
    for trace in (mini, full):
        reached = trace.time_to(target)
        rows.append(
            [
                trace.loader,
                _fmt(trace.times_s[-1] * 1e3, 2),
                _fmt(100 * trace.accuracies[-1], 1),
                "-" if reached is None else _fmt(reached * 1e3, 2),
            ]
        )
    t_mini, t_full = mini.time_to(target), full.time_to(target)
    advantage = None
    if t_mini and t_full:
        advantage = t_full / t_mini
    return ExperimentResult(
        experiment=(
            f"Full-graph vs mini-batch time-to-accuracy "
            f"(target {target:.0%}, {ssd.name})"
        ),
        headers=["arm", "total ms", "final acc %", f"ms to {target:.0%}"],
        rows=rows,
        notes="same model geometry, labels, eval nodes and SSD; the "
        "full-graph arm sweeps partitions with activation offload under "
        f"a {hbm_budget_bytes / 2**20:.0f} MiB HBM budget",
        extras={
            "traces": [mini, full],
            "minibatch_time_to_target_s": t_mini,
            "fullgraph_time_to_target_s": t_full,
            "fullgraph_over_minibatch": advantage,
            "fullgraph_block": result.block,
        },
    )
