"""Exception hierarchy for the GIDS reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A hardware or loader configuration is inconsistent or out of range."""


class GraphError(ReproError):
    """A graph structure is malformed (bad indptr, out-of-range indices...)."""


class DatasetError(ReproError):
    """An unknown dataset name or an invalid scaling request."""


class CapacityError(ReproError):
    """A memory budget (GPU cache, CPU buffer, page cache) is violated."""


class SamplingError(ReproError):
    """Invalid sampling parameters (empty fanout, bad seed set...)."""


class PipelineError(ReproError):
    """The training pipeline was driven in an invalid order or state."""


class StorageError(ReproError):
    """A feature-store access referenced nodes outside the stored table."""


class FaultError(ReproError):
    """An injected hardware fault could not be absorbed by the storage stack."""


class FaultPlanError(FaultError, ConfigError):
    """A fault plan file could not be read or parsed.

    Derives from both :class:`FaultError` (it concerns the fault subsystem)
    and :class:`ConfigError` (a plan is configuration), so callers that
    historically caught either keep working.
    """


class RetryExhaustedError(FaultError):
    """Storage reads kept failing after the retry policy's final attempt."""


class IntegrityError(ReproError):
    """A data-integrity invariant was violated (digest mismatch, bad state)."""


class UnrepairablePageError(IntegrityError):
    """A corrupt page exhausted its repair budget with no fallback allowed."""


class TelemetryError(ReproError):
    """A tracer, metric, or trace export was used or formed inconsistently."""


class ObservatoryError(ReproError):
    """A performance-analysis input (report, history, alert rule) is invalid."""


class ServingError(ReproError):
    """The online-serving layer was configured or driven inconsistently."""


class FullGraphError(ReproError):
    """A full-graph sweep (plan, schedule, or trainer state) is invalid."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or applied to a pipeline."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot file failed its integrity check (magic, version or CRC)."""


class SimulatedCrashError(FaultError):
    """A :class:`~repro.faults.plan.CrashEvent` killed the modeled process."""


class StalledRunError(FaultError):
    """The supervisor's modeled-time watchdog detected a stalled iteration."""


class RestartLimitError(FaultError):
    """The supervisor exhausted its restart budget without finishing the run."""
