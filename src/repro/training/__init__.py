"""Functional GNN training on sampled mini-batches.

:class:`GraphSAGE` is a real NumPy implementation (forward and backward)
of the model the paper trains; it consumes the :class:`MiniBatch` blocks
produced by the samplers and the feature matrices served by the loaders, so
examples can demonstrate true end-to-end training with decreasing loss.
Training-stage *time* in the benchmarks comes from the calibrated
consumption-rate model in :class:`repro.sim.gpu.GPUModel`, not from wall
clock.
"""

from .graphsage import AGGREGATORS, GraphSAGE, synthetic_labels
from .evaluate import (
    EvalResult,
    evaluate_accuracy,
    synthetic_task_accuracy,
    train_validation_split,
)

__all__ = [
    "AGGREGATORS",
    "GraphSAGE",
    "synthetic_labels",
    "EvalResult",
    "evaluate_accuracy",
    "synthetic_task_accuracy",
    "train_validation_split",
]
