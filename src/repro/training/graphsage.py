"""NumPy GraphSAGE with selectable aggregators (Hamilton et al., NIPS'17).

Each layer combines a node's own representation with an aggregate of its
sampled in-neighbors over the blocks of a
:class:`~repro.sampling.minibatch.MiniBatch`; the final layer emits class
logits for the seed nodes.  Three aggregators are provided:

* ``"mean"`` — ``h' = act(h @ W_self + mean_neigh(h) @ W_neigh + b)``,
  the paper's GraphSAGE configuration;
* ``"gcn"``  — ``h' = act(((h + sum_neigh(h)) / (deg + 1)) @ W_neigh + b)``,
  the GCN-style symmetric variant with a single weight matrix;
* ``"pool"`` — element-wise max over neighbors in place of the mean.

Forward and backward passes are implemented by hand so the library has
zero deep-learning dependencies, and gradients are exact (validated
against finite differences in the test suite, for every aggregator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointError, ConfigError
from ..sampling.minibatch import MiniBatch
from ..storage.feature_store import FeatureStore
from ..utils import as_rng

#: Supported neighbor aggregators.
AGGREGATORS = ("mean", "gcn", "pool")


@dataclass
class _LayerParams:
    """One layer's parameters and their SGD momentum buffers."""

    w_self: np.ndarray
    w_neigh: np.ndarray
    bias: np.ndarray
    m_self: np.ndarray = field(init=False)
    m_neigh: np.ndarray = field(init=False)
    m_bias: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.m_self = np.zeros_like(self.w_self)
        self.m_neigh = np.zeros_like(self.w_neigh)
        self.m_bias = np.zeros_like(self.bias)


class GraphSAGE:
    """A GraphSAGE node classifier trained with momentum SGD.

    Args:
        in_dim: input feature dimension.
        hidden_dim: hidden dimension (128 in the paper's setup).
        num_classes: output classes.
        num_layers: GNN layers; must match the sampler's layer count.
        aggregator: ``"mean"`` (default), ``"gcn"`` or ``"pool"``.
        lr: learning rate.
        momentum: SGD momentum coefficient.
        seed: parameter initialization seed.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 3,
        *,
        aggregator: str = "mean",
        lr: float = 0.05,
        momentum: float = 0.9,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if min(in_dim, hidden_dim, num_classes, num_layers) <= 0:
            raise ConfigError("model dimensions must be positive")
        if aggregator not in AGGREGATORS:
            raise ConfigError(
                f"unknown aggregator {aggregator!r}; expected one of "
                f"{AGGREGATORS}"
            )
        if lr <= 0:
            raise ConfigError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError("momentum must lie in [0, 1)")
        rng = as_rng(seed)
        self.num_layers = num_layers
        self.aggregator = aggregator
        self.lr = lr
        self.momentum = momentum
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        self.layers = [
            _LayerParams(
                w_self=_glorot(rng, dims[i], dims[i + 1]),
                w_neigh=_glorot(rng, dims[i], dims[i + 1]),
                bias=np.zeros(dims[i + 1], dtype=np.float64),
            )
            for i in range(num_layers)
        ]

    # ------------------------------------------------------------------
    # Forward / backward

    def forward(
        self, batch: MiniBatch, features: np.ndarray
    ) -> np.ndarray:
        """Class logits for the batch's seed nodes."""
        logits, _ = self._forward_cached(batch, features)
        return logits

    def _forward_cached(self, batch: MiniBatch, features: np.ndarray):
        if batch.num_layers != self.num_layers:
            raise ConfigError(
                f"batch has {batch.num_layers} sampled layers, model expects "
                f"{self.num_layers}"
            )
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != batch.num_input_nodes:
            raise ConfigError(
                "features must have one row per input node of the batch"
            )
        nodes = batch.input_nodes
        h = features
        caches = []
        for li, (layer, params) in enumerate(zip(batch.layers, self.layers)):
            src_idx = np.searchsorted(nodes, layer.src)
            dst_idx = np.searchsorted(nodes, layer.dst)
            agg, agg_cache = self._aggregate(h, src_idx, dst_idx, len(nodes))
            if self.aggregator == "gcn":
                z = agg @ params.w_neigh + params.bias
            else:
                z = h @ params.w_self + agg @ params.w_neigh + params.bias
            is_last = li == self.num_layers - 1
            out = z if is_last else np.maximum(z, 0.0)
            caches.append((h, agg, z, src_idx, dst_idx, agg_cache))
            h = out
        seed_idx = np.searchsorted(nodes, batch.seeds)
        logits = h[seed_idx]
        return logits, (caches, seed_idx, h.shape)

    def gradients(
        self,
        batch: MiniBatch,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> tuple[float, list[dict]]:
        """Softmax cross-entropy loss and per-layer parameter gradients.

        Nothing is applied: the caller owns the optimizer step.  This is
        the building block of data-parallel training — each replica
        computes its local gradients, an all-reduce averages them (see
        :func:`average_gradients`), and one :meth:`apply_gradients` call
        per replica keeps every copy of the model bit-identical.

        Returns:
            ``(loss, grads)`` where ``grads[i]`` holds the ``w_self``,
            ``w_neigh`` and ``bias`` gradients of layer ``i``.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != batch.seeds.shape:
            raise ConfigError("labels must align with the batch's seeds")
        logits, (caches, seed_idx, out_shape) = self._forward_cached(
            batch, features
        )
        loss, dlogits = softmax_cross_entropy(logits, labels)

        grads: list[dict] = [{} for _ in range(self.num_layers)]
        d_h = np.zeros(out_shape)
        d_h[seed_idx] = dlogits
        for li in range(self.num_layers - 1, -1, -1):
            params = self.layers[li]
            h, agg, z, src_idx, dst_idx, agg_cache = caches[li]
            is_last = li == self.num_layers - 1
            dz = d_h if is_last else d_h * (z > 0.0)
            g_neigh = agg.T @ dz
            g_bias = dz.sum(axis=0)
            d_agg = dz @ params.w_neigh.T
            if self.aggregator == "gcn":
                g_self = np.zeros_like(params.w_self)
                d_h = np.zeros_like(h)
            else:
                g_self = h.T @ dz
                d_h = dz @ params.w_self.T
            self._aggregate_backward(
                d_agg, d_h, h, agg, src_idx, dst_idx, agg_cache
            )
            grads[li] = {
                "w_self": g_self, "w_neigh": g_neigh, "bias": g_bias
            }
        return loss, grads

    def apply_gradients(self, grads: list[dict]) -> None:
        """One momentum-SGD step from per-layer gradients.

        ``train_step`` is exactly ``gradients`` + ``apply_gradients``; the
        split exists so a fleet can average gradients across replicas
        before stepping.
        """
        if len(grads) != self.num_layers:
            raise ConfigError(
                f"got gradients for {len(grads)} layers, model has "
                f"{self.num_layers}"
            )
        for params, g in zip(self.layers, grads):
            self._apply(params, g["w_self"], g["w_neigh"], g["bias"])

    def train_step(
        self,
        batch: MiniBatch,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        """One SGD step on softmax cross-entropy; returns the batch loss."""
        loss, grads = self.gradients(batch, features, labels)
        self.apply_gradients(grads)
        return loss

    # ------------------------------------------------------------------
    # Blocked full-graph forward / backward (partition sweeps)

    def layer_forward_block(
        self,
        li: int,
        h_prev: np.ndarray,
        rows: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> np.ndarray:
        """Layer ``li`` outputs for one partition of a full-graph sweep.

        Args:
            li: layer index.
            h_prev: previous-layer representations for the *whole* graph
                (``num_nodes x d_in``); the sweep only reads the partition
                rows plus its halo, but indexing stays global.
            rows: sorted global node ids computed by this step.
            src/dst: global-id in-edges with every ``dst`` in ``rows``.

        Returns:
            ``len(rows) x d_out`` block of the layer's output.  Because a
            node's aggregation involves only its own in-edges (kept in CSR
            order), sweeping partitions reproduces the monolithic
            full-graph forward exactly.
        """
        params = self.layers[li]
        h_prev = np.asarray(h_prev, dtype=np.float64)
        local_dst = np.searchsorted(rows, dst)
        agg, _ = self._aggregate_block(h_prev, rows, src, local_dst)
        if self.aggregator == "gcn":
            z = agg @ params.w_neigh + params.bias
        else:
            z = (
                h_prev[rows] @ params.w_self
                + agg @ params.w_neigh
                + params.bias
            )
        is_last = li == self.num_layers - 1
        return z if is_last else np.maximum(z, 0.0)

    def layer_backward_block(
        self,
        li: int,
        h_prev: np.ndarray,
        h_out_rows: np.ndarray | None,
        rows: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        d_out: np.ndarray,
        d_h_prev: np.ndarray,
        grads: dict,
    ) -> None:
        """Backward of :meth:`layer_forward_block` for one partition.

        Accumulates this block's parameter gradients into ``grads``
        (``w_self``/``w_neigh``/``bias`` arrays, summed across partitions)
        and scatters input-side gradients into the full-graph buffer
        ``d_h_prev`` — including the halo rows owned by other partitions,
        which is the backward half of the halo exchange.

        ``h_out_rows`` is this block's forward output (for the ReLU mask);
        pass ``None`` for the last layer, whose activation is linear.
        The aggregation itself is *recomputed* from ``h_prev`` rather than
        cached — the activation-offload design stores only the layer
        outputs.
        """
        params = self.layers[li]
        h_prev = np.asarray(h_prev, dtype=np.float64)
        local_dst = np.searchsorted(rows, dst)
        dz = d_out if h_out_rows is None else d_out * (h_out_rows > 0.0)
        agg, agg_cache = self._aggregate_block(h_prev, rows, src, local_dst)
        grads["w_neigh"] += agg.T @ dz
        grads["bias"] += dz.sum(axis=0)
        d_agg = dz @ params.w_neigh.T
        if self.aggregator == "gcn":
            counts = agg_cache
            d_h_prev[rows] += d_agg / counts[:, None]
            if len(src):
                scaled = d_agg[local_dst] / counts[local_dst][:, None]
                np.add.at(d_h_prev, src, scaled)
            return
        grads["w_self"] += h_prev[rows].T @ dz
        d_h_prev[rows] += dz @ params.w_self.T
        self._aggregate_backward(
            d_agg, d_h_prev, h_prev, agg, src, local_dst, agg_cache
        )

    def zero_gradients(self) -> list[dict]:
        """Zero-filled per-layer gradient dicts for sweep accumulation."""
        return [
            {
                "w_self": np.zeros_like(p.w_self),
                "w_neigh": np.zeros_like(p.w_neigh),
                "bias": np.zeros_like(p.bias),
            }
            for p in self.layers
        ]

    def _aggregate_block(self, h_prev, rows, src, local_dst):
        """Aggregation over a partition block; global src, local dst."""
        n = len(rows)
        if self.aggregator == "gcn":
            # The GCN aggregate seeds with the block's own rows, which the
            # shared kernel cannot express with a full-graph ``h``.
            agg = h_prev[rows].copy()
            counts = np.ones(n)
            if len(src):
                np.add.at(agg, local_dst, h_prev[src])
                np.add.at(counts, local_dst, 1.0)
            agg /= counts[:, None]
            return agg, counts
        return self._aggregate(h_prev, src, local_dst, n)

    # ------------------------------------------------------------------
    # Aggregators

    def _aggregate(self, h, src_idx, dst_idx, n):
        """Neighbor aggregation; returns ``(agg, backward cache)``."""
        if self.aggregator == "mean":
            agg = np.zeros((n, h.shape[1]))
            counts = np.zeros(n)
            if len(src_idx):
                np.add.at(agg, dst_idx, h[src_idx])
                np.add.at(counts, dst_idx, 1.0)
            safe = np.maximum(counts, 1.0)
            agg /= safe[:, None]
            return agg, safe
        if self.aggregator == "gcn":
            agg = h.copy()
            counts = np.ones(n)
            if len(src_idx):
                np.add.at(agg, dst_idx, h[src_idx])
                np.add.at(counts, dst_idx, 1.0)
            agg /= counts[:, None]
            return agg, counts
        # pool: element-wise max over neighbors; empty neighborhoods
        # aggregate to zero.
        agg = np.full((n, h.shape[1]), -np.inf)
        if len(src_idx):
            np.maximum.at(agg, dst_idx, h[src_idx])
        empty = np.isinf(agg).all(axis=1)
        agg[empty] = 0.0
        return agg, empty

    def _aggregate_backward(
        self, d_agg, d_h, h, agg, src_idx, dst_idx, agg_cache
    ) -> None:
        """Route aggregate gradients back to node representations."""
        if self.aggregator == "mean":
            counts = agg_cache
            if len(src_idx):
                scaled = d_agg[dst_idx] / counts[dst_idx][:, None]
                np.add.at(d_h, src_idx, scaled)
            return
        if self.aggregator == "gcn":
            counts = agg_cache
            # Self path: every node contributes itself once.
            d_h += d_agg / counts[:, None]
            if len(src_idx):
                scaled = d_agg[dst_idx] / counts[dst_idx][:, None]
                np.add.at(d_h, src_idx, scaled)
            return
        # pool: the gradient flows to the arg-max source(s) per dimension,
        # split evenly among ties (the exact subgradient).
        if not len(src_idx):
            return
        winners = h[src_idx] == agg[dst_idx]
        tie_counts = np.zeros_like(agg)
        np.add.at(tie_counts, dst_idx, winners.astype(np.float64))
        safe_ties = np.maximum(tie_counts, 1.0)
        routed = winners * (d_agg[dst_idx] / safe_ties[dst_idx])
        np.add.at(d_h, src_idx, routed)

    # ------------------------------------------------------------------

    def _apply(self, params, g_self, g_neigh, g_bias) -> None:
        for buf, grad, weight in (
            (params.m_self, g_self, params.w_self),
            (params.m_neigh, g_neigh, params.w_neigh),
            (params.m_bias, g_bias, params.bias),
        ):
            buf *= self.momentum
            buf += grad
            weight -= self.lr * buf

    def predict(self, batch: MiniBatch, features: np.ndarray) -> np.ndarray:
        """Predicted class per seed node."""
        return np.argmax(self.forward(batch, features), axis=1)

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot of all weights and SGD momentum buffers.

        The returned arrays are copies: mutating the model afterwards does
        not invalidate a snapshot already captured.
        """
        return {
            "num_layers": self.num_layers,
            "aggregator": self.aggregator,
            "lr": self.lr,
            "momentum": self.momentum,
            "layers": [
                {
                    "w_self": p.w_self.copy(),
                    "w_neigh": p.w_neigh.copy(),
                    "bias": p.bias.copy(),
                    "m_self": p.m_self.copy(),
                    "m_neigh": p.m_neigh.copy(),
                    "m_bias": p.m_bias.copy(),
                }
                for p in self.layers
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore weights and optimizer moments captured by :meth:`state_dict`."""
        if state.get("num_layers") != self.num_layers:
            raise CheckpointError(
                f"checkpoint has {state.get('num_layers')} layers, model has "
                f"{self.num_layers}"
            )
        if state.get("aggregator") != self.aggregator:
            raise CheckpointError(
                f"checkpoint aggregator {state.get('aggregator')!r} does not "
                f"match model aggregator {self.aggregator!r}"
            )
        layer_states = state.get("layers")
        if not isinstance(layer_states, list) or len(layer_states) != len(
            self.layers
        ):
            raise CheckpointError("checkpoint layer list malformed")
        for params, saved in zip(self.layers, layer_states):
            for name in (
                "w_self", "w_neigh", "bias", "m_self", "m_neigh", "m_bias"
            ):
                current = getattr(params, name)
                restored = np.asarray(saved[name], dtype=np.float64)
                if restored.shape != current.shape:
                    raise CheckpointError(
                        f"checkpoint tensor {name} has shape "
                        f"{restored.shape}, expected {current.shape}"
                    )
                setattr(params, name, restored.copy())
        self.lr = float(state.get("lr", self.lr))
        self.momentum = float(state.get("momentum", self.momentum))


def average_gradients(grads_list: list[list[dict]]) -> list[dict]:
    """All-reduce: element-wise mean of per-replica gradient lists.

    The summation order is the order of ``grads_list`` — callers that need
    bit-identical replays must present replicas in a stable order (the
    fleet uses ascending worker index).
    """
    if not grads_list:
        raise ConfigError("average_gradients needs at least one replica")
    num_layers = len(grads_list[0])
    if any(len(g) != num_layers for g in grads_list):
        raise ConfigError("replica gradient lists disagree on layer count")
    scale = 1.0 / len(grads_list)
    averaged = []
    for li in range(num_layers):
        layer = {}
        for name in ("w_self", "w_neigh", "bias"):
            total = grads_list[0][li][name].copy()
            for replica in grads_list[1:]:
                total += replica[li][name]
            layer[name] = total * scale
        averaged.append(layer)
    return averaged


def synthetic_labels(
    store: FeatureStore,
    node_ids: np.ndarray,
    num_classes: int,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Deterministic learnable labels derived from the true features.

    The label of a node is the argmax of a fixed random linear projection of
    its feature vector, so a capable model can fit the mapping — giving the
    training examples a real, decreasing loss signal.
    """
    if num_classes <= 0:
        raise ConfigError("num_classes must be positive")
    node_ids = np.asarray(node_ids, dtype=np.int64)
    rng = np.random.default_rng(seed)
    projection = rng.standard_normal((store.feature_dim, num_classes))
    feats = store.fetch(node_ids).astype(np.float64)
    return np.argmax(feats @ projection, axis=1).astype(np.int64)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its logit gradients.

    Shared between the mini-batch :meth:`GraphSAGE.gradients` path and
    the full-graph sweep trainer so both optimize the identical
    objective.  Note ``dlogits`` reuses the softmax buffer.
    """
    probs = _softmax(logits)
    n = len(labels)
    loss = -float(np.mean(np.log(probs[np.arange(n), labels] + 1e-12)))
    dlogits = probs
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))
