"""Model evaluation over held-out nodes through any dataloader's sampler.

Accuracy at evaluation time is computed with the same sampled-subgraph
inference the training path uses (standard practice for sampling-based
GNN systems: full-graph inference on a 100M+-node graph is itself a
storage-bound batch job).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PipelineError
from ..sampling.seeds import epoch_seed_batches
from ..storage.feature_store import FeatureStore
from .graphsage import GraphSAGE, synthetic_labels


@dataclass(frozen=True)
class EvalResult:
    """Accuracy over an evaluation node set."""

    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def evaluate_accuracy(
    model: GraphSAGE,
    sampler,
    store: FeatureStore,
    node_ids: np.ndarray,
    labels: np.ndarray,
    *,
    batch_size: int = 512,
) -> EvalResult:
    """Sampled-inference accuracy of ``model`` on ``node_ids``.

    Args:
        model: a trained classifier.
        sampler: any sampler exposing ``sample(seeds) -> MiniBatch`` with a
            layer count matching the model.
        store: the feature table.
        node_ids: evaluation nodes.
        labels: ground-truth label per evaluation node (aligned).
        batch_size: evaluation batch size.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if node_ids.shape != labels.shape:
        raise PipelineError("node_ids and labels must align")
    if len(node_ids) == 0:
        raise PipelineError("evaluation node set must not be empty")

    label_of = dict(zip(node_ids.tolist(), labels.tolist()))
    correct = 0
    for seeds in epoch_seed_batches(node_ids, batch_size, shuffle=False):
        batch = sampler.sample(seeds)
        features = store.fetch(batch.input_nodes)
        predictions = model.predict(batch, features)
        truth = np.array(
            [label_of[int(s)] for s in batch.seeds], dtype=np.int64
        )
        correct += int(np.count_nonzero(predictions == truth))
    return EvalResult(correct=correct, total=len(node_ids))


def train_validation_split(
    node_ids: np.ndarray,
    *,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle-split labeled nodes into train and validation sets."""
    if not 0.0 < validation_fraction < 1.0:
        raise PipelineError("validation fraction must be in (0, 1)")
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if len(node_ids) < 2:
        raise PipelineError("need at least two labeled nodes to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(node_ids))
    n_val = max(1, int(round(len(node_ids) * validation_fraction)))
    n_val = min(n_val, len(node_ids) - 1)
    val = np.sort(node_ids[order[:n_val]])
    train = np.sort(node_ids[order[n_val:]])
    return train, val


def synthetic_task_accuracy(
    model: GraphSAGE,
    sampler,
    store: FeatureStore,
    node_ids: np.ndarray,
    num_classes: int,
    *,
    label_seed: int = 0,
    batch_size: int = 512,
) -> EvalResult:
    """Accuracy on the synthetic feature-projection labeling task."""
    labels = synthetic_labels(store, node_ids, num_classes, seed=label_seed)
    return evaluate_accuracy(
        model, sampler, store, node_ids, labels, batch_size=batch_size
    )
