"""ClusterGCN-style subgraph sampling (Chiang et al., KDD'19).

The graph is partitioned ahead of time; each training iteration unions a
fixed number of randomly chosen clusters and trains on the *induced*
subgraph (every layer reuses the same induced edge set).  GIDS can serve
such batches too (Section 4.7), but the paper declines to evaluate the
scheme because the prerequisite partitioning step takes days at IGB
scale — the trade-off quantified by ``benchmarks/bench_clustergcn.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from ..graph.partition import PartitionResult
from ..utils import as_rng
from .minibatch import MiniBatch, SampledLayer


class ClusterSampler:
    """Samples mini-batches as unions of pre-computed clusters.

    Args:
        graph: the full CSR graph.
        partition: a node-to-cluster assignment (see
            :mod:`repro.graph.partition`).
        clusters_per_batch: clusters unioned per mini-batch.
        num_layers: message-passing layers (the induced edge set is reused
            for each).
        train_mask: optional boolean mask of labeled nodes; seeds are the
            labeled nodes inside the chosen clusters (all members when
            omitted).
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        graph: CSRGraph,
        partition: PartitionResult,
        *,
        clusters_per_batch: int = 1,
        num_layers: int = 3,
        train_mask: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if len(partition.parts) != graph.num_nodes:
            raise SamplingError("partition does not cover this graph")
        if clusters_per_batch <= 0:
            raise SamplingError("clusters_per_batch must be positive")
        if clusters_per_batch > partition.num_parts:
            raise SamplingError("clusters_per_batch exceeds the part count")
        if num_layers <= 0:
            raise SamplingError("num_layers must be positive")
        if train_mask is not None:
            train_mask = np.asarray(train_mask, dtype=bool)
            if train_mask.shape != (graph.num_nodes,):
                raise SamplingError("train_mask must cover every node")
        self.graph = graph
        self.partition = partition
        self.clusters_per_batch = clusters_per_batch
        self.num_layers = num_layers
        self.train_mask = train_mask
        self._rng = as_rng(seed)

    def sample(self, cluster_ids: np.ndarray | None = None) -> MiniBatch:
        """Build the mini-batch for a union of clusters.

        Args:
            cluster_ids: explicit clusters to union; drawn uniformly at
                random when omitted.
        """
        if cluster_ids is None:
            cluster_ids = self._rng.choice(
                self.partition.num_parts,
                size=self.clusters_per_batch,
                replace=False,
            )
        cluster_ids = np.unique(np.asarray(cluster_ids, dtype=np.int64))
        if len(cluster_ids) == 0:
            raise SamplingError("at least one cluster is required")
        if cluster_ids.min() < 0 or cluster_ids.max() >= self.partition.num_parts:
            raise SamplingError("cluster ids out of range")

        in_batch = np.isin(self.partition.parts, cluster_ids)
        nodes = np.flatnonzero(in_batch).astype(np.int64)
        if len(nodes) == 0:
            raise SamplingError("chosen clusters are empty")

        src, dst = self._induced_edges(nodes, in_batch)
        layer = SampledLayer(src=src, dst=dst)
        seeds = nodes
        if self.train_mask is not None:
            labeled = nodes[self.train_mask[nodes]]
            if len(labeled):
                seeds = labeled
        # Each layer reuses the induced subgraph; sampling work counts the
        # edge expansion once per layer (the cost ClusterGCN actually pays).
        num_sampled = len(nodes) + self.num_layers * layer.num_edges
        return MiniBatch(
            seeds=seeds,
            layers=tuple([layer] * self.num_layers),
            input_nodes=nodes,
            num_sampled=num_sampled,
        )

    def _induced_edges(
        self, nodes: np.ndarray, in_batch: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        graph = self.graph
        starts = graph.indptr[nodes]
        degrees = graph.indptr[nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        dst = np.repeat(nodes, degrees)
        gather = np.repeat(starts, degrees) + _run_offsets(degrees)
        src = graph.indices[gather]
        keep = in_batch[src]
        src = src[keep]
        dst = dst[keep]
        if len(src):
            keys = dst * np.int64(graph.num_nodes) + src
            _, unique_idx = np.unique(keys, return_index=True)
            src = src[unique_idx]
            dst = dst[unique_idx]
        return src, dst


def _run_offsets(run_lengths: np.ndarray) -> np.ndarray:
    """``[0..r0-1, 0..r1-1, ...]`` for the given run lengths."""
    total = int(run_lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(len(run_lengths), dtype=np.int64)
    np.cumsum(run_lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, run_lengths)
