"""Mini-batch containers produced by the samplers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SamplingError


@dataclass(frozen=True)
class SampledLayer:
    """One message-passing layer of a sampled subgraph.

    Edges are stored in COO form over *global* node ids: message flows from
    ``src[i]`` to ``dst[i]``; ``dst`` nodes belong to the layer above.
    """

    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise SamplingError("src and dst must be 1-D arrays of equal length")
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)

    @property
    def num_edges(self) -> int:
        return len(self.src)


@dataclass(frozen=True)
class MiniBatch:
    """A sampled computational graph for one training iteration.

    Attributes:
        seeds: the labeled target nodes of this iteration.
        layers: sampled bipartite layers ordered from the *input* layer (the
            k-hop frontier) to the layer feeding the seeds, the order a GNN
            forward pass consumes them.
        input_nodes: unique node ids whose feature vectors must be gathered
            (the union of seeds and every sampled node).
        num_sampled: total sampled node *instances* across layers, i.e. the
            amount of sampling work (drives the rate-based time models).
    """

    seeds: np.ndarray
    layers: tuple[SampledLayer, ...]
    input_nodes: np.ndarray
    num_sampled: int

    def __post_init__(self) -> None:
        seeds = np.ascontiguousarray(self.seeds, dtype=np.int64)
        inputs = np.ascontiguousarray(self.input_nodes, dtype=np.int64)
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(self, "input_nodes", inputs)
        object.__setattr__(self, "layers", tuple(self.layers))
        if len(seeds) == 0:
            raise SamplingError("a mini-batch needs at least one seed")
        if self.num_sampled < 0:
            raise SamplingError("num_sampled must be non-negative")

    @property
    def num_input_nodes(self) -> int:
        return len(self.input_nodes)

    @property
    def num_edges(self) -> int:
        return sum(layer.num_edges for layer in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Plain-data snapshot of the sampled batch (checkpointable)."""
        return {
            "seeds": self.seeds.copy(),
            "layers": [
                {"src": layer.src.copy(), "dst": layer.dst.copy()}
                for layer in self.layers
            ],
            "input_nodes": self.input_nodes.copy(),
            "num_sampled": int(self.num_sampled),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MiniBatch":
        """Rebuild a batch captured by :meth:`state_dict`."""
        return cls(
            seeds=np.asarray(state["seeds"], dtype=np.int64),
            layers=tuple(
                SampledLayer(
                    src=np.asarray(layer["src"], dtype=np.int64),
                    dst=np.asarray(layer["dst"], dtype=np.int64),
                )
                for layer in state["layers"]
            ),
            input_nodes=np.asarray(state["input_nodes"], dtype=np.int64),
            num_sampled=int(state["num_sampled"]),
        )
