"""Graph sampling: mini-batch seeds, GraphSAGE neighborhood sampling, LADIES.

Sampling is fully functional — it traverses real CSR structures and produces
real node-id streams; those streams drive every cache and storage model in
the simulation substrate.
"""

from .minibatch import MiniBatch, SampledLayer
from .neighbor import NeighborSampler
from .hetero_neighbor import HeteroNeighborSampler
from .ladies import LadiesSampler
from .cluster import ClusterSampler
from .seeds import epoch_seed_batches

__all__ = [
    "MiniBatch",
    "SampledLayer",
    "NeighborSampler",
    "HeteroNeighborSampler",
    "LadiesSampler",
    "ClusterSampler",
    "epoch_seed_batches",
]
