"""Epoch iteration over shuffled seed-node batches."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import CheckpointError, SamplingError
from ..utils import as_rng


def epoch_seed_batches(
    train_ids: np.ndarray,
    batch_size: int,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield mini-batch seed arrays covering ``train_ids`` once.

    Args:
        train_ids: labeled node ids.
        batch_size: seeds per mini-batch.
        shuffle: shuffle the ids before batching (standard for training).
        drop_last: drop a trailing partial batch.
        seed: RNG seed or generator for the shuffle.
    """
    train_ids = np.asarray(train_ids, dtype=np.int64)
    if batch_size <= 0:
        raise SamplingError(f"batch size must be positive, got {batch_size}")
    if len(train_ids) == 0:
        raise SamplingError("train_ids must not be empty")
    order = train_ids
    if shuffle:
        rng = as_rng(seed)
        order = train_ids[rng.permutation(len(train_ids))]
    for start in range(0, len(order), batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch


class SeedBatchStream:
    """Endless, *resumable* stream of shuffled seed batches.

    Behaves exactly like chaining :func:`epoch_seed_batches` epoch after
    epoch — one ``rng.permutation`` draw per epoch, at the moment the
    previous epoch runs dry — but keeps its position (current epoch order +
    cursor) as explicit state so a checkpoint can capture it mid-epoch and a
    resumed run continues with the identical batch sequence.

    Args:
        train_ids: labeled node ids.
        batch_size: seeds per mini-batch.
        rng: the generator the per-epoch shuffles draw from (shared with the
            caller, so checkpointing the generator's bit state elsewhere is
            enough to replay the shuffles).
    """

    def __init__(
        self,
        train_ids: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
    ) -> None:
        train_ids = np.asarray(train_ids, dtype=np.int64)
        if batch_size <= 0:
            raise SamplingError(
                f"batch size must be positive, got {batch_size}"
            )
        if len(train_ids) == 0:
            raise SamplingError("train_ids must not be empty")
        self._train_ids = train_ids
        self._batch_size = batch_size
        self._rng = rng
        self._order: np.ndarray | None = None
        self._pos = 0

    def next(self) -> np.ndarray:
        """The next seed batch, starting a new shuffled epoch when needed."""
        if self._order is None or self._pos >= len(self._order):
            self._order = self._train_ids[
                self._rng.permutation(len(self._train_ids))
            ]
            self._pos = 0
        batch = self._order[self._pos : self._pos + self._batch_size]
        self._pos += self._batch_size
        return batch

    def __next__(self) -> np.ndarray:
        return self.next()

    def __iter__(self) -> "SeedBatchStream":
        return self

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Current epoch order and cursor (the RNG is captured by the owner)."""
        return {
            "batch_size": self._batch_size,
            "num_train_ids": len(self._train_ids),
            "order": None if self._order is None else self._order.copy(),
            "pos": self._pos,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the epoch position captured by :meth:`state_dict`."""
        if state.get("batch_size") != self._batch_size:
            raise CheckpointError(
                f"checkpoint batch size {state.get('batch_size')} does not "
                f"match configured {self._batch_size}"
            )
        if state.get("num_train_ids") != len(self._train_ids):
            raise CheckpointError(
                "checkpoint training-set size does not match the dataset"
            )
        order = state["order"]
        self._order = (
            None if order is None else np.asarray(order, dtype=np.int64).copy()
        )
        self._pos = int(state["pos"])
