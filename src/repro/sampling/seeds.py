"""Epoch iteration over shuffled seed-node batches."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import SamplingError
from ..utils import as_rng


def epoch_seed_batches(
    train_ids: np.ndarray,
    batch_size: int,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
    seed: int | np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield mini-batch seed arrays covering ``train_ids`` once.

    Args:
        train_ids: labeled node ids.
        batch_size: seeds per mini-batch.
        shuffle: shuffle the ids before batching (standard for training).
        drop_last: drop a trailing partial batch.
        seed: RNG seed or generator for the shuffle.
    """
    train_ids = np.asarray(train_ids, dtype=np.int64)
    if batch_size <= 0:
        raise SamplingError(f"batch size must be positive, got {batch_size}")
    if len(train_ids) == 0:
        raise SamplingError("train_ids must not be empty")
    order = train_ids
    if shuffle:
        rng = as_rng(seed)
        order = train_ids[rng.permutation(len(train_ids))]
    for start in range(0, len(order), batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch
