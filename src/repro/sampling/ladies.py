"""LADIES layer-wise importance sampling (Zou et al., NeurIPS'19).

Unlike neighborhood sampling, LADIES samples a *fixed budget of nodes per
layer*, shared by the whole mini-batch: candidates are the union of the
current layer's in-neighbors, and each candidate is drawn with probability
proportional to its layer-dependent importance — the squared norm of its
column in the row-normalized adjacency restricted to the current layer.
Because a candidate's importance sums ``1/deg(v)^2`` over the layer nodes
``v`` it feeds, we accumulate exactly that quantity per candidate.

The sampled layers are denser and flatter than GraphSAGE's trees, which is
why the paper evaluates it separately (Fig. 15).
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from ..utils import as_rng
from .minibatch import MiniBatch, SampledLayer


class LadiesSampler:
    """Layer-wise importance sampler with a per-layer node budget.

    Args:
        graph: adjacency in in-neighbor orientation.
        layer_sizes: node budget per layer, ordered from the layer closest
            to the seeds outward (matching :class:`NeighborSampler`).
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        graph: CSRGraph,
        layer_sizes: tuple[int, ...],
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if len(layer_sizes) == 0:
            raise SamplingError("layer_sizes must contain at least one layer")
        if any(s <= 0 for s in layer_sizes):
            raise SamplingError(
                f"layer sizes must be positive, got {layer_sizes}"
            )
        self.graph = graph
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self._rng = as_rng(seed)

    @property
    def num_layers(self) -> int:
        return len(self.layer_sizes)

    def sample(self, seeds: np.ndarray) -> MiniBatch:
        """Sample a layered computational graph for one batch of seeds."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise SamplingError("seed set must not be empty")
        if seeds.min() < 0 or seeds.max() >= self.graph.num_nodes:
            raise SamplingError("seed ids out of range for this graph")

        layers: list[SampledLayer] = []
        current = seeds
        all_nodes = [seeds]
        num_sampled = len(seeds)
        for budget in self.layer_sizes:
            chosen, src, dst = self._sample_layer(current, budget)
            layers.append(SampledLayer(src=src, dst=dst))
            num_sampled += len(chosen)
            all_nodes.append(chosen)
            # LADIES keeps the seed/previous nodes in the next layer so the
            # self path survives; the next layer conditions on both.
            current = np.unique(np.concatenate([current, chosen]))
        input_nodes = np.unique(np.concatenate(all_nodes))
        layers.reverse()
        return MiniBatch(
            seeds=seeds,
            layers=tuple(layers),
            input_nodes=input_nodes,
            num_sampled=num_sampled,
        )

    def _sample_layer(
        self, layer_nodes: np.ndarray, budget: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Importance-sample ``budget`` candidates feeding ``layer_nodes``.

        Returns:
            ``(chosen, src, dst)`` — the sampled candidate set and the edges
            from chosen candidates into the layer.
        """
        graph = self.graph
        starts = graph.indptr[layer_nodes]
        degrees = graph.indptr[layer_nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty

        dst_all = np.repeat(layer_nodes, degrees)
        gather = np.repeat(starts, degrees) + _run_offsets(degrees)
        src_all = graph.indices[gather]

        # Importance of candidate u: sum over layer nodes v it feeds of
        # (1/deg(v))^2 — the squared column norm of the row-normalized
        # adjacency restricted to this layer.
        inv_deg = 1.0 / np.maximum(degrees, 1).astype(np.float64)
        edge_weight = np.repeat(inv_deg**2, degrees)
        candidates, inverse = np.unique(src_all, return_inverse=True)
        importance = np.zeros(len(candidates))
        np.add.at(importance, inverse, edge_weight)
        prob = importance / importance.sum()

        k = min(budget, len(candidates))
        chosen = self._rng.choice(candidates, size=k, replace=False, p=prob)
        chosen.sort()

        keep = np.isin(src_all, chosen)
        return chosen, src_all[keep], dst_all[keep]


def _run_offsets(run_lengths: np.ndarray) -> np.ndarray:
    """``[0..r0-1, 0..r1-1, ...]`` for the given run lengths."""
    total = int(run_lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(len(run_lengths), dtype=np.int64)
    np.cumsum(run_lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, run_lengths)
