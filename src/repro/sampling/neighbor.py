"""GraphSAGE uniform neighborhood sampling (Section 2.2.2).

For every node in the current frontier, up to ``fanout`` in-neighbors are
selected uniformly at random; the union of the frontier and the sampled
neighbors becomes the frontier of the next (lower) layer, exactly like DGL's
``MultiLayerNeighborSampler`` blocks.

Vectorization note: for nodes whose degree exceeds the fanout we draw with
replacement and deduplicate the resulting edges.  For high-degree nodes the
collision probability is negligible, and for low-degree nodes (degree <=
fanout) the full neighbor list is taken, so the sampled subgraph matches the
"up to k distinct neighbors" semantics of GraphSAGE in all but a vanishing
fraction of draws.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from ..utils import as_rng
from .minibatch import MiniBatch, SampledLayer


class NeighborSampler:
    """Multi-layer uniform neighborhood sampler over a CSR graph.

    Args:
        graph: adjacency in in-neighbor orientation.
        fanouts: neighbors to sample per layer, ordered from the layer
            closest to the seeds outward (DGL convention), e.g. ``(10, 5, 5)``
            for three layers.
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: tuple[int, ...],
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if len(fanouts) == 0:
            raise SamplingError("fanouts must contain at least one layer")
        if any(f <= 0 for f in fanouts):
            raise SamplingError(f"fanouts must be positive, got {fanouts}")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self._rng = as_rng(seed)

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    def sample(self, seeds: np.ndarray) -> MiniBatch:
        """Sample the computational graph for one batch of seed nodes."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise SamplingError("seed set must not be empty")
        if seeds.min() < 0 or seeds.max() >= self.graph.num_nodes:
            raise SamplingError("seed ids out of range for this graph")

        layers: list[SampledLayer] = []
        frontier = seeds
        num_sampled = len(seeds)
        for fanout in self.fanouts:
            src, dst = self._sample_layer(frontier, fanout)
            layers.append(SampledLayer(src=src, dst=dst))
            num_sampled += len(src)
            frontier = np.unique(np.concatenate([frontier, src]))
        input_nodes = frontier
        # The GNN consumes layers input-first; we sampled seeds-first.
        layers.reverse()
        return MiniBatch(
            seeds=seeds,
            layers=tuple(layers),
            input_nodes=input_nodes,
            num_sampled=num_sampled,
        )

    def _sample_layer(
        self, frontier: np.ndarray, fanout: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample up to ``fanout`` in-neighbors of every frontier node."""
        graph = self.graph
        starts = graph.indptr[frontier]
        degrees = graph.indptr[frontier + 1] - starts

        small = degrees <= fanout
        # Low-degree nodes contribute their full neighbor list.
        small_nodes = frontier[small]
        small_deg = degrees[small]
        if small_nodes.size:
            small_dst = np.repeat(small_nodes, small_deg)
            offsets = _run_offsets(small_deg)
            small_src = graph.indices[
                np.repeat(starts[small], small_deg) + offsets
            ]
        else:
            small_dst = np.empty(0, dtype=np.int64)
            small_src = np.empty(0, dtype=np.int64)

        # High-degree nodes: fanout draws with replacement, dedup after.
        big_nodes = frontier[~small]
        if big_nodes.size:
            big_deg = degrees[~small]
            picks = self._rng.integers(
                0, big_deg[:, None], size=(len(big_nodes), fanout)
            )
            big_src = graph.indices[(starts[~small][:, None] + picks).ravel()]
            big_dst = np.repeat(big_nodes, fanout)
            keys = big_dst * np.int64(graph.num_nodes) + big_src
            _, unique_idx = np.unique(keys, return_index=True)
            big_src = big_src[unique_idx]
            big_dst = big_dst[unique_idx]
        else:
            big_src = np.empty(0, dtype=np.int64)
            big_dst = np.empty(0, dtype=np.int64)

        src = np.concatenate([small_src, big_src])
        dst = np.concatenate([small_dst, big_dst])
        if len(src):
            # The generator may produce multi-edges; a sampled block carries
            # each (dst, src) pair at most once, like DGL's blocks.
            keys = dst * np.int64(graph.num_nodes) + src
            _, unique_idx = np.unique(keys, return_index=True)
            src = src[unique_idx]
            dst = dst[unique_idx]
        return src, dst


def _run_offsets(run_lengths: np.ndarray) -> np.ndarray:
    """``[0..r0-1, 0..r1-1, ...]`` for the given run lengths."""
    total = int(run_lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(len(run_lengths), dtype=np.int64)
    np.cumsum(run_lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, run_lengths)
