"""Typed neighborhood sampling for heterogeneous graphs.

DGL's heterogeneous dataloaders sample a (possibly different) number of
neighbors *per node type* at each layer; GIDS itself is type-agnostic —
it only sees the unified node-id space — but the IGBH-Full and MAG240M
workloads are driven by typed samplers, so the reproduction provides one.

The sampler wraps the unified CSR of a :class:`HeteroGraph` and applies a
per-type fanout: a frontier node's sampled in-neighbors are grouped by
their type and each group is capped at that type's fanout.  With a single
fanout for all types it degenerates to :class:`NeighborSampler` semantics.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph.hetero import HeteroGraph
from ..utils import as_rng
from .minibatch import MiniBatch, SampledLayer


class HeteroNeighborSampler:
    """Multi-layer typed neighborhood sampler.

    Args:
        hetero: the typed graph (sampling runs on its unified CSR).
        fanouts: one entry per layer, ordered from the layer closest to the
            seeds outward.  Each entry is either an ``int`` (same cap for
            every neighbor type) or a ``dict`` mapping type names to caps;
            types absent from the dict are not sampled at that layer.
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        hetero: HeteroGraph,
        fanouts: tuple[int | dict[str, int], ...],
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if len(fanouts) == 0:
            raise SamplingError("fanouts must contain at least one layer")
        self.hetero = hetero
        self.graph = hetero.csr
        self._rng = as_rng(seed)
        self._layer_caps = [
            self._normalize_fanout(f) for f in fanouts
        ]

    def _normalize_fanout(
        self, fanout: int | dict[str, int]
    ) -> np.ndarray:
        """Per-type neighbor caps as an array indexed by type id.

        A cap of 0 disables sampling of that type at the layer.
        """
        caps = np.zeros(self.hetero.num_types, dtype=np.int64)
        if isinstance(fanout, dict):
            for type_name, cap in fanout.items():
                if cap < 0:
                    raise SamplingError(
                        f"fanout for type {type_name!r} must be >= 0"
                    )
                if type_name not in self.hetero.type_names:
                    raise SamplingError(
                        f"unknown node type {type_name!r}; known: "
                        f"{self.hetero.type_names}"
                    )
                caps[self.hetero._type_index(type_name)] = cap
        else:
            if fanout <= 0:
                raise SamplingError(f"fanout must be positive, got {fanout}")
            caps[:] = fanout
        return caps

    @property
    def num_layers(self) -> int:
        return len(self._layer_caps)

    def sample(self, seeds: np.ndarray) -> MiniBatch:
        """Sample a typed computational graph for one batch of seeds."""
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise SamplingError("seed set must not be empty")
        if seeds.min() < 0 or seeds.max() >= self.graph.num_nodes:
            raise SamplingError("seed ids out of range for this graph")

        layers: list[SampledLayer] = []
        frontier = seeds
        num_sampled = len(seeds)
        for caps in self._layer_caps:
            src, dst = self._sample_layer(frontier, caps)
            layers.append(SampledLayer(src=src, dst=dst))
            num_sampled += len(src)
            frontier = np.unique(np.concatenate([frontier, src]))
        layers.reverse()
        return MiniBatch(
            seeds=seeds,
            layers=tuple(layers),
            input_nodes=frontier,
            num_sampled=num_sampled,
        )

    def _sample_layer(
        self, frontier: np.ndarray, caps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample in-neighbors of the frontier with per-type caps.

        Strategy: expand all in-edges of the frontier, group per
        (destination, neighbor type), and keep a uniformly chosen subset of
        at most ``caps[type]`` edges per group.  This is exact
        without-replacement sampling (unlike the homogeneous sampler's
        dedup-after-replacement fast path) because typed groups are small.
        """
        graph = self.graph
        starts = graph.indptr[frontier]
        degrees = graph.indptr[frontier + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty

        dst_all = np.repeat(frontier, degrees)
        gather = np.repeat(starts, degrees) + _run_offsets(degrees)
        src_all = graph.indices[gather]
        src_types = self.hetero.type_of(src_all)

        # Shuffle edges once; then a stable sort by (dst, type) makes each
        # group's first `cap` entries a uniform without-replacement pick.
        perm = self._rng.permutation(total)
        dst_all = dst_all[perm]
        src_all = src_all[perm]
        src_types = src_types[perm]

        group_key = dst_all * np.int64(self.hetero.num_types) + src_types
        order = np.argsort(group_key, kind="stable")
        dst_sorted = dst_all[order]
        src_sorted = src_all[order]
        key_sorted = group_key[order]
        type_sorted = src_types[order]

        # Rank of each edge within its (dst, type) group.
        new_group = np.ones(total, dtype=bool)
        new_group[1:] = key_sorted[1:] != key_sorted[:-1]
        group_ids = np.cumsum(new_group) - 1
        group_starts = np.flatnonzero(new_group)
        rank = np.arange(total) - group_starts[group_ids]

        keep = rank < caps[type_sorted]
        src = src_sorted[keep]
        dst = dst_sorted[keep]
        if len(src):
            keys = dst * np.int64(graph.num_nodes) + src
            _, unique_idx = np.unique(keys, return_index=True)
            src = src[unique_idx]
            dst = dst[unique_idx]
        return src, dst


def _run_offsets(run_lengths: np.ndarray) -> np.ndarray:
    """``[0..r0-1, 0..r1-1, ...]`` for the given run lengths."""
    total = int(run_lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.zeros(len(run_lengths), dtype=np.int64)
    np.cumsum(run_lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, run_lengths)
