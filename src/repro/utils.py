"""Small shared helpers: RNG normalization and human-readable formatting."""

from __future__ import annotations

import math

import numpy as np

from .errors import ConfigError

#: Factors used by :func:`format_bytes` / :func:`parse_size`.
_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a NumPy ``Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so that callers can share RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def require_finite(
    name: str,
    value: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
    exclusive_minimum: bool = False,
) -> float:
    """Validate a numeric config field; return it as ``float``.

    Rejects NaN and infinities explicitly — a plain ``value < minimum``
    comparison silently accepts NaN (every comparison with NaN is false),
    which is how non-finite timeouts used to slip through config
    validation.  Raises :class:`~repro.errors.ConfigError` on violation.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ConfigError(f"{name} must be finite, got {value}")
    if minimum is not None:
        if exclusive_minimum:
            if value <= minimum:
                raise ConfigError(f"{name} must be > {minimum}, got {value}")
        elif value < minimum:
            raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ConfigError(f"{name} must be <= {maximum}, got {value}")
    return value


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-ish 1000-based unit, e.g. ``1.5 GB``."""
    if n < 0:
        raise ConfigError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for unit in _UNITS:
        if value < 1000.0 or unit == _UNITS[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (ns/us/ms/s)."""
    if seconds < 0:
        raise ConfigError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_rate(per_second: float) -> str:
    """Render an operation rate, e.g. ``1.5M/s``."""
    if per_second < 0:
        raise ConfigError(f"rate must be non-negative, got {per_second}")
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if per_second >= factor:
            return f"{per_second / factor:.2f}{suffix}/s"
    return f"{per_second:.2f}/s"


def package_version() -> str:
    """The installed ``repro`` distribution version, with a source fallback.

    Prefers package metadata (the pip-installed truth) and falls back to
    the in-tree ``repro.__version__`` when running uninstalled from a
    source checkout (e.g. ``PYTHONPATH=src``).
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    import repro

    return getattr(repro, "__version__", "0.0.0")


def splitmix64_uniform(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Deterministic per-value uniforms in ``[0, 1)`` (vectorized).

    A stateless hash, not an RNG stream: the same ``(value, salt)`` pair
    always maps to the same uniform, so set-membership decisions derived
    from it (e.g. which pages a corruption storm poisons) are reproducible
    without consuming anyone's random stream.
    """
    x = np.asarray(values, dtype=np.uint64) + np.uint64(
        salt & 0xFFFFFFFFFFFFFFFF
    )
    x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(40)).astype(np.float64) / float(1 << 24)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ConfigError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ConfigError(f"dividend must be non-negative, got {a}")
    return -(-a // b)
