"""Black-box flight recorder: a bounded ring of the most recent events.

The tracer keeps *everything* (up to its event cap); the flight recorder
keeps only the last ``capacity`` happenings — spans, instants,
breaker/brownout/storage-HA transitions (which already flow through the
tracer as instants) and per-snapshot metric deltas — exactly the
evidence needed to reconstruct the seconds before a failure.  It rides
``state_dict()`` with the tracer so a restored run resumes with the same
recent history, and it dumps ``blackbox.json`` when something goes
wrong: a :class:`~repro.errors.SimulatedCrashError`, a fired SLO rule,
or a violated invariant.

The ring is pure modeled-time data: identical runs produce identical
rings, and the dump is deterministic except for the caller-supplied
trigger string.
"""

from __future__ import annotations

import json

from ..errors import TelemetryError

#: Schema tag written into every ``blackbox.json``.
BLACKBOX_SCHEMA = "repro.blackbox/v1"


class FlightRecorder:
    """Bounded ring buffer of recent telemetry events.

    Attach to a tracer (``tracer.attach_flight(recorder)``) and every
    span/instant the tracer records is noted automatically; other layers
    may :meth:`note` domain events directly.  ``capacity`` bounds memory
    and dump size — old entries fall off the front.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise TelemetryError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.entries: list[dict] = []
        self.noted_total = 0
        self.trigger: str | None = None
        self.dumps = 0

    def note(
        self,
        kind: str,
        name: str,
        track: str,
        at_s: float,
        detail: dict | None = None,
    ) -> None:
        """Append one entry, evicting the oldest beyond ``capacity``."""
        self.entries.append(
            {
                "kind": kind,
                "name": name,
                "track": track,
                "at_s": float(at_s),
                "detail": dict(detail or {}),
            }
        )
        self.noted_total += 1
        overflow = len(self.entries) - self.capacity
        if overflow > 0:
            del self.entries[:overflow]

    def note_metric_deltas(
        self, at_s: float, deltas: dict[str, float]
    ) -> None:
        """Record counter movement since the previous metrics snapshot."""
        if deltas:
            self.note(
                "metrics", "counter.deltas", "alerts", at_s, dict(deltas)
            )

    # ------------------------------------------------------------------
    # Dumping

    def dump(
        self,
        path: str,
        *,
        trigger: str,
        at_s: float,
        context: dict | None = None,
    ) -> dict:
        """Write ``blackbox.json`` and return the written document.

        ``trigger`` names what went wrong (``"crash: ..."``,
        ``"slo: ..."``, ``"invariant: ..."``); ``context`` carries any
        workload-specific forensics (iteration, restart attempt, fired
        rule names).  The entries list ends with the most recent event —
        for a crash dump the caller notes the crash itself last, so the
        file's final entry *is* the crash site.
        """
        self.trigger = str(trigger)
        self.dumps += 1
        doc = {
            "schema": BLACKBOX_SCHEMA,
            "trigger": self.trigger,
            "modeled_time_s": float(at_s),
            "entry_count": len(self.entries),
            "noted_total": self.noted_total,
            "capacity": self.capacity,
            "context": dict(context or {}),
            "entries": [dict(entry) for entry in self.entries],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True, allow_nan=False)
            handle.write("\n")
        return doc

    # ------------------------------------------------------------------
    # Reporting / checkpointing

    def export_block(self) -> dict:
        """The flight-recorder part of the export's ``observability`` block."""
        return {
            "capacity": self.capacity,
            "entries": len(self.entries),
            "noted_total": self.noted_total,
            "trigger": self.trigger,
            "dumps": self.dumps,
        }

    def state_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": [dict(entry) for entry in self.entries],
            "noted_total": self.noted_total,
            "trigger": self.trigger,
            "dumps": self.dumps,
        }

    def load_state_dict(self, state: dict) -> None:
        required = {"capacity", "entries", "noted_total", "trigger", "dumps"}
        if not required.issubset(state):
            raise TelemetryError(
                f"malformed flight-recorder state keys: {sorted(state)}"
            )
        if int(state["capacity"]) != self.capacity:
            raise TelemetryError(
                f"flight-recorder capacity {self.capacity} does not match "
                f"checkpoint capacity {state['capacity']}"
            )
        self.entries = [dict(entry) for entry in state["entries"]]
        self.noted_total = int(state["noted_total"])
        self.trigger = state["trigger"]
        self.dumps = int(state["dumps"])
