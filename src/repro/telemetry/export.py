"""Trace exporters: Chrome trace-event JSON, ASCII rendering, text summary.

The Chrome trace-event format (the JSON ``traceEvents`` array understood by
``chrome://tracing`` and Perfetto) maps cleanly onto the tracer's model:
each track becomes one named thread lane, spans become complete (``"X"``)
events and instants become instant (``"i"``) events.  Timestamps are the
tracer's modeled seconds converted to the format's microseconds.

``render_trace`` draws a saved trace back as the repository's ASCII
timeline idiom (one labeled lane per track, digits identifying spans, a
``format_time``-labeled axis), so ``python -m repro trace out.json`` needs
no browser.
"""

from __future__ import annotations

import json

from ..errors import TelemetryError
from ..utils import format_time, package_version
from .tracer import TRACKS, Tracer

#: Microseconds per modeled second (trace-event timestamps are in us).
_US = 1e6

#: Category tag on the flow events binding one trace id's spans.
_FLOW_CATEGORY = "causal"


def _track_order(tracks) -> list[str]:
    """Canonical lanes first, then unknown tracks in first-seen order."""
    known = [t for t in TRACKS if t in tracks]
    extra = [t for t in tracks if t not in TRACKS]
    return known + extra


def to_chrome_trace(tracer: Tracer) -> dict:
    """Convert a tracer's recording into a Chrome trace-event document."""
    tracks = _track_order(
        {s.track for s in tracer.spans}
        | {i.track for i in tracer.instants}
    )
    tids = {track: index for index, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro modeled time"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": tids[span.track],
                "ts": span.start_s * _US,
                "dur": span.duration_s * _US,
                "args": dict(span.args),
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": tids[instant.track],
                "ts": instant.at_s * _US,
                "args": dict(instant.args),
            }
        )
    events.extend(_flow_events(tracer, tids))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "repro_version": package_version(),
            "detail": tracer.detail,
            "clock_s": tracer.clock_s,
            "span_count": len(tracer.spans),
            "instant_count": len(tracer.instants),
            "truncated": tracer.truncated,
            "metrics": tracer.metrics.to_dict(),
        },
    }


def _flow_events(tracer: Tracer, tids: dict[str, int]) -> list[dict]:
    """Chrome-trace flow events binding each trace id's spans causally.

    Spans stamped by an active :class:`~repro.telemetry.TraceContext`
    carry ``trace_id``/``trace_seq`` args; for every trace id with two
    or more spans this emits a flow chain — ``"s"`` (start) anchored on
    the first span, ``"t"`` (step) on each intermediate span, ``"f"``
    (finish, ``bp: "e"``) on the last — which Perfetto draws as arrows
    across the lanes the request touched.
    """
    chains: dict[str, list] = {}
    for span in tracer.spans:
        trace_id = span.args.get("trace_id")
        if trace_id is not None:
            chains.setdefault(str(trace_id), []).append(span)
    events: list[dict] = []
    for trace_id in sorted(chains):
        chain = sorted(
            chains[trace_id],
            key=lambda s: (s.args.get("trace_seq", 0), s.start_s),
        )
        if len(chain) < 2:
            continue
        last = len(chain) - 1
        for index, span in enumerate(chain):
            event = {
                "name": f"trace {trace_id}",
                "cat": _FLOW_CATEGORY,
                "ph": "s" if index == 0 else ("f" if index == last else "t"),
                "id": trace_id,
                "pid": 0,
                "tid": tids[span.track],
                # Flow arrows leave a span at its end and land at starts.
                "ts": (span.end_s if index == 0 else span.start_s) * _US,
                "args": {"trace_seq": span.args.get("trace_seq")},
            }
            if index == last:
                event["bp"] = "e"
            events.append(event)
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Serialize :func:`to_chrome_trace` to ``path``; returns event count."""
    trace = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return len(trace["traceEvents"])


def validate_chrome_trace(trace: dict) -> int:
    """Structurally validate a trace-event document; returns event count.

    Raises :class:`~repro.errors.TelemetryError` on the first malformed
    event.  Used by the CI smoke job and the ``repro trace`` subcommand so
    a corrupt file fails loudly instead of rendering garbage.
    """
    if not isinstance(trace, dict):
        raise TelemetryError("trace document must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TelemetryError("trace document lacks a traceEvents array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TelemetryError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TelemetryError(
                    f"traceEvents[{index}] is missing {key!r}"
                )
        ph = event["ph"]
        if ph not in ("X", "i", "M", "C", "s", "t", "f"):
            raise TelemetryError(
                f"traceEvents[{index}] has unsupported phase {ph!r}"
            )
        if ph in ("X", "i", "s", "t", "f"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TelemetryError(
                    f"traceEvents[{index}] has invalid ts {ts!r}"
                )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(
                    f"traceEvents[{index}] has invalid dur {dur!r}"
                )
        if ph in ("s", "t", "f"):
            flow_id = event.get("id")
            if not isinstance(flow_id, (str, int)):
                raise TelemetryError(
                    f"traceEvents[{index}] flow event has invalid id "
                    f"{flow_id!r}"
                )
    return len(events)


def summarize_chrome_trace(trace: dict) -> dict:
    """Machine-readable summary of a saved trace-event document.

    The JSON counterpart of :func:`render_trace` (``repro trace --json``):
    per-track span seconds and event counts plus the ``otherData`` header,
    so scripts can consume a trace without re-implementing the event
    format.  Validates the document first.
    """
    validate_chrome_trace(trace)
    events = trace["traceEvents"]
    names: dict[int, str] = {}
    for event in events:
        if event["ph"] == "M" and event["name"] == "thread_name":
            names[event["tid"]] = str(event.get("args", {}).get("name", ""))

    tracks: dict[str, dict] = {}

    def _track_entry(tid: int) -> dict:
        name = names.get(tid, f"tid{tid}")
        return tracks.setdefault(
            name, {"span_seconds": 0.0, "spans": 0, "instants": 0}
        )

    t_lo = None
    t_hi = None
    for event in events:
        if event["ph"] not in ("X", "i"):
            continue
        start = event["ts"] / _US
        end = start
        entry = _track_entry(event["tid"])
        if event["ph"] == "X":
            end = start + event["dur"] / _US
            entry["span_seconds"] += end - start
            entry["spans"] += 1
        else:
            entry["instants"] += 1
        t_lo = start if t_lo is None else min(t_lo, start)
        t_hi = end if t_hi is None else max(t_hi, end)

    other = trace.get("otherData", {})
    ordered = {name: tracks[name] for name in _track_order(tracks)}
    return {
        "span_count": sum(entry["spans"] for entry in tracks.values()),
        "instant_count": sum(
            entry["instants"] for entry in tracks.values()
        ),
        "start_s": t_lo,
        "end_s": t_hi,
        "duration_s": (t_hi - t_lo) if t_lo is not None else None,
        "tracks": ordered,
        "detail": other.get("detail"),
        "clock_s": other.get("clock_s"),
        "truncated": bool(other.get("truncated", False)),
        "metrics": other.get("metrics", {}),
    }


# ----------------------------------------------------------------------
# ASCII rendering


def render_trace(trace: dict, *, width: int = 72) -> str:
    """Render a saved Chrome trace as labeled ASCII lanes.

    One lane per track in the file, spans drawn with cycling digits (the
    same idiom as :func:`repro.pipeline.timeline.render_timeline`), a time
    axis labeled with :func:`~repro.utils.format_time`, and per-lane span
    totals.  Instants are drawn as ``!`` markers on their lane.
    """
    if width < 20:
        raise TelemetryError("width must be at least 20 characters")
    validate_chrome_trace(trace)
    events = trace["traceEvents"]

    names: dict[int, str] = {}
    for event in events:
        if event["ph"] == "M" and event["name"] == "thread_name":
            names[event["tid"]] = str(event.get("args", {}).get("name", ""))

    spans: dict[int, list[tuple[float, float, str]]] = {}
    instants: dict[int, list[float]] = {}
    for event in events:
        if event["ph"] == "X":
            start = event["ts"] / _US
            spans.setdefault(event["tid"], []).append(
                (start, start + event["dur"] / _US, event["name"])
            )
        elif event["ph"] == "i":
            instants.setdefault(event["tid"], []).append(event["ts"] / _US)
    if not spans and not instants:
        raise TelemetryError("trace holds no span or instant events")

    tids = sorted(set(spans) | set(instants))
    t_lo = min(
        [s for lane in spans.values() for s, _, _ in lane]
        + [t for lane in instants.values() for t in lane]
    )
    t_hi = max(
        [e for lane in spans.values() for _, e, _ in lane]
        + [t for lane in instants.values() for t in lane]
    )
    total = t_hi - t_lo
    if total <= 0:
        raise TelemetryError("trace spans no modeled time")
    scale = (width - 1) / total

    label_width = max(
        [len(names.get(tid, f"tid{tid}")) for tid in tids] + [5]
    )

    lines = [
        f"trace: {sum(len(v) for v in spans.values())} spans on "
        f"{len(tids)} lanes over {format_time(total)}"
    ]
    symbols = "0123456789ab"
    for tid in tids:
        cells = [" "] * width
        for index, (start, end, _) in enumerate(
            sorted(spans.get(tid, []))
        ):
            a = int((start - t_lo) * scale)
            b = max(a + 1, int((end - t_lo) * scale))
            mark = symbols[index % len(symbols)]
            for pos in range(a, min(b, width)):
                cells[pos] = mark
        for at in instants.get(tid, []):
            pos = min(int((at - t_lo) * scale), width - 1)
            cells[pos] = "!"
        busy = sum(e - s for s, e, _ in spans.get(tid, []))
        label = names.get(tid, f"tid{tid}").ljust(label_width)
        lines.append(
            f"{label} |{''.join(cells)}| {format_time(busy)}"
        )
    axis = _axis_line(width, total)
    lines.append(" " * label_width + " |" + axis)
    lines.append(
        "digits identify spans per lane; '!' marks instant events"
    )
    other = trace.get("otherData", {})
    if other.get("truncated"):
        lines.append(
            "warning: trace was truncated at the tracer's event cap"
        )
    return "\n".join(lines)


def _axis_line(width: int, total: float) -> str:
    """A ``0 ... total`` ruler labeled with adaptive time units."""
    cells = [" "] * width
    cells[0] = "0"
    right = format_time(total)
    start = max(1, width - len(right))
    for offset, char in enumerate(right[: width - start]):
        cells[start + offset] = char
    mid = format_time(total / 2)
    mid_start = (width - len(mid)) // 2
    if mid_start > 2 and mid_start + len(mid) < start - 1:
        for offset, char in enumerate(mid):
            cells[mid_start + offset] = char
    return "".join(cells)


# ----------------------------------------------------------------------
# Single-request causal rendering


def list_trace_ids(trace: dict) -> list[str]:
    """Trace ids present in a saved document, in first-seen order."""
    validate_chrome_trace(trace)
    seen: dict[str, None] = {}
    for event in trace["traceEvents"]:
        if event["ph"] in ("X", "i"):
            trace_id = event.get("args", {}).get("trace_id")
            if trace_id is not None:
                seen.setdefault(str(trace_id), None)
    return list(seen)


def render_request_trace(trace: dict, trace_id: str) -> str:
    """Render one trace id's causal chain from a saved Chrome trace.

    The text counterpart of the Perfetto flow arrows
    (``repro trace FILE --request <id>``): every span and instant
    stamped with ``trace_id``, in causal (``trace_seq``) order, with the
    lane it ran on, its modeled start and duration, and the event args
    that explain the routing decisions (redirects, retries, hedges).
    """
    validate_chrome_trace(trace)
    names: dict[int, str] = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "thread_name":
            names[event["tid"]] = str(event.get("args", {}).get("name", ""))
    chain: list[tuple] = []
    for event in trace["traceEvents"]:
        if event["ph"] not in ("X", "i"):
            continue
        args = dict(event.get("args", {}))
        if str(args.get("trace_id")) != str(trace_id):
            continue
        seq = args.get("trace_seq", 0)
        start = event["ts"] / _US
        dur = event.get("dur", 0) / _US if event["ph"] == "X" else None
        detail = {
            k: v
            for k, v in args.items()
            if k not in ("trace_id", "trace_seq", "trace_origin",
                         "trace_parent")
        }
        chain.append(
            (seq, start, names.get(event["tid"], f"tid{event['tid']}"),
             event["name"], dur, detail)
        )
    if not chain:
        known = list_trace_ids(trace)
        hint = (
            f"; trace ids present: {', '.join(known[:8])}"
            f"{'...' if len(known) > 8 else ''}"
            if known
            else "; the trace holds no stamped events (was it recorded "
            "with --trace-detail request?)"
        )
        raise TelemetryError(f"no events stamped trace_id={trace_id!r}{hint}")
    chain.sort(key=lambda item: (item[0], item[1]))
    t0 = min(item[1] for item in chain)
    t1 = max(
        item[1] + (item[4] or 0.0) for item in chain
    )
    lane_width = max(len(item[2]) for item in chain)
    name_width = max(len(item[3]) for item in chain)
    lines = [
        f"request {trace_id}: {len(chain)} events over "
        f"{format_time(t1 - t0)}"
    ]
    for seq, start, lane, name, dur, detail in chain:
        when = f"+{format_time(start - t0)}"
        took = format_time(dur) if dur is not None else "instant"
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(detail.items())
        )
        lines.append(
            f"  [{seq:3d}] {when:>10} {lane.ljust(lane_width)} "
            f"{name.ljust(name_width)} {took:>8}"
            + (f"  {extras}" if extras else "")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Text summary


def summarize(tracer: Tracer) -> str:
    """Plain-text per-run summary: lane totals, metrics, percentiles."""
    lines = [
        f"telemetry summary (detail={tracer.detail}, "
        f"clock {format_time(tracer.clock_s)}, "
        f"{len(tracer.spans)} spans, {len(tracer.instants)} instants)"
    ]
    totals = tracer.track_totals()
    if totals:
        name_width = max(len(track) for track in totals)
        for track, seconds in totals.items():
            lines.append(
                f"  {track.ljust(name_width)}  {format_time(seconds)}"
            )
    for name, summary in tracer.metrics.to_dict().items():
        if summary["kind"] == "histogram":
            if summary["count"] == 0:
                # Empty histograms have no percentiles (they export null).
                lines.append(f"  {name}: n=0")
                continue
            lines.append(
                f"  {name}: n={summary['count']} "
                f"mean={format_time(summary['mean'])} "
                f"p50={format_time(summary['p50'])} "
                f"p95={format_time(summary['p95'])} "
                f"p99={format_time(summary['p99'])}"
            )
        else:
            lines.append(f"  {name}: {summary['value']}")
    if tracer.truncated:
        lines.append(
            "  warning: event cap reached; trace is truncated"
        )
    return "\n".join(lines)
