"""Prometheus text-exposition rendering of a :class:`MetricsRegistry`.

``to_prometheus_text`` serializes every instrument in the registry into
the Prometheus text exposition format (version 0.0.4): counters and
gauges as single samples, histograms as cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``.  Metric names are sanitized to the
Prometheus grammar (dots become underscores, a ``repro_`` prefix is
added); the original registry name rides along in the ``# HELP`` line so
``parse_prometheus_text`` can round-trip the exposition back into the
registry's vocabulary — the property tests assert that every instrument
survives the round trip with names, label sets and bucket sums intact.

Floats are rendered with ``repr`` so ``float(repr(x)) == x`` exactly:
the exposition is a lossless snapshot, not an approximation.
"""

from __future__ import annotations

import math
import re

from ..errors import TelemetryError
from .metrics import MetricsRegistry

#: Prefix for every exposed metric family.
PROMETHEUS_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Sanitize a registry metric name into a Prometheus family name."""
    return PROMETHEUS_PREFIX + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, metric in registry.instruments():
        family = prometheus_name(name)
        lines.append(f"# HELP {family} {name}")
        lines.append(f"# TYPE {family} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"{family} {_fmt(metric.value)}")
            continue
        running = 0
        for bound, count in zip(metric.bounds, metric.counts):
            running += count
            lines.append(
                f'{family}_bucket{{le="{_fmt(bound)}"}} {running}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {metric.count}')
        lines.append(f"{family}_sum {_fmt(metric.sum)}")
        lines.append(f"{family}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise TelemetryError(f"unparseable sample value {text!r}") from None


def parse_prometheus_text(text: str) -> dict:
    """Parse an exposition produced by :func:`to_prometheus_text`.

    Returns ``{original_name: summary}`` keyed by the registry names the
    ``# HELP`` lines carry.  Counter/gauge summaries hold ``kind`` and
    ``value``; histogram summaries hold ``kind``, ``count``, ``sum`` and
    ``buckets`` — an ordered ``{le_label: cumulative_count}`` mapping
    including the ``+Inf`` bucket.
    """
    families: dict[str, dict] = {}
    original: dict[str, str] = {}
    kinds: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family, _, help_text = rest.partition(" ")
            original[family] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise TelemetryError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            kinds[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise TelemetryError(f"line {lineno}: unparseable sample {raw!r}")
        sample_name = match.group("name")
        labels = {
            m.group("key"): m.group("val")
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        value = _parse_value(match.group("value"))
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and kinds.get(base) == "histogram":
                family = base
                break
        entry = families.setdefault(family, {})
        if kinds.get(family) == "histogram":
            entry.setdefault("kind", "histogram")
            entry.setdefault("buckets", {})
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    raise TelemetryError(
                        f"line {lineno}: histogram bucket lacks an le label"
                    )
                entry["buckets"][labels["le"]] = int(value)
            elif sample_name.endswith("_sum"):
                entry["sum"] = value
            elif sample_name.endswith("_count"):
                entry["count"] = int(value)
        else:
            entry["kind"] = kinds.get(family)
            entry["value"] = value
    result: dict[str, dict] = {}
    for family, entry in families.items():
        if entry.get("kind") is None:
            raise TelemetryError(f"family {family!r} has samples but no TYPE")
        result[original.get(family, family)] = entry
    return result
