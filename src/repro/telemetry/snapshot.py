"""Live metric streaming: periodic modeled-time registry snapshots.

A :class:`MetricsSnapshotter` watches a :class:`MetricsRegistry` and,
every ``every_s`` *modeled* seconds, appends one JSON line to a
snapshot file and rewrites a Prometheus text-exposition file — so a
long ``repro serve`` or fleet run can be watched while it happens
(``repro top`` tails the JSONL; any Prometheus scraper can read the
exposition).  Workload loops call :meth:`poll` with their modeled
clock; the snapshotter decides when a snapshot is due.

Determinism and kill/resume:

* Snapshots are taken on the modeled clock, never the wall clock, so
  identical runs emit identical snapshot sequences.
* The cadence state (``seq``, ``next_due_s``, last counter values)
  rides ``state_dict()``.  On restore, :meth:`load_state_dict` rewinds
  the JSONL file to the checkpointed sequence number — dropping lines
  the killed run wrote after the checkpoint — so the finished file is
  byte-identical to an uninterrupted run's and strictly monotone in
  modeled time.
"""

from __future__ import annotations

import json
import os

from ..errors import TelemetryError
from .metrics import MetricsRegistry
from .prometheus import to_prometheus_text

#: Schema tag carried by every snapshot JSONL line.
SNAPSHOT_SCHEMA = "repro.metrics.snapshot/v1"


class MetricsSnapshotter:
    """Emit periodic modeled-time snapshots of a metrics registry.

    Args:
        registry: the live registry to snapshot (usually
            ``tracer.metrics``).
        every_s: modeled-seconds cadence between snapshots.
        jsonl_path: append-mode snapshot stream (one JSON object per
            line), or ``None`` to skip.
        prom_path: Prometheus text-exposition file rewritten with the
            latest snapshot, or ``None`` to skip.
        source: workload label stamped into every line
            (``run``/``train``/``serve``/``fleet``/``fullgraph``).
        flight: optional :class:`~repro.telemetry.flight.FlightRecorder`
            fed one ``counter.deltas`` entry per snapshot.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        every_s: float,
        jsonl_path: str | None = None,
        prom_path: str | None = None,
        source: str = "run",
        flight=None,
    ) -> None:
        if every_s <= 0:
            raise TelemetryError("snapshot cadence every_s must be positive")
        self.registry = registry
        self.every_s = float(every_s)
        self.jsonl_path = jsonl_path
        self.prom_path = prom_path
        self.source = source
        self.flight = flight
        self.seq = 0
        self.next_due_s = 0.0
        self.last_taken_s: float | None = None
        self._last_counters: dict[str, float] = {}
        self._truncated = False

    # ------------------------------------------------------------------
    # Streaming

    def poll(self, now_s: float) -> bool:
        """Take a snapshot if one is due at modeled time ``now_s``."""
        if now_s < self.next_due_s:
            return False
        self.take(now_s)
        return True

    def take(self, now_s: float) -> dict:
        """Take one snapshot unconditionally and write the outputs."""
        metrics = self.registry.to_dict()
        counters = {
            name: summary["value"]
            for name, summary in metrics.items()
            if summary["kind"] == "counter"
        }
        deltas = {
            name: value - self._last_counters.get(name, 0)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0)
        }
        line = {
            "schema": SNAPSHOT_SCHEMA,
            "source": self.source,
            "seq": self.seq,
            "modeled_time_s": float(now_s),
            "every_s": self.every_s,
            "metrics": metrics,
            "counter_deltas": deltas,
        }
        if self.jsonl_path is not None:
            mode = "a" if self._truncated or self.seq else "w"
            with open(self.jsonl_path, mode, encoding="utf-8") as handle:
                json.dump(line, handle, sort_keys=True, allow_nan=False)
                handle.write("\n")
        if self.prom_path is not None:
            with open(self.prom_path, "w", encoding="utf-8") as handle:
                handle.write(
                    f"# repro metrics exposition source={self.source} "
                    f"seq={self.seq} modeled_time_s={now_s!r}\n"
                )
                handle.write(to_prometheus_text(self.registry))
        if self.flight is not None:
            self.flight.note_metric_deltas(now_s, deltas)
        self.seq += 1
        self.last_taken_s = float(now_s)
        self._last_counters = counters
        self.next_due_s = float(now_s) + self.every_s
        return line

    # ------------------------------------------------------------------
    # Reporting

    def export_block(self) -> dict:
        """The snapshot part of the export's ``observability`` block."""
        return {
            "every_s": self.every_s,
            "snapshots": self.seq,
            "last_modeled_time_s": self.last_taken_s,
            "jsonl": bool(self.jsonl_path),
            "prometheus": bool(self.prom_path),
        }

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        return {
            "seq": self.seq,
            "next_due_s": self.next_due_s,
            "last_taken_s": self.last_taken_s,
            "last_counters": dict(self._last_counters),
        }

    def load_state_dict(self, state: dict) -> None:
        required = {"seq", "next_due_s", "last_taken_s", "last_counters"}
        if not required.issubset(state):
            raise TelemetryError(
                f"malformed snapshotter state keys: {sorted(state)}"
            )
        self.seq = int(state["seq"])
        self.next_due_s = float(state["next_due_s"])
        last = state["last_taken_s"]
        self.last_taken_s = None if last is None else float(last)
        self._last_counters = dict(state["last_counters"])
        self._rewind_jsonl()

    def _rewind_jsonl(self) -> None:
        """Drop JSONL lines a killed run wrote after this checkpoint.

        Keeping them would replay the post-checkpoint window twice and
        break the stream's modeled-time monotonicity; rewinding makes
        the resumed file byte-identical to an uninterrupted run's.
        """
        self._truncated = False
        if self.jsonl_path is None or not os.path.exists(self.jsonl_path):
            return
        kept: list[str] = []
        with open(self.jsonl_path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    parsed = json.loads(raw)
                except json.JSONDecodeError as err:
                    raise TelemetryError(
                        f"corrupt snapshot line in {self.jsonl_path}: {err}"
                    ) from None
                if int(parsed.get("seq", -1)) < self.seq:
                    kept.append(raw)
        with open(self.jsonl_path, "w", encoding="utf-8") as handle:
            for raw in kept:
                handle.write(raw + "\n")
        self._truncated = True


def read_snapshots(path: str) -> list[dict]:
    """Parse a snapshot JSONL stream, validating every line.

    Raises :class:`~repro.errors.TelemetryError` on an unparseable line
    or a line with the wrong schema tag; used by ``repro top`` and the
    CI smoke job.
    """
    snapshots: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError as err:
                raise TelemetryError(
                    f"{path}:{lineno}: unparseable snapshot line ({err})"
                ) from None
            if parsed.get("schema") != SNAPSHOT_SCHEMA:
                raise TelemetryError(
                    f"{path}:{lineno}: unexpected schema "
                    f"{parsed.get('schema')!r}"
                )
            snapshots.append(parsed)
    return snapshots
