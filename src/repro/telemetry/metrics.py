"""Metrics registry: counters, gauges and log-bucketed histograms.

The registry is the numeric side of the telemetry subsystem: while the
tracer answers *when* things happened, the registry answers *how often* and
*how long in distribution* — the quantities behind the paper's bandwidth
and redirect-fraction figures plus the tail percentiles (p50/p95/p99) that
ad-hoc stage totals cannot express.

Existing accounting objects (:class:`~repro.sim.counters.TransferCounters`,
:class:`~repro.faults.injector.FaultStats`) publish *into* a registry via
their ``publish`` methods without changing their own APIs; publishing adds
the object's current counts into the named counters.
"""

from __future__ import annotations

import math
from bisect import bisect_left

from ..errors import TelemetryError


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def state_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def load_state_dict(self, state: dict) -> None:
        self.value = state["value"]


class Gauge:
    """A point-in-time value that can move in either direction."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise TelemetryError(
                f"gauge {self.name!r} rejects non-finite value {value}"
            )
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def state_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def load_state_dict(self, state: dict) -> None:
        self.value = float(state["value"])


class Histogram:
    """Fixed log-spaced buckets with approximate percentiles.

    Bucket upper bounds are ``lo * 10**(k / buckets_per_decade)`` up to
    ``hi``, plus one overflow bucket — the classic Prometheus-style layout
    that keeps memory constant regardless of sample count while bounding
    percentile error to one bucket width (~33% at the default 8 buckets
    per decade, tight enough to separate p50 from a tail spike).

    Percentile queries return the upper bound of the bucket containing the
    requested rank, clamped to the exactly-tracked observed min/max.

    **Empty-percentile contract:** a histogram with no observations has no
    percentiles — :meth:`percentile` returns ``None`` and :meth:`to_dict`
    exports ``p50``/``p95``/``p99`` as ``None`` (JSON ``null``), matching
    the ``min``/``max`` treatment.  Earlier versions returned ``0.0``,
    which is indistinguishable from a real all-zero distribution and broke
    SLO rules like ``p99 > X`` on never-touched histograms.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        *,
        lo: float = 1e-7,
        hi: float = 100.0,
        buckets_per_decade: int = 8,
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise TelemetryError("histogram bounds require 0 < lo < hi")
        if buckets_per_decade <= 0:
            raise TelemetryError("buckets_per_decade must be positive")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = buckets_per_decade
        n = int(
            math.ceil(math.log10(hi / lo) * buckets_per_decade)
        ) + 1
        self.bounds = [
            lo * 10.0 ** (k / buckets_per_decade) for k in range(n)
        ]
        # counts[i] pairs with bounds[i]; counts[-1] is the overflow bucket.
        self.counts = [0] * (n + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if not math.isfinite(value) or value < 0:
            raise TelemetryError(
                f"histogram {self.name!r} rejects value {value}"
            )
        idx = bisect_left(self.bounds, value)
        self.counts[idx] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, p: float) -> float | None:
        """Approximate ``p``-th percentile (0 < p <= 100) of observations.

        Returns ``None`` when the histogram is empty (see the class
        docstring for the empty-percentile contract).
        """
        if not 0.0 < p <= 100.0:
            raise TelemetryError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return None
        rank = math.ceil(p / 100.0 * self.count)
        running = 0
        for idx, count in enumerate(self.counts):
            running += count
            if running >= rank:
                bound = (
                    self.bounds[idx]
                    if idx < len(self.bounds)
                    else self.max
                )
                return min(max(bound, self.min), self.max)
        raise AssertionError("unreachable: rank exceeds total count")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def load_state_dict(self, state: dict) -> None:
        if (
            state.get("lo") != self.lo
            or state.get("hi") != self.hi
            or state.get("buckets_per_decade") != self.buckets_per_decade
        ):
            raise TelemetryError(
                f"histogram {self.name!r} bucket layout does not match the "
                "checkpoint"
            )
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(self.counts):
            raise TelemetryError(
                f"histogram {self.name!r} bucket count does not match the "
                "checkpoint"
            )
        self.counts = counts
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = float(state["min"])
        self.max = float(state["max"])


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Accessors are idempotent: asking twice for the same name returns the
    same object; asking for an existing name with a different metric kind
    raises :class:`~repro.errors.TelemetryError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, **kwargs), "histogram"
        )

    def instruments(self) -> list[tuple[str, "Counter | Gauge | Histogram"]]:
        """``(name, instrument)`` pairs, sorted by name.

        The exposition renderers need the live objects (bucket bounds,
        raw counts), not the :meth:`to_dict` summaries.
        """
        return [(name, self._metrics[name]) for name in sorted(self._metrics)]

    def to_dict(self) -> dict:
        """JSON-ready ``{name: summary}`` mapping, sorted by name."""
        return {
            name: self._metrics[name].to_dict()
            for name in sorted(self._metrics)
        }

    def state_dict(self) -> dict:
        return {
            name: metric.state_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def load_state_dict(self, state: dict) -> None:
        for name, metric_state in state.items():
            kind = metric_state.get("kind")
            if kind == "counter":
                self.counter(name).load_state_dict(metric_state)
            elif kind == "gauge":
                self.gauge(name).load_state_dict(metric_state)
            elif kind == "histogram":
                self.histogram(
                    name,
                    lo=float(metric_state["lo"]),
                    hi=float(metric_state["hi"]),
                    buckets_per_decade=int(
                        metric_state["buckets_per_decade"]
                    ),
                ).load_state_dict(metric_state)
            else:
                raise TelemetryError(
                    f"unknown metric kind {kind!r} for {name!r}"
                )
