"""Simulator self-profiler: wall-clock cost vs modeled time, per subsystem.

Everything else in the telemetry package measures *modeled* time; this
module is the deliberate exception.  ROADMAP item 4 ("raw speed of the
simulator") needs to know where the simulator itself spends wall-clock
seconds before any vectorization work can be judged — so the profiler
wraps the hot entry points of the analytic models (SSD array, PCIe
link, GPU model, software cache, CPU buffer, samplers) with
``time.perf_counter`` shims and accumulates wall seconds and call
counts per subsystem while any workload runs under it.

The wrapping is done at *class* level, so workloads that construct
their own simulators internally (the ``repro.bench.experiments``
figures, the CLI commands) are profiled without any hooks.  The shims
never touch modeled time: a profiled run's reports, traces and
checkpoints are bit-identical to an unprofiled run's.  Only the
profiler's own output contains wall-clock numbers, which is why it is
never part of a deterministic artifact — it feeds
``BENCH_sim_overhead.json`` instead.
"""

from __future__ import annotations

import time
from functools import wraps

from ..errors import TelemetryError

#: Schema tag written by ``repro profile --json``.
PROFILE_SCHEMA = "repro.sim.profile/v1"


def _default_targets() -> list[tuple[type, str, str]]:
    """``(cls, method, subsystem)`` wrap targets for the stock simulators."""
    from ..cache.cpu_buffer import ConstantCPUBuffer
    from ..cache.gpu_cache import GPUSoftwareCache
    from ..sampling.cluster import ClusterSampler
    from ..sampling.hetero_neighbor import HeteroNeighborSampler
    from ..sampling.ladies import LadiesSampler
    from ..sampling.neighbor import NeighborSampler
    from ..sim.gpu import GPUModel
    from ..sim.pcie import PCIeLink
    from ..sim.ssd import SSDArray
    from ..storage.feature_store import FeatureStore

    targets: list[tuple[type, str, str]] = [
        (SSDArray, "batch_service_time", "ssd"),
        (SSDArray, "sequential_read_time", "ssd"),
        (SSDArray, "sequential_write_time", "ssd"),
        (PCIeLink, "ingress_time", "pcie"),
        (PCIeLink, "transfer_time", "pcie"),
        (GPUModel, "sampling_time", "gpu"),
        (GPUModel, "request_generation_time", "gpu"),
        (GPUModel, "training_time", "gpu"),
        (GPUModel, "hbm_read_time", "gpu"),
        (GPUSoftwareCache, "access", "gpu.cache"),
        (GPUSoftwareCache, "register_future", "gpu.cache"),
        (GPUSoftwareCache, "forget_future", "gpu.cache"),
        (NeighborSampler, "sample", "sampling"),
        (HeteroNeighborSampler, "sample", "sampling"),
        (LadiesSampler, "sample", "sampling"),
        (ClusterSampler, "sample", "sampling"),
    ]
    for attr in ("contains", "lookup", "filter_hits"):
        if hasattr(ConstantCPUBuffer, attr):
            targets.append((ConstantCPUBuffer, attr, "cpu.buffer"))
    for attr in ("pages_for_nodes", "read_pages", "gather"):
        if hasattr(FeatureStore, attr):
            targets.append((FeatureStore, attr, "storage"))
    return targets


class SimProfiler:
    """Accumulates wall-clock seconds per simulator subsystem.

    Use as a context manager around any workload::

        profiler = SimProfiler()
        with profiler:
            result = fig13_e2e_980pro()
        print(profiler.report(modeled_s=...))

    Entering instruments the stock simulator classes (plus any extra
    ``(cls, method, subsystem)`` targets passed to the constructor);
    exiting restores the original methods, so nothing leaks into later
    code.  Re-entering an active profiler raises.
    """

    def __init__(self, extra_targets=None) -> None:
        self.wall_s: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.total_wall_s = 0.0
        self._extra = list(extra_targets or [])
        self._saved: list[tuple[type, str, object]] = []
        self._t0: float | None = None

    # ------------------------------------------------------------------
    # Instrumentation

    def _wrap(self, cls: type, attr: str, subsystem: str) -> None:
        original = getattr(cls, attr)

        @wraps(original)
        def shim(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                dt = time.perf_counter() - t0
                self.wall_s[subsystem] = self.wall_s.get(subsystem, 0.0) + dt
                self.calls[subsystem] = self.calls.get(subsystem, 0) + 1

        setattr(cls, attr, shim)
        self._saved.append((cls, attr, original))

    def __enter__(self) -> "SimProfiler":
        if self._saved:
            raise TelemetryError("profiler is already active")
        for cls, attr, subsystem in _default_targets() + self._extra:
            self._wrap(cls, attr, subsystem)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._t0 is not None:
            self.total_wall_s += time.perf_counter() - self._t0
            self._t0 = None
        for cls, attr, original in reversed(self._saved):
            setattr(cls, attr, original)
        self._saved.clear()
        return False

    # ------------------------------------------------------------------
    # Reporting

    def report(
        self,
        *,
        modeled_s: float | None = None,
        baseline_wall_s: float | None = None,
        workload: str = "",
    ) -> dict:
        """The profile document (``repro profile --json`` payload).

        ``modeled_s`` is the workload's total *modeled* seconds (what the
        simulator computed); ``baseline_wall_s`` is an optional
        uninstrumented wall-clock measurement of the same workload, from
        which the profiler-overhead ratio is derived.
        """
        subsystems = {
            name: {
                "wall_s": self.wall_s[name],
                "calls": self.calls.get(name, 0),
                "wall_fraction": (
                    self.wall_s[name] / self.total_wall_s
                    if self.total_wall_s > 0
                    else 0.0
                ),
            }
            for name in sorted(self.wall_s)
        }
        accounted = sum(self.wall_s.values())
        doc = {
            "schema": PROFILE_SCHEMA,
            "workload": workload,
            "wall_total_s": self.total_wall_s,
            "wall_accounted_s": accounted,
            "wall_other_s": max(0.0, self.total_wall_s - accounted),
            "modeled_total_s": modeled_s,
            "subsystems": subsystems,
        }
        if modeled_s is not None and self.total_wall_s > 0:
            # Simulator "speed": modeled seconds produced per wall second.
            doc["modeled_per_wall"] = modeled_s / self.total_wall_s
        if baseline_wall_s is not None and baseline_wall_s > 0:
            doc["baseline_wall_s"] = baseline_wall_s
            doc["profiling_overhead_ratio"] = (
                self.total_wall_s / baseline_wall_s - 1.0
            )
        return doc


def render_profile(doc: dict) -> str:
    """Human-readable rendering of a :meth:`SimProfiler.report` document."""
    lines = [
        f"simulator self-profile: {doc.get('workload') or '(workload)'}"
    ]
    wall = doc.get("wall_total_s") or 0.0
    modeled = doc.get("modeled_total_s")
    lines.append(f"  wall clock total   {wall * 1e3:10.1f} ms")
    if modeled is not None:
        lines.append(f"  modeled time total {modeled:10.3f} s")
        if doc.get("modeled_per_wall") is not None:
            lines.append(
                f"  speed              {doc['modeled_per_wall']:10.1f} "
                "modeled s / wall s"
            )
    if doc.get("baseline_wall_s") is not None:
        lines.append(
            f"  profiling overhead {doc['profiling_overhead_ratio']:+10.1%} "
            f"vs {doc['baseline_wall_s'] * 1e3:.1f} ms uninstrumented"
        )
    subsystems = doc.get("subsystems", {})
    if subsystems:
        lines.append("  per-subsystem wall clock:")
        width = max(len(name) for name in subsystems)
        for name, entry in sorted(
            subsystems.items(), key=lambda kv: -kv[1]["wall_s"]
        ):
            lines.append(
                f"    {name.ljust(width)}  {entry['wall_s'] * 1e3:8.1f} ms"
                f"  {entry['wall_fraction']:6.1%}"
                f"  {entry['calls']:8d} calls"
            )
        other = doc.get("wall_other_s") or 0.0
        lines.append(
            f"    {'(unattributed)'.ljust(width)}  {other * 1e3:8.1f} ms"
        )
    return "\n".join(lines)
