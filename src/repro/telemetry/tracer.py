"""Modeled-time span tracer.

Every duration this repository reports is *simulated hardware time*, so the
tracer records spans on the modeled clock rather than wall clock: the
instrumented code tells the tracer when (in modeled seconds) an activity
started and how long it took.  Spans live on named *tracks* — one lane per
modeled resource (SSD array, PCIe link, GPU software cache, constant CPU
buffer, window buffer, accumulator, fault machinery) plus one lane per
pipeline stage — which is exactly the lane layout the Chrome-trace exporter
emits.

Design constraints:

* **Zero cost when disabled.**  Every recording entry point returns after a
  single attribute check when ``enabled`` is false; loaders additionally
  keep ``tracer=None`` as the default so untraced runs pay one ``is None``
  test per group.
* **Deterministic.**  The tracer never reads the wall clock; identical runs
  produce byte-identical traces.
* **Checkpointable.**  ``state_dict``/``load_state_dict`` round-trip the
  full recorded state through the PR 2 snapshot path so a killed-and-resumed
  run emits one seamless trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import TelemetryError
from .context import TraceContext, _ActiveContext
from .metrics import MetricsRegistry
from .tracks import STAGE_TRACKS, TRACKS, require_known_track

#: Tracing granularities: ``stage`` records per-iteration stage spans only;
#: ``request`` additionally records per-group resource spans and instant
#: events (cache evictions, window pin/unpin, accumulator re-solves...).
DETAIL_LEVELS = ("stage", "request")


@dataclass(frozen=True)
class Span:
    """One closed interval of modeled time on one track."""

    name: str
    track: str
    start_s: float
    duration_s: float
    args: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "Span":
        return cls(
            name=str(state["name"]),
            track=str(state["track"]),
            start_s=float(state["start_s"]),
            duration_s=float(state["duration_s"]),
            args=dict(state.get("args", {})),
        )


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker event on one track."""

    name: str
    track: str
    at_s: float
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "track": self.track,
            "at_s": self.at_s,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "Instant":
        return cls(
            name=str(state["name"]),
            track=str(state["track"]),
            at_s=float(state["at_s"]),
            args=dict(state.get("args", {})),
        )


class _NullSpan:
    """No-op handle returned by a disabled tracer's :meth:`Tracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def end(self, end_s: float) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context-manager handle for a span whose end is not yet known.

    Child spans recorded while the handle is open extend the parent: on
    exit the span closes at the explicit :meth:`end` time if one was given,
    else at the maximum of its start, the tracer's modeled clock and its
    children's end times — so nested instrumentation composes without the
    outer code re-deriving totals.
    """

    __slots__ = ("_tracer", "_name", "_track", "_start_s", "_args", "_end_s",
                 "_mark")

    def __init__(self, tracer, name, track, start_s, args) -> None:
        self._tracer = tracer
        self._name = name
        self._track = track
        self._start_s = start_s
        self._args = args
        self._end_s: float | None = None
        self._mark = 0

    def end(self, end_s: float) -> None:
        """Close the span explicitly at modeled time ``end_s``."""
        if end_s < self._start_s:
            raise TelemetryError(
                f"span {self._name!r} cannot end at {end_s} before its "
                f"start {self._start_s}"
            )
        self._end_s = float(end_s)

    def __enter__(self) -> "_OpenSpan":
        self._mark = len(self._tracer.spans)
        return self

    def __exit__(self, *exc) -> bool:
        end = self._end_s
        if end is None:
            end = max(self._start_s, self._tracer.clock_s)
            for child in self._tracer.spans[self._mark:]:
                end = max(end, child.end_s)
        self._tracer.record(
            self._name,
            self._track,
            start_s=self._start_s,
            duration_s=end - self._start_s,
            **self._args,
        )
        return False


class Tracer:
    """Collects modeled-time spans, instants and metrics for one run.

    Args:
        enabled: master switch; a disabled tracer records nothing and every
            entry point is a constant-time no-op.
        detail: ``"stage"`` or ``"request"`` (see :data:`DETAIL_LEVELS`).
        max_events: safety cap on recorded spans + instants (CLI:
            ``--trace-cap``).  When reached, further events are dropped,
            :attr:`truncated` is set and every drop increments the
            ``telemetry.dropped_events`` counter — the cap is never
            silent: exports, summaries and the metrics stream surface it.
        strict_tracks: reject spans/instants on tracks not declared in
            :mod:`repro.telemetry.tracks` (the CLI enables this; library
            users may record on ad-hoc lanes with the default ``False``).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        detail: str = "stage",
        max_events: int = 200_000,
        strict_tracks: bool = False,
    ) -> None:
        if detail not in DETAIL_LEVELS:
            raise TelemetryError(
                f"unknown trace detail {detail!r}; expected one of "
                f"{DETAIL_LEVELS}"
            )
        if max_events <= 0:
            raise TelemetryError("max_events must be positive")
        self.enabled = enabled
        self.detail = detail
        self.max_events = max_events
        self.strict_tracks = strict_tracks
        #: Modeled-time cursor components advance instants against.
        self.clock_s = 0.0
        #: Next pipeline-iteration index (used to label stage spans and
        #: checkpointed so resumed traces continue the numbering).
        self.iteration = 0
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.truncated = False
        self.metrics = MetricsRegistry()
        #: Active causal context; events record its trace_id + sequence.
        self._context: TraceContext | None = None
        #: Optional black-box flight recorder fed every recorded event.
        self.flight = None

    # ------------------------------------------------------------------
    # Recording

    @property
    def want_request_detail(self) -> bool:
        """True when per-request/per-resource events should be recorded."""
        return self.enabled and self.detail == "request"

    def _room(self) -> bool:
        if len(self.spans) + len(self.instants) >= self.max_events:
            self.truncated = True
            self.metrics.counter("telemetry.dropped_events").inc()
            return False
        return True

    # ------------------------------------------------------------------
    # Causal contexts / flight recorder

    def context(self, context: TraceContext | None) -> _ActiveContext:
        """Activate ``context`` for the duration of a ``with`` block.

        While active, every recorded span/instant is stamped with the
        context's ``trace_id``/``trace_seq``/``origin`` args, joining it
        to the causal chain the exporter renders as flow events.  Pass
        ``None`` to explicitly suspend stamping inside a block.  Nesting
        restores the previous context on exit.
        """
        return _ActiveContext(self, context)

    @property
    def active_context(self) -> TraceContext | None:
        return self._context

    def _stamp(self, args: dict) -> dict:
        ctx = self._context
        if ctx is None:
            return args
        stamped = dict(args)
        stamped["trace_id"] = ctx.trace_id
        stamped["trace_seq"] = ctx.next_seq()
        stamped["trace_origin"] = ctx.origin
        if ctx.parent is not None:
            stamped["trace_parent"] = ctx.parent
        return stamped

    def attach_flight(self, flight) -> None:
        """Feed every future recorded event into ``flight`` (ring buffer)."""
        self.flight = flight

    def record(
        self,
        name: str,
        track: str,
        *,
        start_s: float,
        duration_s: float,
        **args,
    ) -> None:
        """Record one complete span of modeled time."""
        if not self.enabled:
            return
        if not (math.isfinite(start_s) and math.isfinite(duration_s)):
            raise TelemetryError(
                f"span {name!r} has non-finite time "
                f"(start={start_s}, duration={duration_s})"
            )
        if duration_s < 0:
            raise TelemetryError(
                f"span {name!r} has negative duration {duration_s}"
            )
        if self.strict_tracks:
            require_known_track(track)
        if self._room():
            args = self._stamp(args)
            self.spans.append(
                Span(name, track, float(start_s), float(duration_s), args)
            )
            if self.flight is not None:
                self.flight.note(
                    "span", name, track, float(start_s),
                    {"duration_s": float(duration_s), **args},
                )

    def instant(
        self, name: str, track: str, at_s: float | None = None, **args
    ) -> None:
        """Record a zero-duration marker (defaults to the modeled clock)."""
        if not self.enabled:
            return
        at = self.clock_s if at_s is None else float(at_s)
        if not math.isfinite(at):
            raise TelemetryError(f"instant {name!r} at non-finite time {at}")
        if self.strict_tracks:
            require_known_track(track)
        if self._room():
            args = self._stamp(args)
            self.instants.append(Instant(name, track, at, args))
            if self.flight is not None:
                self.flight.note("instant", name, track, at, args)

    def span(
        self, name: str, track: str, start_s: float | None = None, **args
    ):
        """Open a nestable span as a context manager.

        The span starts at ``start_s`` (default: the modeled clock) and —
        unless closed explicitly via ``handle.end(t)`` — ends at the latest
        of the clock and any child span recorded inside the ``with`` block.
        """
        if not self.enabled:
            return _NULL_SPAN
        start = self.clock_s if start_s is None else float(start_s)
        return _OpenSpan(self, name, track, start, args)

    def advance(self, duration_s: float) -> None:
        """Move the modeled clock forward by ``duration_s``."""
        if duration_s < 0:
            raise TelemetryError("clock can only advance forward")
        self.clock_s += duration_s

    def reset(self) -> None:
        """Drop all recorded events and metrics, keeping the clock.

        Loaders call this at the warmup/measurement boundary so trace
        totals match the measured :class:`~repro.pipeline.metrics.RunReport`
        exactly (the same reset their cache statistics get).
        """
        self.spans.clear()
        self.instants.clear()
        self.truncated = False
        self.iteration = 0
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Aggregation

    def track_totals(self) -> dict[str, float]:
        """Total span seconds per track (canonical tracks first)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.track] = totals.get(span.track, 0.0) + span.duration_s
        ordered = {t: totals.pop(t) for t in TRACKS if t in totals}
        ordered.update(totals)
        return ordered

    def stage_totals(self) -> dict[str, float]:
        """Total span seconds per pipeline stage (``stage.*`` lanes only)."""
        totals = self.track_totals()
        prefix = "stage."
        return {
            track[len(prefix):]: totals.get(track, 0.0)
            for track in STAGE_TRACKS
        }

    def export_block(self) -> dict:
        """The ``telemetry`` block of the run-report JSON export (v4)."""
        return {
            "detail": self.detail,
            "clock_s": self.clock_s,
            "span_count": len(self.spans),
            "instant_count": len(self.instants),
            "truncated": self.truncated,
            "track_seconds": self.track_totals(),
            "metrics": self.metrics.to_dict(),
        }

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot of everything recorded so far (checkpointable).

        When a flight recorder is attached its ring rides along under a
        ``"flight"`` key; tracers without one emit the historical layout
        unchanged, so old checkpoints stay loadable in both directions.
        """
        state = {
            "detail": self.detail,
            "clock_s": self.clock_s,
            "iteration": self.iteration,
            "truncated": self.truncated,
            "spans": [span.to_dict() for span in self.spans],
            "instants": [inst.to_dict() for inst in self.instants],
            "metrics": self.metrics.state_dict(),
        }
        if self.flight is not None:
            state["flight"] = self.flight.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the recording captured by :meth:`state_dict`.

        The detail level must match: a ``request``-detail snapshot resumed
        at ``stage`` detail (or vice versa) would splice two incompatible
        granularities into one file.
        """
        if state.get("detail") != self.detail:
            raise TelemetryError(
                f"checkpoint trace detail {state.get('detail')!r} does not "
                f"match configured {self.detail!r}"
            )
        self.clock_s = float(state["clock_s"])
        self.iteration = int(state["iteration"])
        self.truncated = bool(state["truncated"])
        self.spans = [Span.from_dict(s) for s in state["spans"]]
        self.instants = [Instant.from_dict(i) for i in state["instants"]]
        self.metrics = MetricsRegistry()
        self.metrics.load_state_dict(state["metrics"])
        if self.flight is not None and "flight" in state:
            self.flight.load_state_dict(state["flight"])
