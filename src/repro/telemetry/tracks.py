"""Central registry of tracer track (lane) names.

Every lane the tracer records on is declared here — the four pipeline
stages, one lane per modeled resource, and the event lanes the serving /
fleet / storage-HA / observatory layers add.  Producer modules import
their track constant from this module (or re-export it for backward
compatibility) instead of spelling the string locally, so a misspelled
lane is an import-time error rather than a silently-new Perfetto lane.

``declare_track`` is the single gate: it validates the spelling rules
(lowercase dotted identifiers) and records the name in
:data:`KNOWN_TRACKS`.  A :class:`~repro.telemetry.Tracer` constructed
with ``strict_tracks=True`` additionally rejects any span or instant
recorded on an undeclared lane at runtime.
"""

from __future__ import annotations

import re

from ..errors import TelemetryError

#: Pipeline-stage lanes (prefix ``stage.``) in execution order.
STAGE_TRACKS = (
    "stage.sampling",
    "stage.aggregation",
    "stage.transfer",
    "stage.training",
)

#: Canonical lane order of the Chrome-trace export: the four pipeline
#: stages first, then one lane per modeled resource.  Unknown tracks are
#: appended after these in first-use order.
TRACKS = STAGE_TRACKS + (
    "ssd",
    "pcie",
    "gpu.cache",
    "cpu.buffer",
    "window",
    "accumulator",
    "faults",
)

_TRACK_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

#: Every declared lane name.  Mutated only through :func:`declare_track`.
KNOWN_TRACKS: set[str] = set()


def declare_track(name: str) -> str:
    """Validate and register a track name; returns it for assignment.

    Raises :class:`~repro.errors.TelemetryError` when the name is not a
    lowercase dotted identifier — catching typos at module import time,
    where the declaration lives, instead of deep inside a run.
    """
    if not isinstance(name, str) or not _TRACK_RE.match(name):
        raise TelemetryError(
            f"invalid track name {name!r}: tracks are lowercase dotted "
            "identifiers like 'storage.ha'"
        )
    KNOWN_TRACKS.add(name)
    return name


def is_known_track(name: str) -> bool:
    """True when ``name`` was declared via :func:`declare_track`."""
    return name in KNOWN_TRACKS


def require_known_track(name: str) -> str:
    """Assert ``name`` is a declared lane (strict tracers call this)."""
    if name not in KNOWN_TRACKS:
        raise TelemetryError(
            f"undeclared track {name!r}; declare it in "
            "repro.telemetry.tracks (known: "
            f"{', '.join(sorted(KNOWN_TRACKS))})"
        )
    return name


for _name in TRACKS:
    declare_track(_name)

# ----------------------------------------------------------------------
# Event lanes added by the higher layers.  The owning modules re-export
# these constants so existing imports keep working; the strings live
# only here.

#: SLO alert instants (``slo.<rule>``) and brownout level changes.
ALERTS_TRACK = declare_track("alerts")

#: Per-request serving spans.
SERVING_TRACK = declare_track("serving")

#: Per-device circuit-breaker transitions.
BREAKERS_TRACK = declare_track("serving.breakers")

#: Storage high-availability: health transitions, rebuild sweeps,
#: degraded-read accounting.
HA_TRACK = declare_track("storage.ha")

#: Fleet-level events (failures, stragglers, recovery decisions).
FLEET_EVENTS_TRACK = declare_track("fleet.events")

#: Fleet gradient all-reduce spans.  Per-worker lanes (``fleet.gpu0``,
#: ``fleet.gpu1``, ...) are declared dynamically by the fleet trainer.
FLEET_ALLREDUCE_TRACK = declare_track("fleet.allreduce")

#: Per-step full-graph sweep spans.
FULLGRAPH_TRACK = declare_track("fullgraph")

#: Scrubber / digest-verification instants.
INTEGRITY_TRACK = declare_track("integrity")
