"""Causal trace contexts: one trace id per request / step, propagated.

A :class:`TraceContext` is minted at a causal root — one served
inference request, one fleet step, one full-graph sweep step, one
training-pipeline group — and *activated* on the tracer for the duration
of that unit of work.  While a context is active, every span and instant
the tracer records is stamped with the context's ``trace_id`` and a
monotonically increasing ``trace_seq``, so the instrumentation already
sitting inside the cache tiers, storage-HA router, fault retries and
hedged reads joins the causal chain without any signature changes.

The exporter turns the stamped spans into Chrome-trace *flow events*
(``ph`` ``"s"``/``"t"``/``"f"``) that Perfetto draws as arrows between
lanes, and ``repro trace --request <id>`` renders one trace id's chain
as text.

Trace ids are deterministic — derived from the workload's own indices
(``req-000042``, ``step-000007``) — never from wall clock or randomness,
so identical runs stamp identical ids and a killed-and-resumed run
continues the numbering seamlessly.
"""

from __future__ import annotations

from ..errors import TelemetryError


class TraceContext:
    """Identity and event ordering for one causal unit of work.

    Args:
        trace_id: deterministic identifier, e.g. ``req-000042``.
        origin: which workload minted it (``serve``, ``run``, ``fleet``,
            ``fullgraph``); exported with every stamped event.
        parent: optional enclosing trace id (a retry minted under a
            request, a step under an epoch).
    """

    __slots__ = ("trace_id", "origin", "parent", "_seq")

    def __init__(
        self, trace_id: str, *, origin: str = "run", parent: str | None = None
    ) -> None:
        if not trace_id or not isinstance(trace_id, str):
            raise TelemetryError(
                f"trace_id must be a non-empty string, got {trace_id!r}"
            )
        self.trace_id = trace_id
        self.origin = origin
        self.parent = parent
        self._seq = 0

    def next_seq(self) -> int:
        """The next event's position in this trace's causal order."""
        seq = self._seq
        self._seq += 1
        return seq

    @property
    def events_stamped(self) -> int:
        return self._seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id!r}, origin={self.origin!r}, "
            f"events={self._seq})"
        )


def request_trace_id(index: int) -> str:
    """Canonical trace id for served request ``index``."""
    return f"req-{index:06d}"


def step_trace_id(kind: str, index: int) -> str:
    """Canonical trace id for step ``index`` of a stepped workload."""
    return f"{kind}-{index:06d}"


class _ActiveContext:
    """Context manager activating a :class:`TraceContext` on a tracer."""

    __slots__ = ("_tracer", "_context", "_previous")

    def __init__(self, tracer, context: TraceContext | None) -> None:
        self._tracer = tracer
        self._context = context
        self._previous = None

    def __enter__(self) -> TraceContext | None:
        self._previous = self._tracer._context
        self._tracer._context = self._context
        return self._context

    def __exit__(self, *exc) -> bool:
        self._tracer._context = self._previous
        return False
