"""Telemetry subsystem: modeled-time tracing, metrics, trace export.

The recording pieces (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` / :class:`Span` — a modeled-time span tracer with one
  lane per modeled resource and per pipeline stage, zero-cost when
  disabled, checkpointable for seamless resumed traces;
* :class:`TraceContext` — causal identity minted per serving request /
  fleet step / sweep step, stamped onto every event recorded while
  active and exported as Chrome-trace flow events;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (fixed log-spaced buckets, p50/p95/p99);
* the track-name registry (:func:`declare_track`, :data:`KNOWN_TRACKS`)
  every lane name is declared in.

The streaming/forensics pieces:

* :class:`MetricsSnapshotter` — periodic modeled-time registry
  snapshots to JSONL + Prometheus text exposition (``repro top``);
* :class:`FlightRecorder` — bounded ring of recent events dumped as
  ``blackbox.json`` on crash / SLO breach / invariant violation;
* :class:`SimProfiler` — wall-clock-vs-modeled-time self-profiler
  behind ``repro profile`` (the one deliberate wall-clock consumer).

And the exporters — Chrome trace-event JSON (``chrome://tracing`` /
Perfetto) with causal flow events, an ASCII lane renderer for
``python -m repro trace``, a single-request causal renderer
(``--request``), and a plain-text per-run summary.
"""

from .context import TraceContext, request_trace_id, step_trace_id
from .flight import BLACKBOX_SCHEMA, FlightRecorder
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prometheus import (
    parse_prometheus_text,
    prometheus_name,
    to_prometheus_text,
)
from .profiler import PROFILE_SCHEMA, SimProfiler, render_profile
from .snapshot import SNAPSHOT_SCHEMA, MetricsSnapshotter, read_snapshots
from .tracer import DETAIL_LEVELS, Instant, Span, Tracer
from .tracks import (
    ALERTS_TRACK,
    BREAKERS_TRACK,
    FLEET_EVENTS_TRACK,
    FULLGRAPH_TRACK,
    HA_TRACK,
    INTEGRITY_TRACK,
    KNOWN_TRACKS,
    SERVING_TRACK,
    STAGE_TRACKS,
    TRACKS,
    declare_track,
    is_known_track,
    require_known_track,
)
from .export import (
    list_trace_ids,
    render_request_trace,
    render_trace,
    summarize,
    summarize_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "ALERTS_TRACK",
    "BLACKBOX_SCHEMA",
    "BREAKERS_TRACK",
    "Counter",
    "DETAIL_LEVELS",
    "FLEET_EVENTS_TRACK",
    "FULLGRAPH_TRACK",
    "FlightRecorder",
    "Gauge",
    "HA_TRACK",
    "Histogram",
    "INTEGRITY_TRACK",
    "Instant",
    "KNOWN_TRACKS",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "PROFILE_SCHEMA",
    "SERVING_TRACK",
    "SNAPSHOT_SCHEMA",
    "STAGE_TRACKS",
    "SimProfiler",
    "Span",
    "TRACKS",
    "TraceContext",
    "Tracer",
    "declare_track",
    "is_known_track",
    "list_trace_ids",
    "parse_prometheus_text",
    "prometheus_name",
    "read_snapshots",
    "render_profile",
    "render_request_trace",
    "render_trace",
    "request_trace_id",
    "require_known_track",
    "step_trace_id",
    "summarize",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
