"""Telemetry subsystem: modeled-time tracing, metrics, trace export.

Three pieces (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` / :class:`Span` — a modeled-time span tracer with one
  lane per modeled resource and per pipeline stage, zero-cost when
  disabled, checkpointable for seamless resumed traces;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (fixed log-spaced buckets, p50/p95/p99);
* exporters — Chrome trace-event JSON (``chrome://tracing`` / Perfetto),
  an ASCII lane renderer for ``python -m repro trace``, and a plain-text
  per-run summary.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import DETAIL_LEVELS, STAGE_TRACKS, TRACKS, Instant, Span, Tracer
from .export import (
    render_trace,
    summarize,
    summarize_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DETAIL_LEVELS",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "STAGE_TRACKS",
    "Span",
    "TRACKS",
    "Tracer",
    "render_trace",
    "summarize",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
