"""Feature storage substrate.

The feature table of a large graph lives on (simulated) NVMe storage as an
``N x D`` matrix laid out in fixed-size pages (Section 2.1: features are
512 B - 4 KB per node; storage serves 4 KB pages).  :class:`PageLayout` maps
node ids to page ids; :class:`FeatureStore` additionally produces feature
*values* (deterministic synthetic vectors or user-provided data) for the
functional training path.
"""

from .layout import PageLayout
from .feature_store import FeatureStore

__all__ = ["PageLayout", "FeatureStore"]
