"""Node-to-page mapping for a paged feature table.

Storage devices transfer whole pages (4 KB cache lines in BaM), so the unit
of storage traffic is the page, not the node.  Depending on the feature
dimension a page holds several node vectors (dim 128 -> 8 nodes/page) or a
node spans several pages (dim 2048 -> 2 pages/node); both directions of
I/O amplification are modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PAGE_BYTES
from ..errors import ConfigError
from ..utils import ceil_div


@dataclass(frozen=True)
class PageLayout:
    """Maps node ids to the storage pages holding their feature vectors.

    Nodes are packed densely in id order: node ``i`` occupies bytes
    ``[i * feature_bytes, (i + 1) * feature_bytes)`` of the table.
    """

    num_nodes: int
    feature_bytes: int
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.feature_bytes <= 0:
            raise ConfigError("feature_bytes must be positive")
        if self.page_bytes <= 0:
            raise ConfigError("page_bytes must be positive")

    @property
    def pages_per_node(self) -> int:
        """Pages a single node's feature vector spans (>= 1)."""
        return max(1, ceil_div(self.feature_bytes, self.page_bytes))

    @property
    def nodes_per_page(self) -> int:
        """Whole node vectors that fit in one page (>= 1)."""
        return max(1, self.page_bytes // self.feature_bytes)

    @property
    def total_pages(self) -> int:
        """Pages occupied by the whole feature table."""
        return ceil_div(self.num_nodes * self.feature_bytes, self.page_bytes)

    def pages_for_nodes(self, node_ids: np.ndarray) -> np.ndarray:
        """Unique page ids needed to read the given nodes' features.

        Args:
            node_ids: node ids (need not be unique or sorted).

        Returns:
            Sorted unique int64 page ids.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) == 0:
            return node_ids
        if node_ids.min() < 0 or node_ids.max() >= self.num_nodes:
            raise ConfigError(
                f"node ids must lie in [0, {self.num_nodes})"
            )
        if (
            self.feature_bytes <= self.page_bytes
            and self.page_bytes % self.feature_bytes == 0
        ):
            # Aligned fast path: a page holds a whole number of vectors.
            per_page = self.page_bytes // self.feature_bytes
            return np.unique(node_ids // per_page)
        # General byte-range mapping: a vector may straddle a page boundary
        # (e.g. 3072 B features on 4 KB pages) or span several pages.
        start = node_ids * self.feature_bytes
        first = start // self.page_bytes
        last = (start + self.feature_bytes - 1) // self.page_bytes
        max_span = int((last - first).max()) + 1
        offsets = np.arange(max_span, dtype=np.int64)
        candidates = first[:, None] + offsets[None, :]
        valid = candidates <= last[:, None]
        return np.unique(candidates[valid])

    def first_page_of(self, node_ids: np.ndarray) -> np.ndarray:
        """First page of each node (per-node, not deduplicated)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if self.feature_bytes <= self.page_bytes:
            return node_ids // (self.page_bytes // self.feature_bytes)
        return node_ids * self.feature_bytes // self.page_bytes
