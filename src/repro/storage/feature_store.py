"""Feature table with on-demand value generation.

At the paper's scale the feature table is hundreds of gigabytes, so even our
scaled replicas are too large to materialize eagerly.  The store therefore
supports two modes:

* *synthetic* (default) — feature vectors are produced on demand by a
  vectorized splitmix64 hash of ``(node id, column)``, giving deterministic,
  well-distributed float32 values in ``[-1, 1)`` with zero resident memory.
* *materialized* — a user-supplied ``N x D`` array (used by the functional
  training examples and tests on small graphs).

Either way the store is the ground truth that every access tier (GPU cache,
CPU buffer, storage) conceptually reads from, so loaders can fetch values
for the model while the simulation substrate accounts for the bytes moved.
"""

from __future__ import annotations

import numpy as np

from ..config import PAGE_BYTES
from ..errors import StorageError
from .layout import PageLayout

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 input."""
    x = (x + _SPLITMIX_GAMMA).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return x


class FeatureStore:
    """The node feature table backing a dataset.

    Args:
        num_nodes: node count of the graph.
        feature_dim: feature vector dimension.
        data: optional materialized ``(num_nodes, feature_dim)`` float32
            array; when omitted, values are generated deterministically.
        page_bytes: storage transfer granularity.
        seed: salt mixed into synthetic feature generation.
    """

    def __init__(
        self,
        num_nodes: int,
        feature_dim: int,
        *,
        data: np.ndarray | None = None,
        page_bytes: int = PAGE_BYTES,
        seed: int = 0,
    ) -> None:
        if num_nodes <= 0:
            raise StorageError("num_nodes must be positive")
        if feature_dim <= 0:
            raise StorageError("feature_dim must be positive")
        if data is not None:
            data = np.asarray(data, dtype=np.float32)
            if data.shape != (num_nodes, feature_dim):
                raise StorageError(
                    f"data must have shape ({num_nodes}, {feature_dim}), "
                    f"got {data.shape}"
                )
        self.num_nodes = num_nodes
        self.feature_dim = feature_dim
        self._data = data
        self._seed = np.uint64(seed)
        self.layout = PageLayout(
            num_nodes=num_nodes,
            feature_bytes=feature_dim * 4,
            page_bytes=page_bytes,
        )

    @property
    def feature_bytes(self) -> int:
        """Bytes per node feature vector."""
        return self.feature_dim * 4

    @property
    def total_bytes(self) -> int:
        """Bytes of the whole (conceptual) feature table."""
        return self.num_nodes * self.feature_bytes

    @property
    def is_materialized(self) -> bool:
        return self._data is not None

    def fetch(self, node_ids: np.ndarray) -> np.ndarray:
        """Return the float32 feature matrix for ``node_ids`` (in order)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) and (
            node_ids.min() < 0 or node_ids.max() >= self.num_nodes
        ):
            raise StorageError(
                f"node ids must lie in [0, {self.num_nodes})"
            )
        if self._data is not None:
            return self._data[node_ids]
        return self._synthetic(node_ids)

    def page_payload(self, page_id: int) -> np.ndarray:
        """Ground-truth bytes of one storage page (``uint8[page_bytes]``).

        Pages pack node vectors densely in id order, so page ``p`` covers
        bytes ``[p * page_bytes, (p + 1) * page_bytes)`` of the conceptual
        table.  Synthetic pages re-derive their bytes from the splitmix64
        generator; materialized pages view the array slice.  The final page
        is zero-padded past the end of the table, so every page digest is
        defined over exactly ``page_bytes`` bytes.
        """
        page_id = int(page_id)
        layout = self.layout
        if page_id < 0 or page_id >= layout.total_pages:
            raise StorageError(
                f"page id must lie in [0, {layout.total_pages}), got {page_id}"
            )
        page_bytes = layout.page_bytes
        feature_bytes = self.feature_bytes
        start_byte = page_id * page_bytes
        end_byte = start_byte + page_bytes
        first_node = start_byte // feature_bytes
        last_node = min(self.num_nodes - 1, (end_byte - 1) // feature_bytes)
        nodes = np.arange(first_node, last_node + 1, dtype=np.int64)
        flat = self.fetch(nodes).reshape(-1).view(np.uint8)
        offset = start_byte - first_node * feature_bytes
        chunk = flat[offset:offset + page_bytes]
        if len(chunk) < page_bytes:
            padded = np.zeros(page_bytes, dtype=np.uint8)
            padded[: len(chunk)] = chunk
            return padded
        return chunk.copy()

    def _synthetic(self, node_ids: np.ndarray) -> np.ndarray:
        """Deterministic hash-derived features in [-1, 1)."""
        if len(node_ids) == 0:
            return np.empty((0, self.feature_dim), dtype=np.float32)
        cols = np.arange(self.feature_dim, dtype=np.uint64)[None, :]
        base = node_ids.astype(np.uint64)[:, None] * np.uint64(
            self.feature_dim
        )
        mixed = _splitmix64(base + cols + self._seed)
        # Top 24 bits -> uniform float32 in [0, 1), then center on zero.
        unit = (mixed >> np.uint64(40)).astype(np.float32) / np.float32(
            1 << 24
        )
        return (unit * 2.0 - 1.0).astype(np.float32)
