"""Data-parallel multi-GPU training over a shared SSD array (extension).

The paper evaluates a single GPU and notes that multi-GPU scaling "requires
significant additional hardware resources" (Section 5).  This extension
quantifies why with the same device models: ``k`` GPUs each run their own
GIDS dataloader over a disjoint shard of the training seeds, but all GPU
storage traffic contends for one SSD array, so each GPU's achievable IOPS
is the device peak divided by the number of concurrently aggregating GPUs.
Per-GPU PCIe links and GPU caches are private; the constant CPU buffer is
shared read-only (DRAM bandwidth far exceeds what the redirects draw).

Scaling is near-linear while the SSD array has headroom and saturates once
it doesn't — which is the economic argument for GIDS's single-GPU design
point (add SSDs, not GPUs, when data preparation is the bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..config import LoaderConfig, SSDSpec, SystemConfig
from ..errors import ConfigError
from ..graph.datasets import ScaledDataset
from ..pipeline.metrics import RunReport
from .gids import GIDSDataLoader


def shard_train_ids(
    train_ids: np.ndarray, num_shards: int, *, seed: int = 0
) -> list[np.ndarray]:
    """Split labeled nodes into ``num_shards`` disjoint, balanced shards."""
    if num_shards <= 0:
        raise ConfigError("num_shards must be positive")
    train_ids = np.asarray(train_ids, dtype=np.int64)
    if len(train_ids) < num_shards:
        raise ConfigError("fewer labeled nodes than shards")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(train_ids))
    return [
        np.sort(train_ids[order[s::num_shards]]) for s in range(num_shards)
    ]


def contended_ssd(spec: SSDSpec, num_gpus: int) -> SSDSpec:
    """The SSD as seen by one of ``num_gpus`` concurrently reading GPUs.

    Fair sharing of the device's command throughput: each GPU observes
    ``peak / num_gpus`` IOPS at unchanged latency.  This is the worst case
    (all GPUs aggregating at once), which data-parallel training with
    synchronized steps approximates well.
    """
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    return SSDSpec(
        name=f"{spec.name} (shared by {num_gpus} GPUs)",
        read_latency_s=spec.read_latency_s,
        peak_iops=spec.peak_iops / num_gpus,
        page_bytes=spec.page_bytes,
    )


@dataclass(frozen=True)
class MultiGPUResult:
    """Epoch-level outcome of a data-parallel run."""

    num_gpus: int
    per_gpu_reports: tuple[RunReport, ...]
    iterations_per_gpu: int

    @property
    def epoch_time(self) -> float:
        """Synchronized data-parallel epoch time: the slowest GPU's time."""
        return max(r.e2e_time for r in self.per_gpu_reports)

    @property
    def total_iterations(self) -> int:
        return self.iterations_per_gpu * self.num_gpus

    @property
    def throughput(self) -> float:
        """Mini-batches per second across the fleet."""
        return self.total_iterations / self.epoch_time


class MultiGPUTrainer:
    """Runs ``num_gpus`` GIDS dataloaders over sharded seeds.

    Args:
        dataset: the shared graph dataset.
        system: single-GPU system configuration; the SSD array is shared
            across GPUs and its per-GPU share is derived internally.
        config: GIDS configuration, applied per GPU (each GPU has its own
            cache of the configured size, as it would in hardware).
        num_gpus: data-parallel width.
        loader_kwargs: forwarded to every :class:`GIDSDataLoader`.
    """

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        config: LoaderConfig | None = None,
        *,
        num_gpus: int = 2,
        seed: int = 0,
        **loader_kwargs,
    ) -> None:
        if num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        self.num_gpus = num_gpus
        shards = shard_train_ids(dataset.train_ids, num_gpus, seed=seed)
        shared = system.with_ssd(contended_ssd(system.ssd, num_gpus))
        self.loaders = []
        for gpu_index, shard in enumerate(shards):
            shard_dataset = dc_replace(dataset, train_ids=shard)
            self.loaders.append(
                GIDSDataLoader(
                    shard_dataset,
                    shared,
                    config,
                    seed=seed + gpu_index,
                    **loader_kwargs,
                )
            )

    def run(
        self, iterations_per_gpu: int, *, warmup: int = 10
    ) -> MultiGPUResult:
        """Run every GPU's loader for ``iterations_per_gpu`` iterations."""
        if iterations_per_gpu <= 0:
            raise ConfigError("iterations_per_gpu must be positive")
        reports = tuple(
            loader.run(iterations_per_gpu, warmup=warmup)
            for loader in self.loaders
        )
        return MultiGPUResult(
            num_gpus=self.num_gpus,
            per_gpu_reports=reports,
            iterations_per_gpu=iterations_per_gpu,
        )


def scaling_study(
    dataset: ScaledDataset,
    system: SystemConfig,
    config: LoaderConfig | None = None,
    *,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
    iterations_per_gpu: int = 20,
    seed: int = 0,
    **loader_kwargs,
) -> dict[int, MultiGPUResult]:
    """Throughput of the fleet at several data-parallel widths."""
    results = {}
    for num_gpus in gpu_counts:
        trainer = MultiGPUTrainer(
            dataset, system, config, num_gpus=num_gpus, seed=seed,
            **loader_kwargs,
        )
        results[num_gpus] = trainer.run(iterations_per_gpu)
    return results
