"""Data-parallel multi-GPU training over a shared SSD array (extension).

The paper evaluates a single GPU and notes that multi-GPU scaling "requires
significant additional hardware resources" (Section 5).  This extension
quantifies why with the same device models: ``k`` GPUs each run their own
GIDS dataloader over a disjoint shard of the training seeds, but all GPU
storage traffic contends for one SSD array, so each GPU's achievable IOPS
is the device peak divided by the number of concurrently aggregating GPUs.
Per-GPU PCIe links and GPU caches are private; the constant CPU buffer is
shared read-only (DRAM bandwidth far exceeds what the redirects draw).

Scaling is near-linear while the SSD array has headroom and saturates once
it doesn't — which is the economic argument for GIDS's single-GPU design
point (add SSDs, not GPUs, when data preparation is the bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..config import LoaderConfig, SSDSpec, SystemConfig
from ..errors import ConfigError
from ..graph.datasets import ScaledDataset
from ..pipeline.metrics import RunReport
from .gids import GIDSDataLoader


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a high-quality stateless 64-bit mix."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
        0xFFFFFFFFFFFFFFFF
    )
    return x ^ (x >> np.uint64(31))


def _rendezvous_weights(
    train_ids: np.ndarray, num_shards: int, seed: int
) -> np.ndarray:
    """Highest-random-weight matrix: ``weights[i, s]`` for id ``i``, shard ``s``.

    Each entry is a pure hash of ``(seed, id, shard)`` — independent of
    ``num_shards`` — so adding a shard adds a *column* without perturbing
    any existing entry.  That is the property consistent (rendezvous)
    hashing is built on.
    """
    ids = _splitmix64(
        train_ids.astype(np.uint64) ^ np.uint64(seed * 0x9E3779B9 + 1)
    )
    shards = _splitmix64(
        np.arange(num_shards, dtype=np.uint64) + np.uint64(seed) * np.uint64(7919)
    )
    return _splitmix64(ids[:, None] ^ shards[None, :])


def shard_train_ids(
    train_ids: np.ndarray, num_shards: int, *, seed: int = 0
) -> list[np.ndarray]:
    """Split labeled nodes into ``num_shards`` disjoint, balanced shards.

    Assignment is rendezvous (highest-random-weight) hashing followed by a
    deterministic largest-remainder rebalance, which gives two documented
    properties:

    * **Balance** — shard sizes differ by at most one, exactly: with
      ``n = q * num_shards + r`` ids, ``r`` shards hold ``q + 1`` ids and
      the rest hold ``q``.
    * **Growth stability** — each id's shard preference is a pure hash of
      ``(seed, id, shard)``, independent of ``num_shards``; growing the
      fleet from ``k`` to ``k + 1`` shards therefore reassigns only
      ``O(n / k)`` ids (those whose best shard becomes the new one, plus
      rebalance spill), instead of the ``O(n)`` reshuffle a strided or
      modular split suffers.  An elastic fleet that scales out keeps most
      of every worker's cache warm.

    The old strided split satisfied balance only incidentally and moved
    almost every id on any ``num_shards`` change.
    """
    if num_shards <= 0:
        raise ConfigError("num_shards must be positive")
    train_ids = np.asarray(train_ids, dtype=np.int64)
    if len(train_ids) != len(np.unique(train_ids)):
        raise ConfigError("train ids must be unique")
    if len(train_ids) < num_shards:
        raise ConfigError("fewer labeled nodes than shards")

    n = len(train_ids)
    weights = _rendezvous_weights(train_ids, num_shards, seed)
    assignment = np.argmax(weights, axis=1)

    # Largest-remainder capacities: every shard gets n // k, and the r
    # shards with the largest natural population absorb the remainder —
    # deterministic (ties broken by shard index) and minimizing moves.
    base, remainder = divmod(n, num_shards)
    sizes = np.bincount(assignment, minlength=num_shards)
    order = np.lexsort((np.arange(num_shards), -sizes))
    capacity = np.full(num_shards, base, dtype=np.int64)
    capacity[order[:remainder]] += 1

    # Overfull shards evict their weakest members (smallest rendezvous
    # weight for that shard); evicted ids re-home to their best shard with
    # room.  Everything is sorted, so the result is reproducible.
    evicted: list[int] = []
    for s in range(num_shards):
        members = np.flatnonzero(assignment == s)
        excess = len(members) - capacity[s]
        if excess > 0:
            member_weights = weights[members, s]
            weakest = members[np.argsort(member_weights, kind="stable")][:excess]
            assignment[weakest] = -1
            evicted.extend(int(i) for i in weakest)

    if evicted:
        room = capacity - np.bincount(
            assignment[assignment >= 0], minlength=num_shards
        )
        for i in sorted(evicted):
            open_shards = np.flatnonzero(room > 0)
            best = open_shards[np.argmax(weights[i, open_shards])]
            assignment[i] = best
            room[best] -= 1

    return [
        np.sort(train_ids[assignment == s]) for s in range(num_shards)
    ]


def partition_shards(
    dataset: ScaledDataset,
    num_shards: int,
    *,
    seed: int = 0,
    refine_passes: int = 2,
) -> list[np.ndarray]:
    """Partition-aware seed sharding: co-locate neighboring seeds.

    The graph is partitioned with :func:`~repro.graph.partition.partition_graph`
    (seeded-BFS growth + boundary refinement) and each training seed goes
    to the shard of its partition, so the seeds a GPU trains share
    neighborhoods — which is exactly what makes its private cache and the
    peer-cache tier effective (LSM-GNN's locality argument).  A final
    largest-remainder rebalance moves boundary seeds (deterministically,
    lowest ids first) so shard sizes still differ by at most one.
    """
    if num_shards <= 0:
        raise ConfigError("num_shards must be positive")
    train_ids = np.asarray(dataset.train_ids, dtype=np.int64)
    if len(train_ids) < num_shards:
        raise ConfigError("fewer labeled nodes than shards")
    if num_shards == 1:
        return [np.sort(train_ids)]
    # Local import: graph.partition pulls in CSR machinery the plain
    # hash-sharding path never needs.
    from ..graph.partition import partition_graph

    result = partition_graph(
        dataset.graph,
        num_shards,
        refine_passes=refine_passes,
        seed=seed,
    )
    assignment = result.parts[train_ids].copy()

    n = len(train_ids)
    base, remainder = divmod(n, num_shards)
    sizes = np.bincount(assignment, minlength=num_shards)
    order = np.lexsort((np.arange(num_shards), -sizes))
    capacity = np.full(num_shards, base, dtype=np.int64)
    capacity[order[:remainder]] += 1

    overflow: list[int] = []
    for s in range(num_shards):
        members = np.flatnonzero(assignment == s)
        excess = len(members) - capacity[s]
        if excess > 0:
            # Shed the highest ids: deterministic, and BFS growth assigns
            # ids in locality order so low ids are the partition core.
            shed = np.sort(members)[-excess:]
            assignment[shed] = -1
            overflow.extend(int(i) for i in shed)
    if overflow:
        room = capacity - np.bincount(
            assignment[assignment >= 0], minlength=num_shards
        )
        open_shards = [s for s in range(num_shards) for _ in range(room[s])]
        for i, s in zip(sorted(overflow), open_shards):
            assignment[i] = s

    return [
        np.sort(train_ids[assignment == s]) for s in range(num_shards)
    ]


def contended_ssd(spec: SSDSpec, num_gpus: int) -> SSDSpec:
    """The SSD as seen by one of ``num_gpus`` concurrently reading GPUs.

    Fair sharing of the device's command throughput: each GPU observes
    ``peak / num_gpus`` IOPS at unchanged latency.  This is the worst case
    (all GPUs aggregating at once), which data-parallel training with
    synchronized steps approximates well.
    """
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    return SSDSpec(
        name=f"{spec.name} (shared by {num_gpus} GPUs)",
        read_latency_s=spec.read_latency_s,
        peak_iops=spec.peak_iops / num_gpus,
        page_bytes=spec.page_bytes,
    )


@dataclass(frozen=True)
class MultiGPUResult:
    """Epoch-level outcome of a data-parallel run."""

    num_gpus: int
    per_gpu_reports: tuple[RunReport, ...]
    iterations_per_gpu: int

    @property
    def epoch_time(self) -> float:
        """Synchronized data-parallel epoch time: the slowest GPU's time."""
        return max(r.e2e_time for r in self.per_gpu_reports)

    @property
    def total_iterations(self) -> int:
        return self.iterations_per_gpu * self.num_gpus

    @property
    def throughput(self) -> float:
        """Mini-batches per second across the fleet."""
        return self.total_iterations / self.epoch_time


class MultiGPUTrainer:
    """Runs ``num_gpus`` GIDS dataloaders over sharded seeds.

    Args:
        dataset: the shared graph dataset.
        system: single-GPU system configuration; the SSD array is shared
            across GPUs and its per-GPU share is derived internally.
        config: GIDS configuration, applied per GPU (each GPU has its own
            cache of the configured size, as it would in hardware).
        num_gpus: data-parallel width.
        loader_kwargs: forwarded to every :class:`GIDSDataLoader`.
    """

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        config: LoaderConfig | None = None,
        *,
        num_gpus: int = 2,
        seed: int = 0,
        **loader_kwargs,
    ) -> None:
        if num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        self.num_gpus = num_gpus
        shards = shard_train_ids(dataset.train_ids, num_gpus, seed=seed)
        shared = system.with_ssd(contended_ssd(system.ssd, num_gpus))
        self.loaders = []
        for gpu_index, shard in enumerate(shards):
            shard_dataset = dc_replace(dataset, train_ids=shard)
            self.loaders.append(
                GIDSDataLoader(
                    shard_dataset,
                    shared,
                    config,
                    seed=seed + gpu_index,
                    **loader_kwargs,
                )
            )

    def run(
        self, iterations_per_gpu: int, *, warmup: int = 10
    ) -> MultiGPUResult:
        """Run every GPU's loader for ``iterations_per_gpu`` iterations."""
        if iterations_per_gpu <= 0:
            raise ConfigError("iterations_per_gpu must be positive")
        reports = tuple(
            loader.run(iterations_per_gpu, warmup=warmup)
            for loader in self.loaders
        )
        return MultiGPUResult(
            num_gpus=self.num_gpus,
            per_gpu_reports=reports,
            iterations_per_gpu=iterations_per_gpu,
        )


def scaling_study(
    dataset: ScaledDataset,
    system: SystemConfig,
    config: LoaderConfig | None = None,
    *,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
    iterations_per_gpu: int = 20,
    seed: int = 0,
    **loader_kwargs,
) -> dict[int, MultiGPUResult]:
    """Throughput of the fleet at several data-parallel widths."""
    results = {}
    for num_gpus in gpu_counts:
        trainer = MultiGPUTrainer(
            dataset, system, config, num_gpus=num_gpus, seed=seed,
            **loader_kwargs,
        )
        results[num_gpus] = trainer.run(iterations_per_gpu)
    return results
