"""The paper's analytic storage-bandwidth model (Section 3.2, Eqs. 2-3).

A feature-aggregation kernel has three phases: initial (kernel start until
the first SSD completion), steady state (peak IOPS), and termination.  For a
kernel that issues ``N_access`` overlapping requests:

.. math::

    N_{access} = IOP_{achieved} \\cdot (T_i + T_s + T_t) \\cdot N_{ssd}
    \\qquad (2)

    T_s = \\frac{N_{access}}{IOP_{peak}}  \\qquad (3)

where :math:`IOP_{achieved}` and :math:`IOP_{peak}` are per-SSD rates.  The
functions below solve these equations in both directions; the GIDS dynamic
storage access accumulator uses the inverse form to size its merging
threshold.  :class:`repro.sim.ssd.SSDArray` exposes the same model on its
device objects; this module is the paper-equation-level interface.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.ssd import SSDArray


def expected_iops(array: SSDArray, n_access: int) -> float:
    """Per-SSD IOPS predicted by Eq. 2-3 for ``n_access`` overlapping reads.

    Args:
        array: the SSD array (device spec + phase overheads).
        n_access: total overlapping storage accesses maintained across the
            whole array.

    Returns:
        Predicted average IOPS *per SSD* over the kernel's lifetime.
    """
    if n_access < 0:
        raise ConfigError("n_access must be non-negative")
    if n_access == 0:
        return 0.0
    return array.achieved_iops(n_access) / array.num_ssds


def expected_bandwidth(array: SSDArray, n_access: int) -> float:
    """Collective bytes/s predicted by Eq. 2-3 for ``n_access`` reads."""
    return expected_iops(array, n_access) * array.num_ssds * array.spec.page_bytes


def required_overlapping_accesses(
    array: SSDArray, target_fraction: float = 0.95
) -> int:
    """Overlapping accesses needed to achieve ``target_fraction`` of peak.

    This is the accumulator's threshold before redirect compensation.  The
    requirement grows linearly with device latency and with the number of
    SSDs (Section 3.2).
    """
    return array.required_overlapping(target_fraction)
