"""The GIDS dataloader: GPU-oriented data preparation for GNN training.

Per iteration the loader (Fig. 1 of the paper):

1. samples the mini-batch's computational graph on the GPU, reading the
   structure data pinned in CPU memory over UVA (Section 3.5);
2. redirects feature accesses for hot nodes to the constant CPU buffer
   (Section 3.3);
3. looks the remaining pages up in the BaM GPU software cache, whose
   eviction is steered by the window buffer (Section 3.4);
4. fetches the missing pages from the SSDs with GPU-initiated direct
   storage accesses, merging the work of several future iterations when the
   dynamic storage access accumulator says more in-flight requests are
   needed (Section 3.2);
5. hands the assembled mini-batch to the training stage, which runs
   decoupled from data preparation.

All sampling and cache decisions are functionally executed; stage times come
from the calibrated device models.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..cache.cpu_buffer import ConstantCPUBuffer
from ..cache.gpu_cache import GPUSoftwareCache
from ..config import LoaderConfig, SystemConfig
from ..errors import CheckpointError, ConfigError
from ..faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultySSDArray,
    RetryPolicy,
)
from ..graph.datasets import ScaledDataset
from ..graph.pagerank import hot_node_ranking
from ..integrity import (
    VERIFY_BANDWIDTH_BYTES_PER_S,
    CorruptionLedger,
    PageChecksummer,
    ReadVerifier,
    Scrubber,
)
from ..pipeline.metrics import IterationMetrics, RunReport, StageTimes
from ..sampling.ladies import LadiesSampler
from ..sampling.minibatch import MiniBatch
from ..sampling.neighbor import NeighborSampler
from ..sampling.seeds import SeedBatchStream
from ..sim.counters import TransferCounters
from ..sim.gpu import GPUModel
from ..sim.pcie import PCIeLink
from ..sim.ssd import SSDArray
from ..storage.feature_store import FeatureStore
from ..storage_ha import StorageHA
from ..telemetry import Tracer
from ..telemetry.context import TraceContext, step_trace_id
from ..telemetry.tracks import INTEGRITY_TRACK
from ..utils import as_rng


def apportion(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` units across ``weights`` proportionally (ints, exact).

    Largest-remainder rounding: the result sums to ``total`` exactly, which
    keeps per-iteration fault counters consistent with the group-level
    draw.  All-zero weights split as evenly as possible.
    """
    if total < 0:
        raise ConfigError("total must be non-negative")
    if not weights:
        return []
    w = np.asarray(weights, dtype=np.float64)
    if w.sum() == 0:
        w = np.ones(len(weights))
    raw = w / w.sum() * total
    out = np.floor(raw).astype(np.int64)
    remainder = total - int(out.sum())
    order = np.argsort(-(raw - out), kind="stable")
    for i in range(remainder):
        out[order[i]] += 1
    return out.tolist()


class GIDSDataLoader:
    """GPU-initiated direct-storage-access dataloader.

    Args:
        dataset: the (scaled) graph dataset to train on.
        system: hardware configuration (GPU, CPU, PCIe, SSD array).
        config: GIDS knobs; the defaults reproduce Section 4.1.
        batch_size: seed nodes per mini-batch.
        fanouts: neighbor-sampling fanouts (ignored when ``sampler_kind`` is
            ``"ladies"``).
        sampler_kind: ``"neighbor"`` (GraphSAGE), ``"ladies"``, or
            ``"hetero"`` (typed fanouts; requires a heterogeneous dataset).
        layer_sizes: per-layer node budgets for LADIES.
        hetero_fanouts: per-layer typed fanouts for the ``"hetero"``
            sampler; each entry is an int or a ``{type: cap}`` dict.
            Defaults to ``fanouts`` applied uniformly to every type.
        framework_overhead_s: fixed software cost per aggregation launch
            (DGL dataloader plumbing, kernel setup) — the stop-and-go
            boundary the accumulator amortizes away.
        features: optional materialized feature matrix (functional training).
        seed: RNG seed for sampling, shuffling and cache eviction.  The
            fault injector never shares this stream — fault draws come from
            the plan's own seed, so a fault plan cannot perturb sampling.
        fault_plan: optional fault-injection scenario (read failures, tail
            spikes, device dropout/slowdown/recovery, PCIe degradation).
            ``None`` or a null plan leaves every modeled time bit-identical
            to a loader without fault support.
        retry_policy: overrides the plan's embedded retry policy.
        verify_reads: integrity policy for storage-served pages —
            ``"off"`` (default; no digests are checked), ``"sample"``
            (each page verified with probability ``verify_sample_rate``)
            or ``"full"`` (every page verified).  Detected corruption is
            repaired by bounded re-read in modeled time; pages whose
            device copy is poisoned fall back to the CPU mirror and are
            quarantined.  ``"off"`` with no corruption in the plan keeps
            every modeled time bit-identical to a loader without
            integrity support.
        verify_sample_rate: per-page verify probability in ``"sample"``
            mode.
        scrub_iops: page reads per modeled second granted to the
            background scrubber (0 disables scrubbing).  The scrubber
            sweeps the page space between training groups, detecting and
            rewriting storm-poisoned pages the workload has not touched.
        replication: total copies of each feature page across the array
            (1 = today's unreplicated striping; bit-identical default).
            With 2 or more, reads whose home device is unavailable
            redirect to a surviving replica instead of the CPU mirror.
        parity: protect pages with k+1 rotating parity groups instead of
            replication (mutually exclusive with ``replication > 1``);
            unavailable pages are reconstructed from the ``k`` surviving
            group members at the modeled cost of ``k`` member reads.
        rebuild_iops: background device operations per modeled second
            granted to the online rebuilder (0 disables it) — same
            pay-for-what-you-use economics as ``scrub_iops``.
        tracer: optional :class:`~repro.telemetry.Tracer`.  When attached,
            the loader records stage spans on the modeled clock (and, at
            ``"request"`` detail, per-resource spans for the SSD batch,
            PCIe ingress, HBM reads, CPU-buffer redirects and fault
            resolution) and publishes transfer counters into the tracer's
            metrics registry.  ``None`` (the default) records nothing and
            costs nothing.
    """

    name = "GIDS"

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        config: LoaderConfig | None = None,
        *,
        batch_size: int = 1024,
        fanouts: tuple[int, ...] = (10, 5, 5),
        sampler_kind: str = "neighbor",
        layer_sizes: tuple[int, ...] | None = None,
        hetero_fanouts: tuple[int | dict[str, int], ...] | None = None,
        framework_overhead_s: float = 150e-6,
        features: np.ndarray | None = None,
        hot_nodes: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        verify_reads: str = "off",
        verify_sample_rate: float = 0.1,
        scrub_iops: float = 0.0,
        replication: int = 1,
        parity: bool = False,
        rebuild_iops: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        if framework_overhead_s < 0:
            raise ConfigError("framework overhead must be non-negative")
        self.dataset = dataset
        self.system = system
        self.config = config if config is not None else LoaderConfig()
        self.batch_size = batch_size
        self.framework_overhead_s = framework_overhead_s
        self.tracer = tracer
        #: optional live :class:`~repro.telemetry.snapshot
        #: .MetricsSnapshotter`, polled at each group boundary.
        self.snapshotter = None
        self._rng = as_rng(seed)

        self.store = FeatureStore(
            dataset.num_nodes, dataset.feature_dim, data=features
        )
        self.layout = self.store.layout
        self.ssd = SSDArray(system.ssd, system.num_ssds)
        self.pcie = PCIeLink(system.pcie)
        self.gpu = GPUModel(system.gpu)

        # Fault machinery is strictly pay-for-what-you-use: with no plan
        # (or a null one) none of the branches below ever fire and the
        # modeled times are bit-identical to a loader without fault support.
        self.fault_plan = fault_plan
        self.faults: FaultInjector | None = None
        self.fault_array: FaultySSDArray | None = None
        self._sim_now_s = 0.0
        if fault_plan is not None and not fault_plan.is_null():
            self.faults = FaultInjector(fault_plan, retry_policy)
            self.fault_array = FaultySSDArray(self.ssd, self.faults)
            if fault_plan.pcie_degradation_factor > 1.0:
                self.pcie = PCIeLink(
                    system.pcie,
                    degradation_factor=fault_plan.pcie_degradation_factor,
                )

        # Storage HA (replication/parity + health + rebuild) is likewise
        # pay-for-what-you-use: with the defaults no StorageHA object
        # exists, and with redundancy on but no fault machinery attached
        # every route() is an inert all-direct pass-through.
        self.storage_ha: StorageHA | None = None
        if replication > 1 or parity or rebuild_iops > 0:
            self.storage_ha = StorageHA(
                num_devices=system.num_ssds,
                base_latency_s=system.ssd.read_latency_s,
                replication=replication,
                parity=parity,
                rebuild_iops=rebuild_iops,
                total_pages=self.store.layout.total_pages,
                fault_array=self.fault_array,
                tracer=tracer,
            )

        # Integrity machinery follows the same pay-for-what-you-use rule:
        # it exists only when something can corrupt reads or the caller
        # asked for verification/scrubbing, and verify ``"off"``/``"full"``
        # consume no random numbers (only ``"sample"`` draws, from its own
        # stream).  With none of that, the code paths below never fire.
        self.verify_reads = verify_reads
        self.scrub_iops = float(scrub_iops)
        self.ledger: CorruptionLedger | None = None
        self.checksummer: PageChecksummer | None = None
        self.verifier: ReadVerifier | None = None
        self.scrubber: Scrubber | None = None
        # One entry per produced iteration: page ids whose corruption went
        # undetected, consumed in order by :meth:`fetch_features`.
        self._pending_corrupt: list[np.ndarray] = []
        corruptible = (
            fault_plan is not None and fault_plan.has_corruption
        )
        if verify_reads != "off" or scrub_iops > 0 or corruptible:
            self.ledger = CorruptionLedger(num_devices=system.num_ssds)
            self.checksummer = PageChecksummer(self.store)
            self.verifier = ReadVerifier(
                self.ledger,
                mode=verify_reads,
                sample_rate=verify_sample_rate,
                seed=fault_plan.seed if fault_plan is not None else 0,
                checksummer=self.checksummer,
            )
            if scrub_iops > 0:
                self.scrubber = Scrubber(
                    total_pages=self.layout.total_pages,
                    iops_budget=scrub_iops,
                    ledger=self.ledger,
                    injector=self.faults,
                    num_devices=system.num_ssds,
                    checksummer=self.checksummer,
                )

        self.sampler = self._build_sampler(
            sampler_kind, fanouts, layer_sizes, hetero_fanouts
        )

        cache_lines = int(self.config.gpu_cache_bytes // self.layout.page_bytes)
        # The cache gets its own spawned RNG stream so eviction draws never
        # perturb the sampling stream: two loaders with the same seed sample
        # identical batches regardless of their cache activity.
        self._cache_rng = self._rng.spawn(1)[0]
        self.cache = GPUSoftwareCache(cache_lines, seed=self._cache_rng)
        self.cache.tracer = tracer

        self.cpu_buffer = self._build_cpu_buffer(hot_nodes)
        self.accumulator = self._build_accumulator()
        if self.accumulator is not None:
            self.accumulator.tracer = tracer

        # Local import to avoid a cycle at module import time.
        from .window import WindowBuffer

        self.window = WindowBuffer(
            self.cache, self.config.window_depth, tracer=tracer
        )
        self._seed_stream = SeedBatchStream(
            dataset.train_ids, batch_size, self._rng
        )

    # ------------------------------------------------------------------
    # Construction helpers

    def _build_sampler(
        self,
        sampler_kind: str,
        fanouts: tuple[int, ...],
        layer_sizes: tuple[int, ...] | None,
        hetero_fanouts: tuple[int | dict[str, int], ...] | None,
    ):
        if sampler_kind == "neighbor":
            return NeighborSampler(
                self.dataset.graph, fanouts, seed=self._rng
            )
        if sampler_kind == "ladies":
            sizes = layer_sizes if layer_sizes is not None else (512,) * 3
            return LadiesSampler(self.dataset.graph, sizes, seed=self._rng)
        if sampler_kind == "hetero":
            if self.dataset.hetero is None:
                raise ConfigError(
                    "the 'hetero' sampler requires a heterogeneous dataset"
                )
            from ..sampling.hetero_neighbor import HeteroNeighborSampler

            typed = hetero_fanouts if hetero_fanouts is not None else fanouts
            return HeteroNeighborSampler(
                self.dataset.hetero, typed, seed=self._rng
            )
        raise ConfigError(
            f"unknown sampler kind {sampler_kind!r}; "
            "expected 'neighbor', 'ladies' or 'hetero'"
        )

    def _build_cpu_buffer(
        self, hot_nodes: np.ndarray | None
    ) -> ConstantCPUBuffer | None:
        fraction = self.config.cpu_buffer_fraction
        if fraction <= 0:
            return None
        capacity = fraction * self.dataset.feature_data_bytes
        if hot_nodes is not None:
            # Caller supplied a precomputed ranking (Section 3.3: users may
            # "define which nodes should be pinned" with their own metric).
            return ConstantCPUBuffer(
                num_nodes=self.dataset.num_nodes,
                feature_bytes=self.store.feature_bytes,
                capacity_bytes=capacity,
                hot_nodes=np.asarray(hot_nodes, dtype=np.int64),
            )
        seed_weights = None
        if self.config.hot_node_metric == "reverse_pagerank":
            # Weight the teleport vector by training-seed membership so the
            # ranking reflects the actual sampling frontier (Section 3.3).
            seed_weights = np.zeros(self.dataset.num_nodes)
            seed_weights[self.dataset.train_ids] = 1.0
            if seed_weights.sum() == 0:
                seed_weights = None
        hot = hot_node_ranking(
            self.dataset.graph,
            self.config.hot_node_metric,
            seed_weights=seed_weights,
            rng=self._rng,
        )
        return ConstantCPUBuffer(
            num_nodes=self.dataset.num_nodes,
            feature_bytes=self.store.feature_bytes,
            capacity_bytes=capacity,
            hot_nodes=hot,
        )

    def _build_accumulator(self):
        if not self.config.accumulator_enabled:
            return None
        from .accumulator import DynamicAccessAccumulator

        # Under fault injection the accumulator sees the degradable array
        # view, so after a dropout it re-solves Eq. 2-3 against the
        # survivors' (lower) collective peak IOPS.
        array = self.fault_array if self.fault_array is not None else self.ssd
        return DynamicAccessAccumulator(
            array=array,
            target_fraction=self.config.accumulator_target,
            max_merged_iterations=self.config.max_merged_iterations,
        )

    # ------------------------------------------------------------------
    # Sampling / window management

    def _sample_next(self) -> None:
        """Sample one future iteration and push it into the window."""
        seeds = self._seed_stream.next()
        batch = self.sampler.sample(seeds)
        nodes = batch.input_nodes
        if self.cpu_buffer is not None:
            buffered = self.cpu_buffer.contains(nodes)
            n_buffer_nodes = int(buffered.sum())
            cache_nodes = nodes[~buffered]
        else:
            n_buffer_nodes = 0
            cache_nodes = nodes
        pages = self.layout.pages_for_nodes(cache_nodes)
        sampling_time = self.gpu.sampling_time(
            batch.num_sampled, n_kernels=batch.num_layers
        )
        self.window.push(
            batch, pages, payload=(n_buffer_nodes, sampling_time)
        )

    def _fill_window(self) -> None:
        """Sample ahead until the look-ahead window is full."""
        target = max(self.window.depth, 0) + 1
        while len(self.window) < target:
            self._sample_next()

    # ------------------------------------------------------------------
    # Aggregation

    def _next_group(self, remaining: int):
        """Collect the iterations whose aggregation is merged into one batch."""
        group = []
        accumulated_nodes = 0
        while True:
            self._fill_window()
            entry = self.window.pop()
            group.append(entry)
            accumulated_nodes += entry.batch.num_input_nodes
            if self.accumulator is None:
                break
            if len(group) >= remaining:
                break
            if not self.accumulator.should_merge_more(
                accumulated_nodes, len(group)
            ):
                break
        return group

    def _aggregate_group(self, group) -> list[IterationMetrics]:
        """Serve one merged group's feature requests and model its time."""
        page_bytes = self.layout.page_bytes
        feature_bytes = self.store.feature_bytes
        faults = self.faults
        array = self.ssd
        tracer = self.tracer
        group_start_s = self._sim_now_s
        if tracer is not None:
            tracer.clock_s = group_start_s
        if faults is not None:
            self.fault_array.advance_to(self._sim_now_s)
            array = self.fault_array
        if self.storage_ha is not None:
            self.storage_ha.advance(self._sim_now_s)

        per_entry: list[TransferCounters] = []
        integrity_rereads = 0
        verified_bytes = 0
        if self.verifier is None:
            for entry in group:
                n_buffer_nodes, _ = entry.payload
                hit_mask = self.cache.access(entry.pages)
                n_hits = int(hit_mask.sum())
                n_miss = len(entry.pages) - n_hits
                n_lost = 0
                n_replica = n_reconstruct = extra_reads = 0
                if faults is not None and n_miss:
                    miss_pages = entry.pages[~hit_mask]
                    if self.storage_ha is not None:
                        # Redundant layout: unavailable pages redirect to
                        # a surviving replica or reconstruct from parity;
                        # only pages with no live copy fall back.
                        route = self.storage_ha.route(miss_pages)
                        n_lost = route.n_lost
                        n_replica = route.n_replica
                        n_reconstruct = route.n_reconstruct
                        extra_reads = route.extra_service_reads
                    else:
                        # Pages homed on a dropped-out (or recovered but
                        # not yet rebuilt) device are known-unavailable:
                        # they skip storage and fall back to the
                        # feature-store path.
                        n_lost = int(
                            self.fault_array.unavailable_page_mask(
                                miss_pages
                            ).sum()
                        )
                n_storage = n_miss - n_lost
                per_entry.append(
                    TransferCounters(
                        storage_requests=n_storage,
                        storage_bytes=(n_storage + extra_reads) * page_bytes,
                        cpu_buffer_requests=n_buffer_nodes,
                        cpu_buffer_bytes=n_buffer_nodes * feature_bytes,
                        gpu_cache_hits=n_hits,
                        gpu_cache_bytes=n_hits * page_bytes,
                        fallback_requests=n_lost,
                        fallback_bytes=n_lost * page_bytes,
                        replica_redirects=n_replica,
                        parity_reconstructs=n_reconstruct,
                        reconstruct_reads=n_reconstruct + extra_reads,
                    )
                )
        else:
            for entry in group:
                counters = self._serve_entry_verified(
                    entry, group_start_s, array
                )
                integrity_rereads += counters.integrity_rereads
                verified_bytes += counters.verified_pages * page_bytes
                per_entry.append(counters)

        total_storage_pages = sum(c.storage_requests for c in per_entry)
        total_cpu_bytes = sum(c.cpu_buffer_bytes for c in per_entry)
        total_hbm_bytes = sum(c.gpu_cache_bytes for c in per_entry)

        service_requests = total_storage_pages
        fault_extra_time = 0.0
        if faults is not None:
            fault_extra_time, service_requests = self._resolve_group_faults(
                per_entry, total_storage_pages, array
            )
        # Repair re-reads occupy device service exactly like retried
        # commands; digest checks cost modeled hash time on every verified
        # byte.  Both are zero whenever the integrity layer is off.
        service_requests += integrity_rereads
        # Parity reconstruction issues k member reads for each rebuilt
        # page; the extra k-1 occupy device service like fresh commands.
        ha_extra_reads = sum(
            c.reconstruct_reads - c.parity_reconstructs for c in per_entry
        )
        service_requests += ha_extra_reads
        integrity_extra_time = verified_bytes / VERIFY_BANDWIDTH_BYTES_PER_S
        total_storage_bytes = sum(c.storage_bytes for c in per_entry)
        total_fallback_bytes = sum(c.fallback_bytes for c in per_entry)

        storage_time = (
            self.framework_overhead_s
            + array.batch_service_time(service_requests)
            + fault_extra_time
            + integrity_extra_time
        )
        ingress_time = self.pcie.ingress_time(
            total_storage_bytes,
            storage_time,
            total_cpu_bytes + total_fallback_bytes,
        )
        hbm_time = self.gpu.hbm_read_time(total_hbm_bytes)
        group_time = ingress_time + hbm_time

        if tracer is not None and tracer.want_request_detail:
            self._trace_group_resources(
                tracer,
                group_start_s,
                storage_time=storage_time,
                service_requests=service_requests,
                ingress_time=ingress_time,
                hbm_time=hbm_time,
                storage_bytes=total_storage_bytes,
                cpu_bytes=total_cpu_bytes + total_fallback_bytes,
                hbm_bytes=total_hbm_bytes,
            )
            if integrity_extra_time > 0.0:
                tracer.record(
                    "verify",
                    INTEGRITY_TRACK,
                    start_s=group_start_s,
                    duration_s=integrity_extra_time,
                    verified=sum(c.verified_pages for c in per_entry),
                    detected=sum(c.corrupt_detected for c in per_entry),
                    repaired=sum(c.corrupt_repaired for c in per_entry),
                    quarantined=sum(
                        c.corrupt_quarantined for c in per_entry
                    ),
                    rereads=integrity_rereads,
                )

        if self.accumulator is not None:
            total_requests = sum(c.total_requests for c in per_entry)
            self.accumulator.observe(total_storage_pages, total_requests)

        # Apportion the merged aggregation time across iterations by their
        # share of served feature bytes (equal split when all-zero).
        shares = np.array(
            [c.total_feature_bytes for c in per_entry], dtype=np.float64
        )
        if shares.sum() == 0:
            shares = np.ones(len(group))
        shares = shares / shares.sum()

        metrics = []
        for entry, counters, share in zip(group, per_entry, shares):
            _, sampling_time = entry.payload
            times = StageTimes(
                sampling=sampling_time,
                aggregation=float(share) * group_time,
                transfer=0.0,
                training=self.gpu.training_time(
                    entry.batch.num_input_nodes
                ),
            )
            metrics.append(
                IterationMetrics(
                    times=times,
                    num_seeds=len(entry.batch.seeds),
                    num_input_nodes=entry.batch.num_input_nodes,
                    num_sampled=entry.batch.num_sampled,
                    num_edges=entry.batch.num_edges,
                    counters=counters,
                )
            )
        if self.scrubber is not None:
            # The sweep overlaps the group it follows (it soaks up idle
            # device IOPS), so it advances no modeled time; its budget is
            # the group's elapsed time and its reads are accounted on the
            # group's last iteration.
            group_elapsed = sum(m.times.total for m in metrics)
            scrub = self.scrubber.sweep(
                group_elapsed, group_start_s + group_elapsed
            )
            if scrub.pages_scanned:
                last = metrics[-1].counters
                last.scrubbed_pages += scrub.pages_scanned
                last.corrupt_detected += scrub.detected
                last.corrupt_repaired += scrub.repaired
                if tracer is not None and tracer.want_request_detail:
                    tracer.instant(
                        "scrub",
                        INTEGRITY_TRACK,
                        pages=scrub.pages_scanned,
                        detected=scrub.detected,
                        repaired=scrub.repaired,
                        released=scrub.released,
                    )
        if self.storage_ha is not None:
            # The rebuilder rides the same idle-IOPS economics as the
            # scrubber: its sweep overlaps the group, costs no modeled
            # time, and its traffic lands on the last iteration.
            group_elapsed = sum(m.times.total for m in metrics)
            sweep = self.storage_ha.background_sweep(
                group_elapsed, group_start_s + group_elapsed
            )
            if sweep is not None and sweep.pages_rebuilt:
                metrics[-1].counters.rebuild_pages += sweep.pages_rebuilt
            if (
                tracer is not None
                and tracer.want_request_detail
                and (ha_extra_reads or any(
                    c.replica_redirects for c in per_entry
                ))
            ):
                tracer.record(
                    "degraded_reads",
                    "storage.ha",
                    start_s=group_start_s,
                    duration_s=storage_time,
                    replica_redirects=sum(
                        c.replica_redirects for c in per_entry
                    ),
                    parity_reconstructs=sum(
                        c.parity_reconstructs for c in per_entry
                    ),
                    reconstruct_reads=sum(
                        c.reconstruct_reads for c in per_entry
                    ),
                )

        if tracer is not None and tracer.enabled:
            self._trace_group_stages(tracer, group_start_s, metrics)
            tracer.metrics.histogram("ssd.batch_service_s").observe(
                storage_time
            )
            tracer.metrics.histogram("pcie.ingress_s").observe(ingress_time)

        # Advance the simulated clock so time-triggered device events
        # (dropout/recovery) fire at the right point of the run.
        self._sim_now_s += sum(m.times.total for m in metrics)
        if tracer is not None:
            tracer.clock_s = self._sim_now_s
        return metrics

    def _serve_entry_verified(
        self, entry, now_s: float, array
    ) -> TransferCounters:
        """Serve one iteration's pages with the integrity layer engaged.

        The healthy-path arithmetic (hits, misses, lost pages, byte
        counts) is identical to the fast path in :meth:`_aggregate_group`;
        on top of it, quarantined pages skip cache and storage entirely
        (served from the fallback tier), every storage-served page runs
        through the fault injector's corruption draw and the configured
        verify mode, and pages condemned this round are invalidated from
        the GPU cache so unverified bytes are never admitted.
        """
        page_bytes = self.layout.page_bytes
        feature_bytes = self.store.feature_bytes
        n_buffer_nodes, _ = entry.payload
        pages = entry.pages
        n_quarantine = 0
        if self.ledger.num_quarantined:
            qmask = self.ledger.quarantined_mask(pages)
            if qmask.any():
                n_quarantine = int(qmask.sum())
                # Quarantined pages never touch cache or storage: release
                # the window's registered reuse units and serve them from
                # the fallback tier.
                self.cache.forget_future(pages[qmask])
                pages = pages[~qmask]
        hit_mask = self.cache.access(pages)
        n_hits = int(hit_mask.sum())
        miss_pages = pages[~hit_mask]
        n_lost = 0
        n_replica = n_reconstruct = extra_reads = 0
        if self.faults is not None and len(miss_pages):
            if self.storage_ha is not None:
                # Redirect unavailable pages to a surviving copy (or
                # reconstruct from parity); the redirected pages still run
                # the corruption draw and verifier below — replicas get
                # verified exactly like primary reads.
                route = self.storage_ha.route(miss_pages)
                n_lost = route.n_lost
                n_replica = route.n_replica
                n_reconstruct = route.n_reconstruct
                extra_reads = route.extra_service_reads
                if n_lost:
                    miss_pages = miss_pages[~route.lost_mask]
            else:
                lost = self.fault_array.unavailable_page_mask(miss_pages)
                if lost.any():
                    n_lost = int(lost.sum())
                    miss_pages = miss_pages[~lost]
        n_storage = len(miss_pages)

        origins = None
        if (
            self.faults is not None
            and self.faults.plan.has_corruption
            and n_storage
        ):
            kinds, origins = self.faults.corruption_kinds(
                miss_pages, now_s, self.system.num_ssds
            )
        else:
            kinds = np.zeros(n_storage, dtype=np.uint8)
        outcome = self.verifier.process(
            miss_pages, kinds, now_s=now_s, origin_times=origins
        )
        q_now = outcome.quarantined
        if q_now:
            # Condemned pages must not stay resident; their good bytes
            # come over the CPU path, not from storage.
            self.cache.invalidate(outcome.quarantined_pages)
        self._pending_corrupt.append(outcome.undetected_pages)

        n_fallback = n_lost + n_quarantine + q_now
        return TransferCounters(
            storage_requests=n_storage,
            storage_bytes=(n_storage - q_now + extra_reads) * page_bytes,
            cpu_buffer_requests=n_buffer_nodes,
            cpu_buffer_bytes=n_buffer_nodes * feature_bytes,
            gpu_cache_hits=n_hits,
            gpu_cache_bytes=n_hits * page_bytes,
            fallback_requests=n_fallback,
            fallback_bytes=n_fallback * page_bytes,
            replica_redirects=n_replica,
            parity_reconstructs=n_reconstruct,
            reconstruct_reads=n_reconstruct + extra_reads,
            verified_pages=outcome.verified,
            unverified_pages=outcome.unverified,
            corrupt_detected=outcome.detected,
            corrupt_repaired=outcome.repaired,
            corrupt_quarantined=q_now,
            integrity_rereads=outcome.rereads,
        )

    def _trace_group_resources(
        self,
        tracer: Tracer,
        start_s: float,
        *,
        storage_time: float,
        service_requests: int,
        ingress_time: float,
        hbm_time: float,
        storage_bytes: int,
        cpu_bytes: int,
        hbm_bytes: int,
    ) -> None:
        """Emit per-resource spans for one merged aggregation batch.

        All streams start at the group's base time (they run concurrently,
        which is exactly what the lanes should show); the HBM read follows
        the ingress phase because cached lines are consumed after the batch
        lands.
        """
        if service_requests:
            tracer.record(
                "storage_batch",
                "ssd",
                start_s=start_s,
                duration_s=storage_time,
                requests=service_requests,
                bytes=storage_bytes,
            )
        if ingress_time > 0.0:
            tracer.record(
                "ingress",
                "pcie",
                start_s=start_s,
                duration_s=ingress_time,
                storage_bytes=storage_bytes,
                cpu_bytes=cpu_bytes,
            )
        if hbm_time > 0.0:
            tracer.record(
                "hbm_read",
                "gpu.cache",
                start_s=start_s + ingress_time,
                duration_s=hbm_time,
                bytes=hbm_bytes,
            )
        if cpu_bytes:
            tracer.record(
                "redirect",
                "cpu.buffer",
                start_s=start_s,
                duration_s=cpu_bytes / self.pcie.cpu_path_bandwidth,
                bytes=cpu_bytes,
            )

    def _trace_group_stages(
        self, tracer: Tracer, start_s: float, metrics: list[IterationMetrics]
    ) -> None:
        """Emit per-iteration stage spans and publish transfer counters.

        The span durations are the *same floats* that land in the run
        report's :class:`~repro.pipeline.metrics.StageTimes`, so per-track
        trace totals agree exactly with the report's stage totals.  Spans
        lay out serially from the group's base time — the iteration order
        a non-overlapped execution would follow — which keeps every lane
        consistent with the modeled clock advance below.
        """
        cursor = start_s
        for m in metrics:
            t = m.times
            iteration = tracer.iteration
            tracer.record(
                "sampling",
                "stage.sampling",
                start_s=cursor,
                duration_s=t.sampling,
                iteration=iteration,
            )
            cursor += t.sampling
            tracer.record(
                "aggregation",
                "stage.aggregation",
                start_s=cursor,
                duration_s=t.aggregation,
                iteration=iteration,
            )
            cursor += t.aggregation
            if t.transfer > 0.0:
                tracer.record(
                    "transfer",
                    "stage.transfer",
                    start_s=cursor,
                    duration_s=t.transfer,
                    iteration=iteration,
                )
                cursor += t.transfer
            tracer.record(
                "training",
                "stage.training",
                start_s=cursor,
                duration_s=t.training,
                iteration=iteration,
            )
            cursor += t.training
            tracer.iteration = iteration + 1
            tracer.metrics.histogram("iteration.total_s").observe(t.total)
            m.counters.publish(tracer.metrics)

    def _resolve_group_faults(
        self, per_entry: list[TransferCounters], total_storage_pages: int, array
    ) -> tuple[float, int]:
        """Run the failure/retry/spike process for one merged storage batch.

        Mutates the per-iteration counters in place (retries, injected
        faults, unrecovered reads re-routed to the fallback path) and
        returns ``(extra_elapsed_seconds, service_requests)`` where
        ``service_requests`` includes re-issued commands — retried reads
        occupy device service exactly like fresh ones.
        """
        faults = self.faults
        page_bytes = self.layout.page_bytes
        outcome = faults.resolve_batch(total_storage_pages)
        n_spiked = faults.spike_count(total_storage_pages)
        extra_time = outcome.backoff_s + array.tail_extra_time(n_spiked)

        weights = [c.storage_requests for c in per_entry]
        for counters, injected, retries, unrecovered, spikes in zip(
            per_entry,
            apportion(outcome.injected_failures, weights),
            apportion(outcome.retries, weights),
            apportion(outcome.unrecovered, weights),
            apportion(n_spiked, weights),
        ):
            counters.injected_faults += injected
            counters.storage_retries += retries
            counters.latency_spikes += spikes
            if unrecovered:
                # Reads that exhausted the retry policy (or its time
                # budget) are served by the feature-store fallback; their
                # bytes never arrive from storage.
                counters.storage_bytes = max(
                    0, counters.storage_bytes - unrecovered * page_bytes
                )
                counters.fallback_requests += unrecovered
                counters.fallback_bytes += unrecovered * page_bytes
        if outcome.timed_out and per_entry:
            per_entry[0].retry_timeouts += 1
        tracer = self.tracer
        if (
            tracer is not None
            and tracer.want_request_detail
            and (extra_time > 0.0 or outcome.injected_failures)
        ):
            tracer.record(
                "fault_resolution",
                "faults",
                start_s=self._sim_now_s,
                duration_s=extra_time,
                injected=outcome.injected_failures,
                retries=outcome.retries,
                unrecovered=outcome.unrecovered,
                timed_out=outcome.timed_out,
            )
        return extra_time, total_storage_pages + outcome.retries

    # ------------------------------------------------------------------
    # Public API

    def run(self, num_iterations: int, *, warmup: int = 10) -> RunReport:
        """Execute ``warmup`` unmeasured iterations, then measure a run.

        Mirrors the paper's methodology (Section 4.1): caches stay warm
        across the boundary, only statistics and timings reset.
        """
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if warmup < 0:
            raise ConfigError("warmup must be non-negative")
        if warmup:
            self._execute(warmup, report=None)
        self.cache.stats.reset()
        if self.tracer is not None:
            # Discard warmup spans/metrics so trace totals match the
            # measured report exactly; the modeled clock keeps running.
            self.tracer.reset()
        fault_baseline = (
            self.faults.stats.state_dict() if self.faults is not None else None
        )
        ledger_baseline = (
            None if self.ledger is None else self._ledger_totals()
        )
        report = RunReport(
            loader_name=self.name,
            overlapped=self.config.accumulator_enabled,
        )
        self._execute(num_iterations, report=report)
        if (
            self.tracer is not None
            and self.tracer.enabled
            and fault_baseline is not None
        ):
            # Publish only the measured-run delta so the fault counters in
            # the registry agree with the report (warmup is excluded).
            after = self.faults.stats.state_dict()
            FaultStats(
                **{k: after[k] - fault_baseline[k] for k in after}
            ).publish(self.tracer.metrics)
        if (
            self.tracer is not None
            and self.tracer.enabled
            and ledger_baseline is not None
        ):
            after_totals = self._ledger_totals()
            for name, value in after_totals.items():
                delta = value - ledger_baseline[name]
                if delta:
                    self.tracer.metrics.counter(
                        f"integrity.{name}"
                    ).inc(delta)
        # Timing-only runs never fetch features, so drain the queue of
        # undetected-corruption markers instead of letting it grow.
        self._pending_corrupt.clear()
        return report

    def _ledger_totals(self) -> dict[str, int]:
        return {
            "detected": self.ledger.total_detected,
            "repaired": self.ledger.total_repaired,
            "unrepairable": self.ledger.total_unrepairable,
            "quarantined": self.ledger.num_quarantined,
        }

    def _execute(self, n_iterations: int, report: RunReport | None) -> None:
        done = 0
        while done < n_iterations:
            pairs = self.next_training_group(n_iterations - done)
            for _, metrics in pairs:
                if report is not None:
                    report.append(metrics)
            done += len(pairs)

    def next_training_group(
        self, remaining: int
    ) -> list[tuple[MiniBatch, IterationMetrics]]:
        """Produce the next merged group of training iterations.

        Samples ahead, pops the accumulator-merged group, serves its feature
        requests and returns ``(mini-batch, metrics)`` pairs in iteration
        order.  ``remaining`` caps the group size so a run of ``N``
        iterations never aggregates work past its end — callers that step
        iteration-by-iteration (the training pipeline, checkpointing) get
        the exact grouping a single :meth:`run`/:meth:`iter_batches` call
        would produce.
        """
        if remaining <= 0:
            raise ConfigError("remaining must be positive")
        group = self._next_group(remaining=remaining)
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            # One causal chain per merged group, rooted at the first
            # iteration it serves: every span/instant the aggregation emits
            # (stages, HA redirects, fault retries) joins the same trace.
            ctx = TraceContext(
                step_trace_id("group", tracer.iteration), origin="run"
            )
            with tracer.context(ctx):
                metrics = self._aggregate_group(group)
        else:
            metrics = self._aggregate_group(group)
        if self.snapshotter is not None:
            self.snapshotter.poll(self._sim_now_s)
        return [(entry.batch, m) for entry, m in zip(group, metrics)]

    def fetch_features(self, batch: MiniBatch) -> np.ndarray:
        """Materialize the feature matrix the modeled fetch delivered.

        Healthy runs return the ground-truth rows from the feature store.
        When corruption is being injected, rows whose page was served
        corrupt from storage *and slipped past verification* are returned
        perturbed (sign and a high mantissa bit of every float flipped) —
        exactly the silent damage ``verify_reads="off"`` leaves in, and
        what ``"full"`` provably removes.  Batches must be fetched in the
        order :meth:`next_training_group` produced them.
        """
        feats = self.store.fetch(batch.input_nodes)
        if self.verifier is None:
            return feats
        if not self._pending_corrupt:
            return feats
        bad_pages = self._pending_corrupt.pop(0)
        if len(bad_pages) == 0:
            return feats
        node_pages = self.layout.pages_for_nodes(batch.input_nodes)
        bad = np.isin(node_pages, bad_pages)
        if self.cpu_buffer is not None:
            # Hot nodes were served from the pinned CPU mirror, which the
            # storm cannot touch, even when they share a page id.
            bad &= ~self.cpu_buffer.contains(batch.input_nodes)
        if bad.any():
            raw = feats[bad]
            bits = raw.view(np.uint32) ^ np.uint32(0x8040_0000)
            feats[bad] = bits.view(raw.dtype)
        return feats

    def iter_batches(
        self, num_iterations: int
    ) -> Iterator[tuple[MiniBatch, np.ndarray]]:
        """Yield ``(mini-batch, input feature matrix)`` pairs for training.

        The functional companion of :meth:`run`: features come from the
        feature store (synthetic or materialized) in ``input_nodes`` order,
        filtered through :meth:`fetch_features` so undetected corruption
        shows up in the delivered matrices.
        """
        if num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        produced = 0
        while produced < num_iterations:
            pairs = self.next_training_group(num_iterations - produced)
            for batch, _ in pairs:
                yield batch, self.fetch_features(batch)
                produced += 1

    @property
    def sim_now_s(self) -> float:
        """Simulated time consumed so far (modeled seconds, monotonic)."""
        return self._sim_now_s

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot every piece of mutable loader state.

        Captures the shared sampling RNG (which also drives the sampler and
        the seed-stream shuffles), the seed stream's epoch position, the GPU
        cache (contents, pinning counters, its private eviction RNG and
        stats), the queued window entries, the accumulator's smoothed
        redirect fraction, the simulated clock and — when fault injection is
        active — the injector's stream position and the degradable array's
        clock.  Restoring all of it into a freshly constructed loader with
        identical arguments makes the continuation bit-identical to a run
        that never stopped.
        """
        state = {
            "loader_name": self.name,
            "batch_size": self.batch_size,
            "rng": self._rng.bit_generator.state,
            "seed_stream": self._seed_stream.state_dict(),
            "cache": self.cache.state_dict(),
            "window": self.window.state_dict(),
            "accumulator": (
                None
                if self.accumulator is None
                else self.accumulator.state_dict()
            ),
            "cpu_buffer": (
                None
                if self.cpu_buffer is None
                else self.cpu_buffer.state_dict()
            ),
            "sim_now_s": self._sim_now_s,
            "faults": None,
            "integrity": None,
            "storage_ha": (
                None
                if self.storage_ha is None
                else self.storage_ha.state_dict()
            ),
            "tracer": (
                None if self.tracer is None else self.tracer.state_dict()
            ),
        }
        if self.faults is not None:
            state["faults"] = {
                "injector": self.faults.state_dict(),
                "array": self.fault_array.state_dict(),
            }
        if self.verifier is not None:
            state["integrity"] = {
                "ledger": self.ledger.state_dict(),
                "verifier": self.verifier.state_dict(),
                "scrubber": (
                    None
                    if self.scrubber is None
                    else self.scrubber.state_dict()
                ),
                "pending_corrupt": [
                    [int(p) for p in pages]
                    for pages in self._pending_corrupt
                ],
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the state captured by :meth:`state_dict`.

        The loader must have been constructed with the same dataset, system
        and configuration as the one that produced the snapshot; structural
        mismatches (loader kind, batch size, cache geometry, window depth,
        fault support) raise :class:`~repro.errors.CheckpointError`.
        """
        if state.get("loader_name") != self.name:
            raise CheckpointError(
                f"checkpoint was written by loader "
                f"{state.get('loader_name')!r}, not {self.name!r}"
            )
        if state.get("batch_size") != self.batch_size:
            raise CheckpointError(
                f"checkpoint batch size {state.get('batch_size')} does not "
                f"match configured {self.batch_size}"
            )
        for attr, key in (
            ("accumulator", "accumulator"),
            ("cpu_buffer", "cpu_buffer"),
            ("faults", "faults"),
            ("verifier", "integrity"),
            ("storage_ha", "storage_ha"),
        ):
            if (getattr(self, attr) is None) != (state.get(key) is None):
                raise CheckpointError(
                    f"checkpoint {key} state does not match the loader "
                    f"configuration (one side has it disabled)"
                )
        self._rng.bit_generator.state = state["rng"]
        self._seed_stream.load_state_dict(state["seed_stream"])
        self.cache.load_state_dict(state["cache"])
        self.window.load_state_dict(state["window"])
        if self.accumulator is not None:
            self.accumulator.load_state_dict(state["accumulator"])
        if self.cpu_buffer is not None:
            self.cpu_buffer.load_state_dict(state["cpu_buffer"])
        self._sim_now_s = float(state["sim_now_s"])
        if self.faults is not None:
            self.faults.load_state_dict(state["faults"]["injector"])
            self.fault_array.load_state_dict(state["faults"]["array"])
        if self.storage_ha is not None:
            self.storage_ha.load_state_dict(state["storage_ha"])
        if self.verifier is not None:
            integrity = state["integrity"]
            self.ledger.load_state_dict(integrity["ledger"])
            self.verifier.load_state_dict(integrity["verifier"])
            if (self.scrubber is None) != (integrity["scrubber"] is None):
                raise CheckpointError(
                    "checkpoint scrubber state does not match the loader "
                    "configuration (one side has scrubbing disabled)"
                )
            if self.scrubber is not None:
                self.scrubber.load_state_dict(integrity["scrubber"])
            self._pending_corrupt = [
                np.asarray(pages, dtype=np.int64)
                for pages in integrity["pending_corrupt"]
            ]
        # Tracer state is deliberately lenient: a checkpoint written
        # without tracing loads into a traced loader (the trace simply
        # starts at the resume point) and vice versa.  When both sides
        # carry state, the recorded spans resume seamlessly — events the
        # crashed run emitted *after* the snapshot are discarded with the
        # rest of its lost progress.
        tracer_state = state.get("tracer")
        if tracer_state is not None and self.tracer is not None:
            self.tracer.load_state_dict(tracer_state)

    def reset_caches(self) -> None:
        """Drop all cache and window state (fresh-run isolation)."""
        self._pending_corrupt.clear()
        self.window.drain()
        self.cache = GPUSoftwareCache(
            self.cache.capacity_lines,
            policy=self.cache.policy,
            seed=self._cache_rng,
        )
        self.cache.tracer = self.tracer
        from .window import WindowBuffer

        self.window = WindowBuffer(
            self.cache, self.config.window_depth, tracer=self.tracer
        )
