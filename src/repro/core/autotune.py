"""Window-buffer depth selection (Section 3.4's trade-off, automated).

The paper sets the default window depth to 8 "based on the system
environment" and lists the two costs of going deeper: (1) the sampled
node-ID lists of all windowed iterations must stay in GPU memory, and
(2) a deeper window pins a larger share of the GPU cache, increasing
contention on the evictable lines.  :func:`recommend_window_depth` encodes
both constraints analytically; :func:`measure_window_depths` is the
empirical companion that probes candidate depths on a short run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class WindowRecommendation:
    """Outcome of the analytic depth recommendation."""

    depth: int
    pin_limit_depth: int
    memory_limit_depth: int

    @property
    def binding_constraint(self) -> str:
        """Which limit determined the recommended depth."""
        tightest = min(self.pin_limit_depth, self.memory_limit_depth)
        if self.depth < tightest:
            return "max_depth"
        if self.pin_limit_depth <= self.memory_limit_depth:
            return "cache_pinning"
        return "window_memory"


def recommend_window_depth(
    *,
    cache_lines: int,
    batch_unique_pages: int,
    batch_node_id_bytes: int = 8,
    window_memory_budget_bytes: float = 256e6,
    pin_fraction_limit: float = 0.75,
    max_depth: int = 32,
) -> WindowRecommendation:
    """Pick a window depth from the cache and memory constraints.

    Args:
        cache_lines: GPU software-cache capacity in pages.
        batch_unique_pages: unique feature pages one mini-batch touches
            (measure one sampled batch, or use
            ``MiniBatch.num_input_nodes`` with one-page features).
        batch_node_id_bytes: bytes per stored sampled node id.
        window_memory_budget_bytes: GPU memory reserved for the window's
            node-ID lists ("several megabytes" per mini-batch at paper
            scale; the budget bounds their total).
        pin_fraction_limit: largest share of the cache the window may pin;
            beyond it, misses start bypassing the cache wholesale.
        max_depth: hard upper bound.

    Returns:
        The recommended depth together with the per-constraint limits.
    """
    if cache_lines < 0:
        raise ConfigError("cache_lines must be non-negative")
    if batch_unique_pages <= 0:
        raise ConfigError("batch_unique_pages must be positive")
    if not 0.0 < pin_fraction_limit <= 1.0:
        raise ConfigError("pin_fraction_limit must be in (0, 1]")
    if window_memory_budget_bytes < 0:
        raise ConfigError("window memory budget must be non-negative")
    if max_depth <= 0:
        raise ConfigError("max_depth must be positive")

    # Constraint 1: pinned pages of W future iterations must leave the
    # cache enough evictable lines.  Cross-iteration overlap means the
    # worst case (W disjoint batches) is conservative — the right
    # direction for a default.
    pin_limit = int(pin_fraction_limit * cache_lines // batch_unique_pages)

    # Constraint 2: node-ID lists of W iterations within the budget.
    per_batch_bytes = batch_unique_pages * batch_node_id_bytes
    memory_limit = int(window_memory_budget_bytes // per_batch_bytes)

    depth = max(0, min(pin_limit, memory_limit, max_depth))
    return WindowRecommendation(
        depth=depth,
        pin_limit_depth=pin_limit,
        memory_limit_depth=memory_limit,
    )


def measure_window_depths(
    loader_factory,
    depths: tuple[int, ...] = (0, 2, 4, 8, 16),
    *,
    iterations: int = 30,
    warmup: int = 10,
) -> dict[int, float]:
    """Probe candidate depths empirically; returns depth -> agg seconds.

    Args:
        loader_factory: callable ``depth -> loader`` building a fresh
            loader with that window depth (fresh caches per probe).
        depths: candidate depths.
        iterations: measured iterations per probe.
        warmup: warmup iterations per probe.
    """
    if iterations <= 0:
        raise ConfigError("iterations must be positive")
    results: dict[int, float] = {}
    for depth in depths:
        if depth < 0:
            raise ConfigError("depths must be non-negative")
        loader = loader_factory(depth)
        report = loader.run(iterations, warmup=warmup)
        results[depth] = report.aggregation_time
    return results


def best_window_depth(measurements: dict[int, float]) -> int:
    """Depth with the lowest measured aggregation time."""
    if not measurements:
        raise ConfigError("measurements must not be empty")
    return min(measurements, key=measurements.__getitem__)
