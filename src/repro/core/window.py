"""Window buffering: mini-batch look-ahead for the GPU software cache.

The window buffer holds the sampled node-ID (page) lists of the next ``W``
iterations (Section 3.4, Fig. 6).  When a freshly sampled iteration enters
the window, every page it references gets one future-reuse unit registered
in the GPU software cache, moving resident lines into the "USE" state so
they cannot be evicted; when the iteration is eventually aggregated, each
access consumes one unit and lines whose counters reach zero become
evictable again.

The buffer itself only stores sampled mini-batches — several megabytes of
node IDs per iteration at paper scale — which is the GPU-memory cost the
paper's trade-off discussion refers to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..cache.gpu_cache import GPUSoftwareCache
from ..errors import CheckpointError, ConfigError
from ..sampling.minibatch import MiniBatch


@dataclass(frozen=True)
class WindowEntry:
    """One pre-sampled iteration waiting in the window.

    ``payload`` carries loader-specific bookkeeping (e.g. redirect counts
    computed at sampling time) through the FIFO untouched.
    """

    batch: MiniBatch
    pages: np.ndarray
    payload: object = None


class WindowBuffer:
    """A FIFO of pre-sampled iterations wired to a GPU software cache.

    Args:
        cache: the cache whose pinning state this window drives.
        depth: look-ahead depth ``W``; 0 disables window buffering (the
            cache then runs its plain eviction policy).
        tracer: optional telemetry tracer; pin/unpin traffic is recorded
            as instants on the ``"window"`` lane at request detail.
    """

    def __init__(
        self, cache: GPUSoftwareCache, depth: int, tracer=None
    ) -> None:
        if depth < 0:
            raise ConfigError("window depth must be non-negative")
        self.cache = cache
        self.depth = depth
        self.tracer = tracer
        self._entries: deque[WindowEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= max(self.depth, 1)

    def push(
        self, batch: MiniBatch, pages: np.ndarray, payload: object = None
    ) -> None:
        """Add a freshly sampled iteration to the window.

        Registers the iteration's pages with the cache so reusable lines
        are pinned (steps 1-5 of Fig. 6).  With depth 0 the registration is
        skipped and the window degenerates to a plain FIFO of size one.
        """
        entry = WindowEntry(
            batch=batch, pages=np.asarray(pages, np.int64), payload=payload
        )
        if self.depth > 0:
            self.cache.register_future(entry.pages)
        self._entries.append(entry)
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            tracer.instant(
                "window.pin",
                "window",
                pages=int(entry.pages.size),
                queued=len(self._entries),
            )

    def pop(self) -> WindowEntry:
        """Remove and return the oldest iteration for aggregation.

        The subsequent cache accesses for the entry's pages consume the
        future-reuse units registered at push time — the caller must access
        exactly ``entry.pages`` once.
        """
        if not self._entries:
            raise ConfigError("window buffer is empty")
        entry = self._entries.popleft()
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            tracer.instant(
                "window.pop",
                "window",
                pages=int(entry.pages.size),
                queued=len(self._entries),
            )
        return entry

    def drain(self) -> None:
        """Drop all queued iterations, un-registering their reuse units.

        Used at the end of a measured run so pinned lines do not leak into
        subsequent experiments.
        """
        tracer = self.tracer
        while self._entries:
            entry = self._entries.popleft()
            if self.depth > 0:
                self.cache.forget_future(entry.pages)
            if tracer is not None and tracer.want_request_detail:
                tracer.instant(
                    "window.unpin", "window", pages=int(entry.pages.size)
                )

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the queued (pre-sampled, not yet aggregated) iterations.

        The reuse units these entries registered live in the *cache's*
        snapshot; only the FIFO contents are captured here.
        """
        return {
            "depth": self.depth,
            "entries": [
                {
                    "batch": entry.batch.state_dict(),
                    "pages": entry.pages.copy(),
                    "payload": entry.payload,
                }
                for entry in self._entries
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore queued entries *without* re-registering their reuse units.

        The paired cache snapshot already holds the registration counts, so
        pushing through :meth:`push` here would double-pin every page.
        """
        if state.get("depth") != self.depth:
            raise CheckpointError(
                f"checkpoint window depth {state.get('depth')} does not "
                f"match configured {self.depth}"
            )
        self._entries = deque(
            WindowEntry(
                batch=MiniBatch.from_state_dict(entry["batch"]),
                pages=np.asarray(entry["pages"], dtype=np.int64),
                payload=entry["payload"],
            )
            for entry in state["entries"]
        )
