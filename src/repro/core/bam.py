"""The BaM dataloader baseline: direct storage access without GIDS.

The paper's "BaM dataloader" integrates the BaM system into the DGL
dataloader (Section 4.1): GPU threads fetch feature pages directly from
storage through the BaM software cache with random eviction, but none of
GIDS's techniques are active — no dynamic storage access accumulator, no
constant CPU buffer, no window buffering.  Expressed here as a
:class:`~repro.core.gids.GIDSDataLoader` with those features disabled, so
the two loaders share every other code path and their comparison (Figs. 9,
13-15) isolates exactly the paper's contribution.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import LoaderConfig
from .gids import GIDSDataLoader


class BaMDataLoader(GIDSDataLoader):
    """Plain-BaM dataloader (GPU cache only, per-iteration storage batches).

    Accepts the same ``fault_plan``/``retry_policy`` keywords as the GIDS
    loader: both share the storage-path fault injection, retry/backoff and
    degraded-mode fallback, so resilience benchmarks compare the loaders
    under identical fault sequences.
    """

    name = "BaM"

    def __init__(self, dataset, system, config=None, **kwargs) -> None:
        base = config if config is not None else LoaderConfig()
        bam_config = replace(
            base,
            accumulator_enabled=False,
            cpu_buffer_fraction=0.0,
            window_depth=0,
        )
        super().__init__(dataset, system, bam_config, **kwargs)
