"""Elastic multi-GPU sharded training with failure domains (extension).

The paper evaluates a single GPU; LSM-GNN (the sequel, same authors) shows
the multi-GPU design point: every GPU keeps a private software cache over
the shared SSD array, and before paying an SSD read a GPU checks its
*peers'* caches over the NVLink/PCIe interconnect — peer-cache hits replace
redundant storage reads.  This module builds that fleet in modeled time
and, on top of it, the robustness a production fleet needs:

* **Partition-aware sharding** — training seeds are split across GPUs
  along graph partitions (:func:`~repro.core.multi_gpu.partition_shards`),
  so each worker's cache sees a coherent neighborhood.
* **Failure domains** — a :class:`~repro.faults.plan.WorkerEvent` dropout
  removes a worker mid-epoch; its remaining batches are re-assigned to the
  survivors deterministically, and a later recovery event re-admits the
  worker with a cold cache and a fair share of the remaining work.
* **Straggler mitigation** — per-worker modeled-time skew (a degraded
  local PCIe/SSD path) is detected against the fleet median, and bounded
  work-stealing moves queued batches from the straggler to the fastest
  survivor.
* **Breaker-guarded peer reads** — each worker is fronted by a PR 6
  :class:`~repro.serving.breaker.CircuitBreaker`; probes into a dropped or
  pathologically slow peer fail, the breaker opens, and subsequent reads
  short-circuit straight to SSD instead of stalling the fleet.
* **Coordinated checkpoints** — :meth:`ElasticFleetTrainer.state_dict`
  captures a consistent cut across every worker plus the shared model,
  breakers and schedule at a global-step boundary, so a fleet-wide kill
  and resume is bit-identical.
* **Deterministic replay** — the executed schedule (which worker trained
  which batch at which step) fully determines the loss trajectory:
  :func:`replay_schedule` re-runs only the training math and reproduces
  the losses bit-for-bit, which is how the chaos harness
  (:func:`run_chaos_suite`) proves no seed was lost or double-trained.

Determinism is anchored by giving every *batch* (not worker) its own
sampling RNG stream derived from ``(fleet seed, batch index)``: a batch
produces the same minibatch no matter which worker executes it, so
rebalancing and work-stealing change *where* work runs, never *what* runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from ..config import SystemConfig
from ..errors import CheckpointError, ConfigError, PipelineError
from ..faults.array import FaultySSDArray
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, WorkerEvent
from ..graph.datasets import ScaledDataset
from ..pipeline.metrics import (
    IterationMetrics,
    RunReport,
    StageTimes,
)
from ..sampling.neighbor import NeighborSampler
from ..serving.breaker import BreakerBoard
from ..serving.config import ServingConfig
from ..sim.counters import TransferCounters
from ..sim.gpu import GPUModel
from ..sim.ssd import SSDArray
from ..storage.feature_store import FeatureStore
from ..storage_ha import StorageHA
from ..training.graphsage import (
    GraphSAGE,
    average_gradients,
    synthetic_labels,
)
from ..telemetry.context import TraceContext, step_trace_id
from ..telemetry.tracks import (
    FLEET_ALLREDUCE_TRACK,
    FLEET_EVENTS_TRACK,
    declare_track,
)
from .multi_gpu import contended_ssd, partition_shards, shard_train_ids

#: Loader name fleet runs export under.
FLEET_LOADER_NAME = "GIDS-fleet"


@dataclass(frozen=True)
class InterconnectSpec:
    """The GPU-to-GPU link peer-cache reads travel over.

    Defaults model an NVLink 3.0 pair: far lower latency than an SSD read
    and bandwidth well above the PCIe storage path — which is why a peer
    hit beats a redundant SSD read (LSM-GNN's core claim).
    """

    name: str = "NVLink 3.0"
    bandwidth_bytes: float = 100e9
    latency_s: float = 5e-6
    #: Modeled cost of a probe into a peer that never answers (dropped or
    #: pathologically slow); the breaker exists to stop paying this.
    probe_timeout_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.bandwidth_bytes <= 0:
            raise ConfigError("interconnect bandwidth must be positive")
        if self.latency_s < 0 or self.probe_timeout_s < 0:
            raise ConfigError("interconnect times must be non-negative")

    def transfer_time(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` from a peer's cache, one hop."""
        if n_bytes < 0:
            raise ConfigError("byte count must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth_bytes


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the elastic fleet.

    Args:
        num_gpus: data-parallel width.
        batch_size: training seeds per mini-batch per worker.
        shard_mode: ``"partition"`` (graph-partition-aware, the default)
            or ``"hash"`` (rendezvous-hash sharding).
        peer_cache: enable the peer-cache tier; off, every local cache
            miss goes to the shared SSD array (the contention baseline).
        interconnect: the peer-read link model.
        straggler_threshold: a worker whose step time exceeds the fleet
            median by this factor is suspect.
        straggler_patience: consecutive suspect steps before the worker is
            flagged and stolen from.
        steal_fraction: fraction of a flagged straggler's queued batches
            moved per steal (bounded work-stealing).
        max_steals_per_victim: hard cap on how often one worker can be
            stolen from (keeps the rebalancer itself bounded).
        peer_sick_factor: a peer whose I/O slowdown reaches this factor
            serves probes too slowly to count; probes into it fail and
            feed its breaker.
        breaker_window / breaker_threshold / breaker_min_samples /
        breaker_cooldown_s / breaker_probes: the PR 6 circuit-breaker
            knobs, applied per peer.
    """

    num_gpus: int = 2
    batch_size: int = 64
    shard_mode: str = "partition"
    peer_cache: bool = True
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    straggler_threshold: float = 1.75
    straggler_patience: int = 3
    steal_fraction: float = 0.5
    max_steals_per_victim: int = 2
    peer_sick_factor: float = 4.0
    breaker_window: int = 64
    breaker_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_cooldown_s: float = 0.02
    breaker_probes: int = 3

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigError("num_gpus must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.shard_mode not in ("partition", "hash"):
            raise ConfigError(
                f"unknown shard_mode {self.shard_mode!r}; expected "
                "'partition' or 'hash'"
            )
        if self.straggler_threshold <= 1.0:
            raise ConfigError("straggler_threshold must exceed 1")
        if self.straggler_patience <= 0:
            raise ConfigError("straggler_patience must be positive")
        if not 0.0 < self.steal_fraction <= 1.0:
            raise ConfigError("steal_fraction must be in (0, 1]")
        if self.max_steals_per_victim < 0:
            raise ConfigError("max_steals_per_victim must be non-negative")
        if self.peer_sick_factor <= 1.0:
            raise ConfigError("peer_sick_factor must exceed 1")

    def breaker_config(self) -> ServingConfig:
        """The serving config carrying this fleet's breaker knobs."""
        return ServingConfig(
            breaker_window=self.breaker_window,
            breaker_threshold=self.breaker_threshold,
            breaker_min_samples=self.breaker_min_samples,
            breaker_cooldown_s=self.breaker_cooldown_s,
            breaker_probes=self.breaker_probes,
        )


class _Worker:
    """One modeled GPU worker: cache, queue, health, counters."""

    def __init__(self, index: int, cache_lines: int, seed: int) -> None:
        self.index = index
        self.cache_lines = cache_lines
        self.seed = seed
        self.generation = 0
        self.cache = self._fresh_cache()
        self.active = True
        self.slow_factor = 1.0
        self.queue: deque[int] = deque()
        self.skew_streak = 0
        self.times_stolen_from = 0
        self.last_step_s: float | None = None
        self.counters = {
            "iterations": 0,
            "seeds_trained": 0,
            "ssd_pages": 0,
            "peer_hit_pages": 0,
            "cache_hit_pages": 0,
            "peer_probe_failures": 0,
            "stolen_in": 0,
            "stolen_out": 0,
            "busy_s": 0.0,
        }

    def _fresh_cache(self):
        from ..cache.gpu_cache import GPUSoftwareCache

        rng = np.random.default_rng(
            [self.seed, 0xCAC4E, self.index, self.generation]
        )
        return GPUSoftwareCache(self.cache_lines, seed=rng)

    def reset_cache(self) -> None:
        """Cold-start the cache (a recovered worker lost its HBM)."""
        self.generation += 1
        self.cache = self._fresh_cache()

    @property
    def name(self) -> str:
        return f"gpu:{self.index}"

    def state_dict(self) -> dict:
        return {
            "index": self.index,
            "generation": self.generation,
            "active": self.active,
            "slow_factor": self.slow_factor,
            "queue": [int(b) for b in self.queue],
            "skew_streak": self.skew_streak,
            "times_stolen_from": self.times_stolen_from,
            "last_step_s": self.last_step_s,
            "counters": dict(self.counters),
            "cache": self.cache.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state["index"]) != self.index:
            raise CheckpointError(
                f"worker snapshot index {state['index']} loaded into "
                f"worker {self.index}"
            )
        self.generation = int(state["generation"])
        self.active = bool(state["active"])
        self.slow_factor = float(state["slow_factor"])
        self.queue = deque(int(b) for b in state["queue"])
        self.skew_streak = int(state["skew_streak"])
        self.times_stolen_from = int(state["times_stolen_from"])
        last = state["last_step_s"]
        self.last_step_s = None if last is None else float(last)
        counters = dict(state["counters"])
        counters["busy_s"] = float(counters["busy_s"])
        for key in self.counters:
            if key != "busy_s":
                counters[key] = int(counters[key])
        self.counters = counters
        self.cache = self._fresh_cache()
        self.cache.load_state_dict(state["cache"])


@dataclass(frozen=True)
class FleetResult:
    """Everything an elastic epoch produced, replayable and exportable."""

    num_gpus: int
    losses: tuple[float, ...]
    epoch_time_s: float
    completed: bool
    report: RunReport
    schedule: tuple[tuple[tuple[int, int], ...], ...]
    batches: tuple[np.ndarray, ...]
    worker_stats: tuple[dict, ...]
    rebalance_events: tuple[dict, ...]
    steal_events: tuple[dict, ...]
    fired_events: tuple[dict, ...]
    breaker_transitions: tuple[dict, ...]
    config: dict

    @property
    def final_loss(self) -> float | None:
        return self.losses[-1] if self.losses else None

    @property
    def trained_batch_ids(self) -> list[int]:
        return [b for step in self.schedule for _, b in step]

    def trained_seeds(self) -> np.ndarray:
        """Every seed id trained, duplicates preserved."""
        ids = self.trained_batch_ids
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.batches[b] for b in ids])

    @property
    def peer_cache_hit_ratio(self) -> float:
        """Peer hits over all pages that missed the local cache."""
        peer = sum(w["peer_hit_pages"] for w in self.worker_stats)
        ssd = sum(w["ssd_pages"] for w in self.worker_stats)
        total = peer + ssd
        return peer / total if total else 0.0

    @property
    def total_ssd_pages(self) -> int:
        return sum(w["ssd_pages"] for w in self.worker_stats)

    def fleet_block(self) -> dict:
        """The schema-v8 ``fleet`` export block."""
        return {
            "num_gpus": self.num_gpus,
            "completed": self.completed,
            "epoch_time_s": self.epoch_time_s,
            "global_steps": len(self.schedule),
            "final_loss": self.final_loss,
            "peer_cache_hit_ratio": self.peer_cache_hit_ratio,
            "workers": [dict(w) for w in self.worker_stats],
            "rebalance_events": [dict(e) for e in self.rebalance_events],
            "steal_events": [dict(e) for e in self.steal_events],
            "worker_events": [dict(e) for e in self.fired_events],
            "breaker_transitions": [
                dict(t) for t in self.breaker_transitions
            ],
            "config": dict(self.config),
        }


class ElasticFleetTrainer:
    """Data-parallel GraphSAGE training over an elastic modeled GPU fleet.

    Args:
        dataset: the shared graph dataset.
        system: hardware configuration; the SSD array is shared across the
            fleet (per-step contention divides its IOPS among the workers
            aggregating that step), PCIe links and GPU caches are private.
        fleet: the :class:`FleetConfig`.
        seed: root seed; sampling, sharding, cache eviction and model
            initialization all derive private streams from it.
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`; its
            ``worker_events`` drive GPU dropout/recovery/straggle, and its
            ``device_events`` degrade the shared SSD array via the PR 1
            fault machinery.
        fanouts: sampler fanouts (also the GNN depth).
        gpu_cache_bytes: per-worker private cache size.
        hidden_dim / num_classes / lr: model hyper-parameters.
        label_seed: seed of the synthetic-label projection.
        tracer: optional telemetry tracer (per-worker step spans on
            ``fleet.gpu<k>`` tracks, lifecycle instants on
            ``fleet.events``, breaker transitions on the PR 6 track).
    """

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        fleet: FleetConfig | None = None,
        *,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        fanouts: tuple[int, ...] = (5, 5),
        gpu_cache_bytes: float = 64e6,
        hidden_dim: int = 32,
        num_classes: int = 8,
        lr: float = 0.05,
        label_seed: int = 0,
        replication: int = 1,
        parity: bool = False,
        rebuild_iops: float = 0.0,
        tracer=None,
    ) -> None:
        self.dataset = dataset
        self.system = system
        self.fleet = fleet if fleet is not None else FleetConfig()
        self.seed = seed
        self.fanouts = tuple(int(f) for f in fanouts)
        self.hidden_dim = hidden_dim
        self.num_classes = num_classes
        self.lr = lr
        self.label_seed = label_seed
        self.tracer = tracer
        #: optional live :class:`~repro.telemetry.snapshot
        #: .MetricsSnapshotter`, polled at each global-step barrier.
        self.snapshotter = None
        # Per-worker span lanes are dynamic; declare them so strict
        # tracers accept the fleet's tracks.
        for index in range(self.fleet.num_gpus):
            declare_track(f"fleet.gpu{index}")

        self.store = FeatureStore(
            dataset.num_nodes,
            dataset.feature_dim,
            page_bytes=system.ssd.page_bytes,
        )
        self.layout = self.store.layout
        self.gpu = GPUModel(system.gpu)
        self.model = GraphSAGE(
            in_dim=dataset.feature_dim,
            hidden_dim=hidden_dim,
            num_classes=num_classes,
            num_layers=len(self.fanouts),
            lr=lr,
            seed=seed,
        )

        # Worker-scoped events come from the fault plan; device events
        # degrade the shared array through the PR 1 machinery.
        self.fault_plan = fault_plan
        self._events: list[WorkerEvent] = []
        self.fault_array: FaultySSDArray | None = None
        base_array = SSDArray(system.ssd, system.num_ssds)
        if fault_plan is not None:
            for event in fault_plan.worker_events:
                if event.worker >= self.fleet.num_gpus:
                    raise ConfigError(
                        f"worker event targets {event.target} but the "
                        f"fleet has {self.fleet.num_gpus} workers"
                    )
            self._events = sorted(
                fault_plan.worker_events,
                key=lambda e: (e.at_time_s, e.worker),
            )
            if fault_plan.device_events:
                self.fault_array = FaultySSDArray(
                    base_array, FaultInjector(fault_plan)
                )
        self._base_array = base_array

        # Storage HA over the shared array: pay-for-what-you-use — the
        # defaults keep the fleet's storage accounting bit-identical.
        self.storage_ha: StorageHA | None = None
        if replication > 1 or parity or rebuild_iops > 0:
            self.storage_ha = StorageHA(
                num_devices=system.num_ssds,
                base_latency_s=system.ssd.read_latency_s,
                replication=replication,
                parity=parity,
                rebuild_iops=rebuild_iops,
                total_pages=self.layout.total_pages,
                fault_array=self.fault_array,
                tracer=tracer,
            )

        cache_lines = int(gpu_cache_bytes // self.layout.page_bytes)
        self.workers = [
            _Worker(k, cache_lines, seed)
            for k in range(self.fleet.num_gpus)
        ]
        self.breakers = BreakerBoard(
            self.fleet.num_gpus, self.fleet.breaker_config()
        )

        # ----- epoch schedule: shards -> fixed global batch list --------
        if self.fleet.shard_mode == "partition":
            shards = partition_shards(
                dataset, self.fleet.num_gpus, seed=seed
            )
        else:
            shards = shard_train_ids(
                dataset.train_ids, self.fleet.num_gpus, seed=seed
            )
        self.batches: list[np.ndarray] = []
        for k, shard in enumerate(shards):
            rng = np.random.default_rng([seed, 0x0B47C4, k])
            order = rng.permutation(len(shard))
            for start in range(0, len(shard), self.fleet.batch_size):
                batch = np.sort(shard[order[start:start + self.fleet.batch_size]])
                self.workers[k].queue.append(len(self.batches))
                self.batches.append(batch)

        self.clock_s = 0.0
        self.step_index = 0
        self._event_cursor = 0
        self.losses: list[float] = []
        self.schedule: list[list[tuple[int, int]]] = []
        self.rebalance_events: list[dict] = []
        self.steal_events: list[dict] = []
        self.fired_events: list[dict] = []
        self.report = RunReport(loader_name=FLEET_LOADER_NAME)
        self._param_bytes = sum(
            p.w_self.nbytes + p.w_neigh.nbytes + p.bias.nbytes
            for p in self.model.layers
        )

    # ------------------------------------------------------------------
    # Deterministic per-batch streams

    def _sample_batch(self, batch_index: int):
        """Sample batch ``batch_index``; identical on any worker, any run."""
        rng = np.random.default_rng([self.seed, 0x5A3B1E, batch_index])
        sampler = NeighborSampler(
            self.dataset.graph, self.fanouts, seed=rng
        )
        return sampler.sample(self.batches[batch_index])

    # ------------------------------------------------------------------
    # Elasticity: events, rebalancing, stealing

    def _active_workers(self) -> list[_Worker]:
        return [w for w in self.workers if w.active]

    def _remaining_batches(self) -> int:
        return sum(len(w.queue) for w in self.workers)

    def _instant(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                name, FLEET_EVENTS_TRACK, at_s=self.clock_s, **args
            )

    def _fire_due_events(self) -> None:
        while (
            self._event_cursor < len(self._events)
            and self._events[self._event_cursor].at_time_s <= self.clock_s
        ):
            event = self._events[self._event_cursor]
            self._event_cursor += 1
            worker = self.workers[event.worker]
            record = {
                "worker": event.worker,
                "kind": event.kind,
                "at_s": self.clock_s,
                "planned_at_s": event.at_time_s,
            }
            if event.kind == "dropout" and worker.active:
                worker.active = False
                worker.slow_factor = 1.0
                worker.skew_streak = 0
                self._redistribute(worker, reason="dropout")
            elif event.kind == "recovery" and not worker.active:
                worker.active = True
                worker.slow_factor = 1.0
                worker.reset_cache()
                self._steal_back(worker)
            elif event.kind == "straggle":
                worker.slow_factor = event.factor
                record["factor"] = event.factor
            elif event.kind == "recovery" and worker.active:
                # Recovery of a straggler: the degraded path healed.
                worker.slow_factor = 1.0
            self.fired_events.append(record)
            self._instant(f"fleet.{event.kind}", **record)

    def _redistribute(self, source: _Worker, *, reason: str) -> None:
        """Hand ``source``'s queued batches to the active survivors.

        Round-robin over survivors in ascending index order — a pure
        function of the queue and fleet state, so a replayed or resumed
        run rebalances identically.
        """
        moved = list(source.queue)
        source.queue.clear()
        if not moved:
            return
        survivors = [w for w in self._active_workers() if w is not source]
        if not survivors:
            # Nobody to give the work to; the batches wait for a recovery.
            source.queue.extend(moved)
            return
        for i, batch in enumerate(moved):
            survivors[i % len(survivors)].queue.append(batch)
        event = {
            "at_s": self.clock_s,
            "reason": reason,
            "from": source.index,
            "to": [w.index for w in survivors],
            "batches_moved": len(moved),
        }
        self.rebalance_events.append(event)
        self._instant("fleet.rebalance", **event)

    def _steal_back(self, joined: _Worker) -> None:
        """A recovered worker reclaims a fair share of the remaining work."""
        donors = [w for w in self._active_workers() if w is not joined]
        remaining = sum(len(w.queue) for w in donors)
        if remaining == 0:
            return
        fair = remaining // (len(donors) + 1)
        taken = 0
        while taken < fair:
            donors.sort(key=lambda w: (-len(w.queue), w.index))
            donor = donors[0]
            if len(donor.queue) <= 1:
                break
            joined.queue.append(donor.queue.pop())
            taken += 1
        if taken:
            event = {
                "at_s": self.clock_s,
                "reason": "recovery",
                "from": [w.index for w in donors],
                "to": joined.index,
                "batches_moved": taken,
            }
            self.rebalance_events.append(event)
            self._instant("fleet.rebalance", **event)

    def _detect_stragglers(self, step_times: dict[int, float]) -> None:
        """Flag skewed workers and steal bounded work from them."""
        if len(step_times) < 2:
            return
        median = float(np.median(list(step_times.values())))
        if median <= 0:
            return
        for index, elapsed in sorted(step_times.items()):
            worker = self.workers[index]
            if elapsed > self.fleet.straggler_threshold * median:
                worker.skew_streak += 1
            else:
                worker.skew_streak = 0
                continue
            if worker.skew_streak < self.fleet.straggler_patience:
                continue
            if worker.times_stolen_from >= self.fleet.max_steals_per_victim:
                continue
            n_steal = int(len(worker.queue) * self.fleet.steal_fraction)
            if n_steal == 0:
                continue
            fastest = min(
                (
                    w
                    for w in self._active_workers()
                    if w.index != index and w.index in step_times
                ),
                key=lambda w: (step_times[w.index], w.index),
                default=None,
            )
            if fastest is None:
                continue
            moved = [worker.queue.pop() for _ in range(n_steal)]
            moved.reverse()
            fastest.queue.extend(moved)
            worker.times_stolen_from += 1
            worker.skew_streak = 0
            worker.counters["stolen_out"] += n_steal
            fastest.counters["stolen_in"] += n_steal
            event = {
                "at_s": self.clock_s,
                "from": index,
                "to": fastest.index,
                "batches_moved": n_steal,
                "skew": elapsed / median,
            }
            self.steal_events.append(event)
            self._instant("fleet.steal", **event)

    # ------------------------------------------------------------------
    # The peer-cache tier

    def _serve_pages(
        self, worker: _Worker, pages: np.ndarray, n_active: int
    ) -> tuple[float, float, float, int, int, int]:
        """Serve one batch's pages through cache -> peers -> SSD.

        Returns ``(hbm_s, peer_s, ssd_s, n_hits, n_peer, n_ssd,
        ha_route)``; ``ha_route`` is the storage-HA routing outcome (or
        ``None`` when redundancy is off).
        """
        page_bytes = self.layout.page_bytes
        hit_mask = worker.cache.access(pages)
        n_hits = int(hit_mask.sum())
        hbm_s = self.gpu.hbm_read_time(n_hits * page_bytes)

        remaining = pages[~hit_mask]
        peer_s = 0.0
        n_peer = 0
        if self.fleet.peer_cache and len(self.workers) > 1:
            order = [
                (worker.index + off) % len(self.workers)
                for off in range(1, len(self.workers))
            ]
            for peer_index in order:
                if len(remaining) == 0:
                    break
                peer = self.workers[peer_index]
                breaker = self.breakers[peer_index]
                if not breaker.allows_storage(self.clock_s, self.tracer):
                    continue  # open: short-circuit straight to SSD
                sick = (
                    not peer.active
                    or peer.slow_factor >= self.fleet.peer_sick_factor
                )
                if sick:
                    # The probe times out; the breaker learns the peer is
                    # gone and stops the fleet paying this again.
                    peer_s += self.fleet.interconnect.probe_timeout_s
                    worker.counters["peer_probe_failures"] += len(remaining)
                    breaker.record(
                        0, len(remaining), self.clock_s, self.tracer
                    )
                    continue
                found = np.fromiter(
                    (int(p) in peer.cache for p in remaining),
                    dtype=bool,
                    count=len(remaining),
                )
                n_found = int(found.sum())
                breaker.record(
                    len(remaining), 0, self.clock_s, self.tracer
                )
                if n_found:
                    peer_s += (
                        self.fleet.interconnect.transfer_time(
                            n_found * page_bytes
                        )
                        * peer.slow_factor
                    )
                    n_peer += n_found
                    remaining = remaining[~found]

        n_ssd = len(remaining)
        ha_route = None
        if self.fault_array is not None:
            self.fault_array.advance_to(self.clock_s)
            effective = self.fault_array.effective()
            array = dc_replace(
                effective, spec=contended_ssd(effective.spec, n_active)
            )
        else:
            array = SSDArray(
                contended_ssd(self.system.ssd, n_active),
                self.system.num_ssds,
            )
        n_service = n_ssd
        if self.storage_ha is not None and self.fault_array is not None:
            # Route the batch through the redundancy layout: pages behind
            # an unavailable device come off replicas (counted) or cost
            # parity member reads (added to device service).
            self.storage_ha.advance(self.clock_s)
            if n_ssd:
                ha_route = self.storage_ha.route(remaining)
                n_service += ha_route.extra_service_reads
        ssd_s = array.batch_service_time(n_service) if n_service else 0.0

        worker.counters["cache_hit_pages"] += n_hits
        worker.counters["peer_hit_pages"] += n_peer
        worker.counters["ssd_pages"] += n_ssd
        return hbm_s, peer_s, ssd_s, n_hits, n_peer, n_ssd, ha_route

    # ------------------------------------------------------------------
    # The global step

    def _has_work(self) -> bool:
        return self._remaining_batches() > 0

    def _next_event_time(self) -> float | None:
        if self._event_cursor < len(self._events):
            return self._events[self._event_cursor].at_time_s
        return None

    def _run_step(self) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            # Root one causal chain per global step: breaker probes, HA
            # routing, rebalance/steal instants and the per-GPU step spans
            # all land in the same trace.
            ctx = TraceContext(
                step_trace_id("fleet", self.step_index), origin="fleet"
            )
            with tracer.context(ctx):
                self._step_impl()
        else:
            self._step_impl()
        if self.snapshotter is not None:
            self.snapshotter.poll(self.clock_s)

    def _step_impl(self) -> None:
        self._fire_due_events()
        participants = [
            w for w in self._active_workers() if w.queue
        ]
        if not participants:
            pending = self._next_event_time()
            if pending is None:
                raise PipelineError(
                    "fleet stalled: batches remain but every worker is "
                    "dropped and no recovery event is pending"
                )
            # Idle until the next scheduled event (e.g. a recovery).
            self.clock_s = max(self.clock_s, pending)
            self._fire_due_events()
            participants = [w for w in self._active_workers() if w.queue]
            if not participants:
                return  # another event may still unblock us next call
        n_active = len(participants)
        page_bytes = self.layout.page_bytes
        step_start = self.clock_s

        assignments: list[tuple[int, int]] = []
        step_times: dict[int, float] = {}
        step_losses: list[float] = []
        grads_list = []
        stage_max = StageTimes()
        counters = TransferCounters()
        work_stats = []

        for worker in participants:
            batch_index = worker.queue.popleft()
            minibatch = self._sample_batch(batch_index)
            sampling_s = self.gpu.sampling_time(
                minibatch.num_sampled, n_kernels=len(self.fanouts)
            )
            pages = self.layout.pages_for_nodes(minibatch.input_nodes)
            hbm_s, peer_s, ssd_s, n_hits, n_peer, n_ssd, ha_route = (
                self._serve_pages(worker, pages, n_active)
            )
            transfer_s = n_ssd * page_bytes / self.system.pcie.bandwidth_bytes
            training_s = self.gpu.training_time(minibatch.num_input_nodes)
            io_s = (peer_s + ssd_s + transfer_s + hbm_s) * worker.slow_factor
            elapsed = sampling_s + io_s + training_s

            features = self.store.fetch(minibatch.input_nodes)
            labels = synthetic_labels(
                self.store,
                minibatch.seeds,
                self.num_classes,
                seed=self.label_seed,
            )
            loss, grads = self.model.gradients(minibatch, features, labels)
            grads_list.append(grads)
            step_losses.append(loss)

            assignments.append((worker.index, batch_index))
            step_times[worker.index] = elapsed
            worker.last_step_s = elapsed
            worker.counters["iterations"] += 1
            worker.counters["seeds_trained"] += len(minibatch.seeds)
            worker.counters["busy_s"] += elapsed

            times = StageTimes(
                sampling=sampling_s,
                aggregation=(peer_s + ssd_s) * worker.slow_factor,
                transfer=(transfer_s + hbm_s) * worker.slow_factor,
                training=training_s,
            )
            stage_max.sampling = max(stage_max.sampling, times.sampling)
            stage_max.aggregation = max(
                stage_max.aggregation, times.aggregation
            )
            stage_max.transfer = max(stage_max.transfer, times.transfer)
            stage_max.training = max(stage_max.training, times.training)
            counters.storage_requests += n_ssd
            counters.storage_bytes += n_ssd * page_bytes
            counters.gpu_cache_hits += n_hits
            counters.gpu_cache_bytes += n_hits * page_bytes
            if ha_route is not None:
                counters.replica_redirects += ha_route.n_replica
                counters.parity_reconstructs += ha_route.n_reconstruct
                counters.reconstruct_reads += ha_route.reconstruct_reads
                counters.storage_bytes += (
                    ha_route.extra_service_reads * page_bytes
                )
            work_stats.append(
                (worker, minibatch, times, batch_index, elapsed)
            )

        # All-reduce: average in ascending worker order (participants are
        # already ordered), apply once per step — every model replica
        # stays bit-identical, so one shared copy suffices in the model.
        averaged = average_gradients(grads_list)
        self.model.apply_gradients(averaged)
        allreduce_s = 0.0
        if n_active > 1:
            allreduce_s = (
                2.0
                * (n_active - 1)
                / n_active
                * self._param_bytes
                / self.fleet.interconnect.bandwidth_bytes
            )
        self.losses.append(float(np.mean(step_losses)))
        self.schedule.append(assignments)

        step_time = max(step_times.values()) + allreduce_s
        if self.tracer is not None:
            for worker, minibatch, times, batch_index, elapsed in work_stats:
                self.tracer.record(
                    "fleet.step",
                    f"fleet.gpu{worker.index}",
                    start_s=step_start,
                    duration_s=elapsed,
                    batch=batch_index,
                    seeds=len(minibatch.seeds),
                )
            if allreduce_s:
                self.tracer.record(
                    "fleet.allreduce",
                    FLEET_ALLREDUCE_TRACK,
                    start_s=step_start + max(step_times.values()),
                    duration_s=allreduce_s,
                    workers=n_active,
                )

        totals = StageTimes(
            sampling=stage_max.sampling,
            aggregation=stage_max.aggregation,
            transfer=stage_max.transfer,
            training=stage_max.training + allreduce_s,
        )
        self.report.append(
            IterationMetrics(
                times=totals,
                num_seeds=sum(
                    len(mb.seeds) for _, mb, _, _, _ in work_stats
                ),
                num_input_nodes=sum(
                    mb.num_input_nodes for _, mb, _, _, _ in work_stats
                ),
                num_sampled=sum(
                    mb.num_sampled for _, mb, _, _, _ in work_stats
                ),
                num_edges=sum(
                    sum(len(layer.src) for layer in mb.layers)
                    for _, mb, _, _, _ in work_stats
                ),
                counters=counters,
            )
        )

        if self.storage_ha is not None:
            # Rebuild soaks the step's idle IOPS (scrubber economics).
            sweep = self.storage_ha.background_sweep(
                step_time, self.clock_s + step_time
            )
            if sweep is not None and sweep.pages_rebuilt:
                counters.rebuild_pages += sweep.pages_rebuilt

        self.clock_s += step_time
        self.step_index += 1
        self._detect_stragglers(step_times)

    def run_epoch(
        self,
        *,
        max_steps: int | None = None,
        checkpoint_store=None,
        checkpoint_every: int = 0,
    ) -> FleetResult:
        """Run (or resume) the epoch until every batch has been trained.

        Args:
            max_steps: stop after this many *additional* global steps
                (used by kill/resume tests to interrupt mid-epoch).
            checkpoint_store: optional
                :class:`~repro.checkpoint.store.CheckpointStore`; when
                given with ``checkpoint_every > 0``, a coordinated
                snapshot of the whole fleet is written every that many
                global steps — a consistent cut taken at the step barrier.
        """
        if checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be non-negative")
        steps_done = 0
        guard = 0
        limit = 10 * max(1, len(self.batches)) + len(self._events) + 16
        while self._has_work():
            if max_steps is not None and steps_done >= max_steps:
                break
            before = self.step_index
            self._run_step()
            guard += 1
            if guard > limit:
                raise PipelineError(
                    "fleet failed to make progress; event plan likely "
                    "leaves all workers dropped"
                )
            if self.step_index == before:
                continue  # idled to an event boundary, no step executed
            steps_done += 1
            if (
                checkpoint_store is not None
                and checkpoint_every > 0
                and self.step_index % checkpoint_every == 0
            ):
                checkpoint_store.save(self.step_index, self.state_dict())
        return self.result()

    def result(self) -> FleetResult:
        """Snapshot the run so far as an immutable result."""
        return FleetResult(
            num_gpus=self.fleet.num_gpus,
            losses=tuple(self.losses),
            epoch_time_s=self.clock_s,
            completed=not self._has_work(),
            report=self.report,
            schedule=tuple(tuple(step) for step in self.schedule),
            batches=tuple(self.batches),
            worker_stats=tuple(
                {"worker": w.index, "active": w.active, **w.counters}
                for w in self.workers
            ),
            rebalance_events=tuple(self.rebalance_events),
            steal_events=tuple(self.steal_events),
            fired_events=tuple(self.fired_events),
            breaker_transitions=tuple(self.breakers.transitions()),
            config={
                "num_gpus": self.fleet.num_gpus,
                "batch_size": self.fleet.batch_size,
                "shard_mode": self.fleet.shard_mode,
                "peer_cache": self.fleet.peer_cache,
                "seed": self.seed,
                "fanouts": list(self.fanouts),
                "hidden_dim": self.hidden_dim,
                "num_classes": self.num_classes,
                "lr": self.lr,
                "label_seed": self.label_seed,
            },
        )

    # ------------------------------------------------------------------
    # Coordinated checkpoint (consistent cut at the step barrier)

    def state_dict(self) -> dict:
        """A consistent cut across every worker and shared component."""
        return {
            "fleet": {
                "num_gpus": self.fleet.num_gpus,
                "batch_size": self.fleet.batch_size,
                "shard_mode": self.fleet.shard_mode,
                "peer_cache": self.fleet.peer_cache,
                "seed": self.seed,
                "num_batches": len(self.batches),
                "seed_checksum": int(
                    sum(int(b.sum()) for b in self.batches)
                ),
            },
            "clock_s": self.clock_s,
            "step_index": self.step_index,
            "event_cursor": self._event_cursor,
            "losses": list(self.losses),
            "schedule": [
                [[int(w), int(b)] for w, b in step]
                for step in self.schedule
            ],
            "rebalance_events": [dict(e) for e in self.rebalance_events],
            "steal_events": [dict(e) for e in self.steal_events],
            "fired_events": [dict(e) for e in self.fired_events],
            "model": self.model.state_dict(),
            "workers": [w.state_dict() for w in self.workers],
            "breakers": self.breakers.state_dict(),
            "fault_array": (
                None
                if self.fault_array is None
                else self.fault_array.state_dict()
            ),
            "storage_ha": (
                None
                if self.storage_ha is None
                else self.storage_ha.state_dict()
            ),
            "report": self.report.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a cut captured by :meth:`state_dict`."""
        meta = state.get("fleet")
        if not isinstance(meta, dict):
            raise CheckpointError("fleet snapshot missing 'fleet' block")
        for key, current in (
            ("num_gpus", self.fleet.num_gpus),
            ("batch_size", self.fleet.batch_size),
            ("shard_mode", self.fleet.shard_mode),
            ("peer_cache", self.fleet.peer_cache),
            ("seed", self.seed),
            ("num_batches", len(self.batches)),
            (
                "seed_checksum",
                int(sum(int(b.sum()) for b in self.batches)),
            ),
        ):
            if meta.get(key) != current:
                raise CheckpointError(
                    f"fleet snapshot {key}={meta.get(key)!r} does not "
                    f"match this fleet's {key}={current!r}"
                )
        self.clock_s = float(state["clock_s"])
        self.step_index = int(state["step_index"])
        self._event_cursor = int(state["event_cursor"])
        self.losses = [float(x) for x in state["losses"]]
        self.schedule = [
            [(int(w), int(b)) for w, b in step]
            for step in state["schedule"]
        ]
        self.rebalance_events = [dict(e) for e in state["rebalance_events"]]
        self.steal_events = [dict(e) for e in state["steal_events"]]
        self.fired_events = [dict(e) for e in state["fired_events"]]
        self.model.load_state_dict(state["model"])
        worker_states = state["workers"]
        if len(worker_states) != len(self.workers):
            raise CheckpointError(
                f"fleet snapshot has {len(worker_states)} workers, this "
                f"fleet has {len(self.workers)}"
            )
        for worker, snapshot in zip(self.workers, worker_states):
            worker.load_state_dict(snapshot)
        self.breakers.load_state_dict(state["breakers"])
        fault_state = state.get("fault_array")
        if (fault_state is None) != (self.fault_array is None):
            raise CheckpointError(
                "fleet snapshot and trainer disagree on device-fault state"
            )
        if self.fault_array is not None:
            self.fault_array.load_state_dict(fault_state)
        ha_state = state.get("storage_ha")
        if (ha_state is None) != (self.storage_ha is None):
            raise CheckpointError(
                "fleet snapshot and trainer disagree on storage-HA state"
            )
        if self.storage_ha is not None:
            self.storage_ha.load_state_dict(ha_state)
        self.report = RunReport.from_state_dict(state["report"])


def replay_schedule(
    dataset: ScaledDataset, result: FleetResult
) -> list[float]:
    """Re-execute a fleet result's schedule with training math only.

    The schedule — which batches ran in which global step, in which
    worker order — fully determines the loss trajectory: sampling RNG is
    per-batch, labels and features are pure functions of node ids, and
    gradient averaging follows the recorded order.  The returned losses
    are bit-identical to ``result.losses`` for any genuine result; the
    chaos harness uses the comparison as its replay invariant.
    """
    cfg = result.config
    model = GraphSAGE(
        in_dim=dataset.feature_dim,
        hidden_dim=int(cfg["hidden_dim"]),
        num_classes=int(cfg["num_classes"]),
        num_layers=len(cfg["fanouts"]),
        lr=float(cfg["lr"]),
        seed=int(cfg["seed"]),
    )
    store = FeatureStore(dataset.num_nodes, dataset.feature_dim)
    fanouts = tuple(int(f) for f in cfg["fanouts"])
    seed = int(cfg["seed"])
    losses = []
    for step in result.schedule:
        grads_list = []
        step_losses = []
        for _, batch_index in step:
            rng = np.random.default_rng([seed, 0x5A3B1E, batch_index])
            sampler = NeighborSampler(dataset.graph, fanouts, seed=rng)
            minibatch = sampler.sample(result.batches[batch_index])
            features = store.fetch(minibatch.input_nodes)
            labels = synthetic_labels(
                store,
                minibatch.seeds,
                int(cfg["num_classes"]),
                seed=int(cfg["label_seed"]),
            )
            loss, grads = model.gradients(minibatch, features, labels)
            grads_list.append(grads)
            step_losses.append(loss)
        model.apply_gradients(average_gradients(grads_list))
        losses.append(float(np.mean(step_losses)))
    return losses


def check_invariants(
    dataset: ScaledDataset, result: FleetResult
) -> list[str]:
    """The chaos harness's invariants; returns violations (empty = pass).

    * every training seed trained exactly once (none lost to a dropout,
      none double-trained by a rebalance or steal);
    * the loss trajectory equals a deterministic replay of the executed
      schedule, bit for bit.
    """
    violations: list[str] = []
    if not result.completed:
        violations.append("epoch did not complete")
    trained = result.trained_seeds()
    expected = np.sort(np.asarray(dataset.train_ids, dtype=np.int64))
    if len(trained) != len(expected):
        violations.append(
            f"trained {len(trained)} seeds, expected {len(expected)}"
        )
    unique = np.unique(trained)
    if len(unique) != len(trained):
        violations.append(
            f"{len(trained) - len(unique)} seeds trained more than once"
        )
    if not np.array_equal(np.sort(trained), expected):
        violations.append("trained seed set differs from the train set")
    replayed = replay_schedule(dataset, result)
    if list(result.losses) != replayed:
        violations.append(
            "loss trajectory diverges from the schedule replay"
        )
    return violations


def _chaos_plan(
    scenario: str, epoch_time_s: float, num_gpus: int, seed: int
) -> FaultPlan | None:
    """The fault plan a chaos scenario injects, timed mid-epoch."""
    mid = 0.35 * epoch_time_s
    early = 0.15 * epoch_time_s
    if scenario == "baseline":
        return None
    if scenario == "dropout":
        return FaultPlan(
            seed=seed,
            worker_events=(
                WorkerEvent(worker=1 % num_gpus, kind="dropout",
                            at_time_s=mid),
            ),
        )
    if scenario == "dropout+recovery":
        return FaultPlan(
            seed=seed,
            worker_events=(
                WorkerEvent(worker=1 % num_gpus, kind="dropout",
                            at_time_s=early),
                WorkerEvent(worker=1 % num_gpus, kind="recovery",
                            at_time_s=mid),
            ),
        )
    if scenario == "straggler":
        return FaultPlan(
            seed=seed,
            worker_events=(
                WorkerEvent(
                    worker=(num_gpus - 1), kind="straggle",
                    at_time_s=early, factor=8.0,
                ),
            ),
        )
    if scenario == "dropout+straggler":
        return FaultPlan(
            seed=seed,
            worker_events=(
                WorkerEvent(worker=1 % num_gpus, kind="dropout",
                            at_time_s=mid),
                WorkerEvent(
                    worker=(num_gpus - 1), kind="straggle",
                    at_time_s=early, factor=8.0,
                ),
            ),
        )
    if scenario == "corruption-storm":
        # A media storm on the shared array: the fleet's modeled schedule
        # must not care (feature integrity is the single-GPU loaders'
        # verify-on-read concern) — the invariants still have to hold.
        from ..faults.plan import CorruptionEvent

        return FaultPlan(
            seed=seed,
            corruption_events=(
                CorruptionEvent(device=0, at_time_s=early,
                                page_fraction=0.05),
            ),
        )
    raise ConfigError(f"unknown chaos scenario {scenario!r}")


#: Scenarios :func:`run_chaos_suite` sweeps by default.
CHAOS_SCENARIOS = (
    "baseline",
    "dropout",
    "dropout+recovery",
    "straggler",
    "dropout+straggler",
    "corruption-storm",
)


def run_chaos_suite(
    dataset: ScaledDataset,
    system: SystemConfig,
    *,
    num_gpus: int = 4,
    seed: int = 0,
    scenarios: tuple[str, ...] = CHAOS_SCENARIOS,
    fleet: FleetConfig | None = None,
    resume_probe_step: int | None = None,
) -> dict:
    """Sweep failure scenarios and assert the fleet's invariants.

    Every scenario runs a full epoch under its fault plan and checks:
    exactly-once seed training, bit-identical schedule replay, and a
    bit-identical fleet-wide kill/resume at a mid-epoch step.  Scenario
    extras: a dropout must trigger a rebalance; a straggler must trigger
    a bounded steal.

    Returns a report dict with per-scenario verdicts; ``report["passed"]``
    is the overall result.
    """
    if fleet is None:
        # Enough batches per worker (~8) that mid-epoch events land
        # mid-epoch and a flagged straggler still has work to steal.
        batch_size = max(1, len(dataset.train_ids) // (num_gpus * 8))
        fleet = FleetConfig(
            num_gpus=num_gpus,
            batch_size=batch_size,
            straggler_patience=2,
            breaker_min_samples=4,
        )

    def build(plan: FaultPlan | None) -> ElasticFleetTrainer:
        return ElasticFleetTrainer(
            dataset, system, fleet, seed=seed, fault_plan=plan
        )

    # Probe run: scenario event times are fractions of the healthy epoch.
    baseline = build(None).run_epoch()
    epoch_time = baseline.epoch_time_s

    results: dict[str, dict] = {}
    for scenario in scenarios:
        plan = _chaos_plan(scenario, epoch_time, num_gpus, seed)
        trainer = build(plan)
        outcome = trainer.run_epoch()
        violations = check_invariants(dataset, outcome)

        if "dropout" in scenario and not outcome.rebalance_events:
            violations.append("dropout fired but nothing was rebalanced")
        if scenario == "straggler" and not outcome.steal_events:
            violations.append(
                "straggler configured but no work was stolen"
            )
        if scenario == "corruption-storm" and (
            outcome.losses != baseline.losses
        ):
            violations.append(
                "a media storm perturbed the fleet's loss trajectory"
            )

        # Fleet-wide kill/resume at a mid-epoch step boundary.
        probe = resume_probe_step
        if probe is None:
            probe = max(1, len(outcome.schedule) // 2)
        first = build(plan)
        first.run_epoch(max_steps=probe)
        cut = first.state_dict()
        resumed = build(plan)
        resumed.load_state_dict(cut)
        resumed_outcome = resumed.run_epoch()
        if resumed_outcome.losses != outcome.losses:
            violations.append(
                f"kill/resume at step {probe} diverged from the "
                "uninterrupted run"
            )

        results[scenario] = {
            "passed": not violations,
            "violations": violations,
            "global_steps": len(outcome.schedule),
            "epoch_time_s": outcome.epoch_time_s,
            "final_loss": outcome.final_loss,
            "peer_cache_hit_ratio": outcome.peer_cache_hit_ratio,
            "ssd_pages": outcome.total_ssd_pages,
            "rebalance_events": len(outcome.rebalance_events),
            "steal_events": len(outcome.steal_events),
            "breaker_transitions": len(outcome.breaker_transitions),
        }

    return {
        "num_gpus": num_gpus,
        "seed": seed,
        "scenarios": results,
        "passed": all(r["passed"] for r in results.values()),
    }
