"""The paper's contribution: the GIDS dataloader and its three techniques.

* :mod:`repro.core.model` — the Eq. 2-3 analytic bandwidth model.
* :class:`DynamicAccessAccumulator` — iteration merging to keep enough
  storage requests in flight (Section 3.2).
* :class:`WindowBuffer` — mini-batch look-ahead that drives the GPU software
  cache's pinning ("USE") state (Section 3.4).
* :class:`GIDSDataLoader` — the full dataloader; :class:`BaMDataLoader` is
  the plain-BaM baseline (same storage path, none of the GIDS techniques).
"""

from .model import expected_iops, required_overlapping_accesses
from .accumulator import DynamicAccessAccumulator
from .window import WindowBuffer
from .gids import GIDSDataLoader
from .bam import BaMDataLoader
from .autotune import (
    WindowRecommendation,
    best_window_depth,
    measure_window_depths,
    recommend_window_depth,
)
from .multi_gpu import (
    MultiGPUResult,
    MultiGPUTrainer,
    contended_ssd,
    partition_shards,
    scaling_study,
    shard_train_ids,
)
from .fleet import (
    CHAOS_SCENARIOS,
    ElasticFleetTrainer,
    FleetConfig,
    FleetResult,
    InterconnectSpec,
    check_invariants,
    replay_schedule,
    run_chaos_suite,
)

__all__ = [
    "expected_iops",
    "required_overlapping_accesses",
    "DynamicAccessAccumulator",
    "WindowBuffer",
    "GIDSDataLoader",
    "BaMDataLoader",
    "WindowRecommendation",
    "best_window_depth",
    "measure_window_depths",
    "recommend_window_depth",
    "MultiGPUResult",
    "MultiGPUTrainer",
    "contended_ssd",
    "partition_shards",
    "scaling_study",
    "shard_train_ids",
    "CHAOS_SCENARIOS",
    "ElasticFleetTrainer",
    "FleetConfig",
    "FleetResult",
    "InterconnectSpec",
    "check_invariants",
    "replay_schedule",
    "run_chaos_suite",
]
