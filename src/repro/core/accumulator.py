"""Dynamic storage access accumulator (Section 3.2).

Graph sampling and feature aggregation of iteration ``i+k`` are logically
independent of model training of iteration ``i`` — training only updates
model weights.  The accumulator exploits this: it keeps sampling future
iterations and merging their feature-aggregation work into one storage batch
until the number of outstanding *storage* accesses crosses the threshold the
Eq. 2-3 model says is needed for the target fraction of peak SSD IOPS.

Because GIDS redirects part of the accesses to the GPU software cache and
the constant CPU buffer, the threshold is expressed in *node* accesses and
continuously re-scaled by the observed redirect fraction: if 40% of accesses
never reach storage, 1/0.6 times more node accesses must be accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CheckpointError, ConfigError
from ..sim.ssd import SSDArray


@dataclass
class DynamicAccessAccumulator:
    """Tracks the iteration-merging threshold for one SSD array.

    Args:
        array: the attached SSD array.
        target_fraction: fraction of peak IOPS to aim for (0.95 default,
            matching Section 4.2's working point).
        max_merged_iterations: safety cap on run-ahead depth, bounding the
            mini-batch buffer memory (Section 3.2 warns against unbounded
            merging).
        redirect_smoothing: exponential smoothing factor for the observed
            redirect fraction.
    """

    array: SSDArray
    target_fraction: float = 0.95
    max_merged_iterations: int = 64
    redirect_smoothing: float = 0.3

    _redirect_fraction: float = field(default=0.0, init=False)
    _observed: bool = field(default=False, init=False)
    #: Optional telemetry tracer (attached by the owning loader; excluded
    #: from comparison/repr so instrumented accumulators still compare
    #: equal to untraced ones).
    tracer: object = field(default=None, init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction < 1.0:
            raise ConfigError("target_fraction must be in (0, 1)")
        if self.max_merged_iterations <= 0:
            raise ConfigError("max_merged_iterations must be positive")
        if not 0.0 < self.redirect_smoothing <= 1.0:
            raise ConfigError("redirect_smoothing must be in (0, 1]")

    @property
    def storage_threshold(self) -> int:
        """Outstanding *storage* accesses required (Eq. 2-3 inversion)."""
        return self.array.required_overlapping(self.target_fraction)

    @property
    def redirect_fraction(self) -> float:
        """Smoothed estimate of accesses served without touching storage."""
        return self._redirect_fraction

    @property
    def node_threshold(self) -> int:
        """Node accesses to accumulate, compensating for redirects.

        With redirect fraction ``r``, only ``1 - r`` of accumulated node
        accesses become storage requests, so the node-level threshold is the
        storage threshold scaled by ``1 / (1 - r)`` (Section 3.2: the
        accumulator "tracks the number of redirected storage accesses and
        dynamically adjusts the threshold value accordingly").
        """
        survivors = max(1.0 - self._redirect_fraction, 0.05)
        return int(round(self.storage_threshold / survivors))

    def observe(self, storage_accesses: int, total_accesses: int) -> None:
        """Feed back one merged batch's redirect outcome.

        Args:
            storage_accesses: requests that actually went to the SSDs.
            total_accesses: all feature requests of the batch.
        """
        if storage_accesses < 0 or total_accesses < 0:
            raise ConfigError("access counts must be non-negative")
        if storage_accesses > total_accesses:
            raise ConfigError("storage accesses cannot exceed total accesses")
        if total_accesses == 0:
            return
        sample = 1.0 - storage_accesses / total_accesses
        if not self._observed:
            self._redirect_fraction = sample
            self._observed = True
        else:
            alpha = self.redirect_smoothing
            self._redirect_fraction = (
                alpha * sample + (1.0 - alpha) * self._redirect_fraction
            )
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            tracer.instant(
                "accumulator.observe",
                "accumulator",
                redirect_fraction=self._redirect_fraction,
                node_threshold=self.node_threshold,
            )

    def should_merge_more(
        self, accumulated_nodes: int, merged_iterations: int
    ) -> bool:
        """Whether another future iteration should join the current batch."""
        if merged_iterations >= self.max_merged_iterations:
            return False
        return accumulated_nodes < self.node_threshold

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot of the adaptive phase state (smoothed redirect fraction)."""
        return {
            "target_fraction": self.target_fraction,
            "max_merged_iterations": self.max_merged_iterations,
            "redirect_fraction": self._redirect_fraction,
            "observed": self._observed,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the phase state captured by :meth:`state_dict`."""
        if state.get("target_fraction") != self.target_fraction or state.get(
            "max_merged_iterations"
        ) != self.max_merged_iterations:
            raise CheckpointError(
                "accumulator configuration does not match the checkpoint"
            )
        self._redirect_fraction = float(state["redirect_fraction"])
        self._observed = bool(state["observed"])
