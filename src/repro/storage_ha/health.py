"""Fail-slow detection and the per-device health state machine.

Fail-slow (gray) failures are the hard case for a storage array: the
device never errors, it just quietly serves at a multiple of its rated
latency and drags the whole stripe down.  The monitor infers them the way
production fleets do — from *measured* service latency, not from fault
metadata: each observation folds every live device's current effective
latency (rated latency times whatever slowdown/fail-slow factor is in
force) into a per-device EWMA, then compares each EWMA against the live
array median.  A device persistently skewed above the median walks the
state machine::

    healthy -> suspect -> degraded -> dead -> rebuilding -> healthy

* ``suspect`` — skew above ``suspect_skew`` for fewer than ``patience``
  consecutive observations; no routing change yet (tail noise is real).
* ``degraded`` — skew above ``degraded_skew`` once, or above
  ``suspect_skew`` for ``patience`` observations in a row; the HA router
  soft-redirects reads to replicas where one exists.
* ``dead`` — the device dropped out of the array entirely.
* ``rebuilding`` — the device answers (post-recovery) but holds stale
  pages until the online rebuilder marks it clean.

The monitor is deterministic — no RNG draws, observations are pure
functions of injector device state — so it preserves the bit-identical
kill/resume contract for free, provided its EWMA/streak state rides in
``state_dict()``.
"""

from __future__ import annotations

import numpy as np

from ..errors import CheckpointError, ConfigError
from ..telemetry.tracks import HA_TRACK

#: Every state the per-device machine can be in, in escalation order.
HEALTH_STATES = ("healthy", "suspect", "degraded", "dead", "rebuilding")

__all__ = ["HA_TRACK", "HEALTH_STATES", "DeviceHealthMonitor"]


class DeviceHealthMonitor:
    """EWMA latency-skew fail-slow detector over the array.

    Args:
        num_devices: SSDs in the array.
        base_latency_s: the device's rated read latency (EWMA seed).
        alpha: EWMA weight of the newest observation.
        suspect_skew: EWMA-over-median ratio that makes a device suspect.
        degraded_skew: ratio that degrades a device immediately.
        patience: consecutive suspect observations before degrading.
        tracer: optional tracer; state transitions become instants on the
            ``storage.ha`` track.
    """

    def __init__(
        self,
        num_devices: int,
        base_latency_s: float,
        *,
        alpha: float = 0.3,
        suspect_skew: float = 1.5,
        degraded_skew: float = 3.0,
        patience: int = 3,
        tracer=None,
    ) -> None:
        if num_devices < 1:
            raise ConfigError("health monitor needs at least one device")
        if base_latency_s <= 0:
            raise ConfigError("base latency must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"EWMA alpha must be in (0, 1], got {alpha}")
        if not 1.0 < suspect_skew <= degraded_skew:
            raise ConfigError(
                "need 1 < suspect_skew <= degraded_skew, got "
                f"{suspect_skew} / {degraded_skew}"
            )
        if patience < 1:
            raise ConfigError("patience must be at least 1 observation")
        self.num_devices = num_devices
        self.base_latency_s = float(base_latency_s)
        self.alpha = float(alpha)
        self.suspect_skew = float(suspect_skew)
        self.degraded_skew = float(degraded_skew)
        self.patience = int(patience)
        self.tracer = tracer
        self._ewma = np.full(num_devices, float(base_latency_s))
        self._streak = np.zeros(num_devices, dtype=np.int64)
        self._states = ["healthy"] * num_devices
        self.transitions: list[dict] = []

    # ------------------------------------------------------------------
    # Observation

    def _set_state(self, device: int, state: str, now_s: float) -> None:
        if self._states[device] == state:
            return
        self.transitions.append(
            {
                "device": device,
                "from": self._states[device],
                "to": state,
                "at_time_s": now_s,
            }
        )
        self._states[device] = state
        if self.tracer is not None:
            self.tracer.instant(
                f"health.{state}", HA_TRACK, at_s=now_s, device=device
            )

    def observe(
        self,
        now_s: float,
        active: np.ndarray,
        factors: np.ndarray,
        stale: np.ndarray,
    ) -> None:
        """Fold one array-wide latency sample into the state machine.

        Args:
            now_s: simulated time of the sample.
            active: per-device liveness from the fault injector.
            factors: per-device slowdown factors — the *measurement*: a
                live device's effective service latency is
                ``base_latency_s * factor``, which is how declared
                ``"fail_slow"`` events and inferred slow devices end up
                indistinguishable here, by design.
            stale: per-device recovered-but-not-rebuilt mask.
        """
        live = np.asarray(active, dtype=bool)
        factors = np.asarray(factors, dtype=float)
        stale = np.asarray(stale, dtype=bool)
        measurable = live & ~stale
        latencies = self.base_latency_s * factors
        self._ewma[measurable] = (
            self.alpha * latencies[measurable]
            + (1.0 - self.alpha) * self._ewma[measurable]
        )
        median = (
            float(np.median(self._ewma[measurable]))
            if measurable.any()
            else self.base_latency_s
        )
        for device in range(self.num_devices):
            if not live[device]:
                self._set_state(device, "dead", now_s)
                self._streak[device] = 0
                continue
            if stale[device]:
                self._set_state(device, "rebuilding", now_s)
                self._streak[device] = 0
                continue
            skew = self._ewma[device] / median if median > 0 else 1.0
            if skew >= self.degraded_skew:
                self._streak[device] = self.patience
                self._set_state(device, "degraded", now_s)
            elif skew >= self.suspect_skew:
                self._streak[device] = min(
                    self.patience, int(self._streak[device]) + 1
                )
                if self._streak[device] >= self.patience:
                    self._set_state(device, "degraded", now_s)
                else:
                    self._set_state(device, "suspect", now_s)
            else:
                self._streak[device] = 0
                self._set_state(device, "healthy", now_s)

    # ------------------------------------------------------------------
    # Queries

    def states(self) -> list[str]:
        """Current per-device health states."""
        return list(self._states)

    def state_of(self, device: int) -> str:
        if not 0 <= device < self.num_devices:
            raise ConfigError(
                f"device index {device} outside array of "
                f"{self.num_devices} SSDs"
            )
        return self._states[device]

    def degraded_mask(self) -> np.ndarray:
        """Devices the router should read around when a copy exists."""
        return np.array(
            [state == "degraded" for state in self._states], dtype=bool
        )

    def ewma_latencies(self) -> np.ndarray:
        """Per-device EWMA service latency (seconds)."""
        return self._ewma.copy()

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        return {
            "ewma": [float(value) for value in self._ewma],
            "streak": [int(value) for value in self._streak],
            "states": list(self._states),
            "transitions": [dict(item) for item in self.transitions],
        }

    def load_state_dict(self, state: dict) -> None:
        for key in ("ewma", "streak", "states", "transitions"):
            if key not in state:
                raise CheckpointError(
                    f"health-monitor checkpoint missing key {key!r}"
                )
        unknown = set(state) - {"ewma", "streak", "states", "transitions"}
        if unknown:
            raise CheckpointError(
                f"unknown health-monitor checkpoint keys: {sorted(unknown)}"
            )
        ewma = state["ewma"]
        streak = state["streak"]
        states = state["states"]
        if (
            len(ewma) != self.num_devices
            or len(streak) != self.num_devices
            or len(states) != self.num_devices
        ):
            raise CheckpointError(
                "health-monitor checkpoint sized for a different array"
            )
        for name in states:
            if name not in HEALTH_STATES:
                raise CheckpointError(f"unknown health state {name!r}")
        self._ewma = np.array([float(value) for value in ewma])
        self._streak = np.array([int(value) for value in streak], dtype=np.int64)
        self._states = list(states)
        self.transitions = [dict(item) for item in state["transitions"]]
