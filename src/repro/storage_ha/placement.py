"""Redundant page placement over the striped SSD array.

Two layouts, both preserving the BaM queue-pair striping for the *primary*
copy (page ``p`` homes on device ``p % num_devices``) so that enabling
redundancy never perturbs where the first copy of any page lives — the
redundancy-off modeled times stay bit-identical:

* **Replication** — each page gets ``replication_factor - 1`` extra
  copies on the highest-rendezvous-weight devices among the remainder of
  the array, reusing the SplitMix64 HRW helper that shards training ids
  across the fleet.  Rendezvous placement keeps copy sets stable as the
  array grows: adding a device only attracts pages whose new weight wins,
  never reshuffles survivors.
* **Parity** — RAID-5-style left-rotating ``k + 1`` groups with
  ``k = num_devices - 1`` data pages per stripe: stripe ``s`` parks its
  parity block on device ``s % num_devices`` and lays the data pages on
  the remaining devices in order.  A page on an unavailable device is
  reconstructable from the ``k`` surviving group members at the modeled
  cost of ``k`` member reads.

Placement objects are frozen values: pure functions of
``(num_devices, mode, seed)`` with no mutable state, so they need no
checkpointing and can be rebuilt identically from CLI knobs on resume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


def _copy_weights(pages: np.ndarray, num_devices: int, seed: int) -> np.ndarray:
    """HRW weight matrix ``weights[i, d]`` for page ``i`` on device ``d``."""
    # Local import: repro.core's package init pulls in the GIDS loader,
    # which imports this module — binding at call time breaks the cycle.
    from ..core.multi_gpu import _rendezvous_weights

    return _rendezvous_weights(pages.astype(np.int64), num_devices, seed)


@dataclass(frozen=True)
class ReplicatedPlacement:
    """``replication_factor`` copies of every page, primary on the stripe.

    Args:
        num_devices: SSDs in the array.
        replication_factor: total copies per page (1 = no redundancy).
        seed: salts the rendezvous hash for replica device choice.
    """

    num_devices: int
    replication_factor: int = 1
    seed: int = 0

    mode = "replication"

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ConfigError("placement needs at least one device")
        if not 1 <= self.replication_factor <= self.num_devices:
            raise ConfigError(
                f"replication factor must be in [1, {self.num_devices}] "
                f"for a {self.num_devices}-SSD array, "
                f"got {self.replication_factor}"
            )

    @property
    def width(self) -> int:
        """Copies stored per page."""
        return self.replication_factor

    @property
    def storage_overhead_factor(self) -> float:
        """Physical bytes written per logical byte."""
        return float(self.replication_factor)

    @property
    def reconstruct_reads_per_page(self) -> int:
        """Member reads needed to rebuild one page (replicas: one copy)."""
        return 1

    def primary_device(self, pages: np.ndarray) -> np.ndarray:
        """Stripe home of each page — identical to the non-HA layout."""
        pages = np.asarray(pages, dtype=np.int64)
        return pages % self.num_devices

    def copies(self, pages: np.ndarray) -> np.ndarray:
        """``(len(pages), replication_factor)`` device matrix, primary first.

        Replicas are the ``replication_factor - 1`` highest-weight devices
        among the non-primary ones, ranked by the pure
        ``(seed, page, device)`` rendezvous hash.
        """
        pages = np.asarray(pages, dtype=np.int64)
        primary = pages % self.num_devices
        if self.replication_factor == 1:
            return primary[:, None]
        weights = _copy_weights(pages, self.num_devices, self.seed)
        # The primary never competes for a replica slot.
        weights[np.arange(len(pages)), primary] = 0
        order = np.argsort(weights, axis=1, kind="stable")[:, ::-1]
        replicas = order[:, : self.replication_factor - 1]
        return np.concatenate([primary[:, None], replicas], axis=1)

    def pages_on_device(self, device: int, total_pages: int) -> int:
        """How many of the first ``total_pages`` pages keep a copy on ``device``."""
        if not 0 <= device < self.num_devices:
            raise ConfigError(
                f"device index {device} outside array of "
                f"{self.num_devices} SSDs"
            )
        if total_pages <= 0:
            return 0
        copies = self.copies(np.arange(total_pages, dtype=np.int64))
        return int((copies == device).any(axis=1).sum())


@dataclass(frozen=True)
class ParityPlacement:
    """RAID-5-style rotating parity: ``k = num_devices - 1`` data + 1 parity."""

    num_devices: int
    seed: int = 0

    mode = "parity"

    def __post_init__(self) -> None:
        if self.num_devices < 2:
            raise ConfigError(
                "parity placement needs at least 2 devices "
                f"(k data + 1 parity), got {self.num_devices}"
            )

    @property
    def k(self) -> int:
        """Data pages per stripe."""
        return self.num_devices - 1

    @property
    def width(self) -> int:
        """Copies stored per page (parity keeps a single data copy)."""
        return 1

    @property
    def storage_overhead_factor(self) -> float:
        """Physical bytes written per logical byte: ``(k + 1) / k``."""
        return (self.k + 1) / self.k

    @property
    def reconstruct_reads_per_page(self) -> int:
        """Member reads needed to rebuild one page from the stripe."""
        return self.k

    def primary_device(self, pages: np.ndarray) -> np.ndarray:
        """Data device of each page under left-rotating parity."""
        pages = np.asarray(pages, dtype=np.int64)
        stripe = pages // self.k
        index = pages % self.k
        parity = stripe % self.num_devices
        return index + (index >= parity)

    def parity_device(self, pages: np.ndarray) -> np.ndarray:
        """Device holding each page's stripe parity block."""
        pages = np.asarray(pages, dtype=np.int64)
        return (pages // self.k) % self.num_devices

    def copies(self, pages: np.ndarray) -> np.ndarray:
        """Single data copy per page — parity is not a readable copy."""
        return self.primary_device(pages)[:, None]

    def pages_on_device(self, device: int, total_pages: int) -> int:
        """Data pages of the first ``total_pages`` homed on ``device``."""
        if not 0 <= device < self.num_devices:
            raise ConfigError(
                f"device index {device} outside array of "
                f"{self.num_devices} SSDs"
            )
        if total_pages <= 0:
            return 0
        pages = np.arange(total_pages, dtype=np.int64)
        return int((self.primary_device(pages) == device).sum())


def make_placement(
    num_devices: int,
    *,
    replication: int = 1,
    parity: bool = False,
    seed: int = 0,
) -> "ReplicatedPlacement | ParityPlacement":
    """Build the placement for the CLI knob pair ``--replication/--parity``."""
    if parity and replication > 1:
        raise ConfigError(
            "replication and parity are mutually exclusive redundancy modes"
        )
    if parity:
        return ParityPlacement(num_devices, seed=seed)
    return ReplicatedPlacement(num_devices, replication, seed=seed)
