"""The storage high-availability coordinator.

:class:`StorageHA` owns the three moving parts — placement, health
monitor, rebuilder — and exposes the two operations consumers need:

* :meth:`route` — given the miss pages of one storage batch, decide per
  page whether it is served **direct** from its primary device,
  **redirected** to a surviving replica, **reconstructed** from its
  parity group (``k`` member reads at modeled cost), or **lost** (no
  live copy — the caller's CPU-mirror fallback is the last resort).
  Hard unavailability (dropped-out or stale devices) *must* redirect;
  health-degraded devices redirect only when a healthy copy exists,
  otherwise the slow primary still serves.
* :meth:`background_sweep` — advance the rebuilder on the idle IOPS the
  finished foreground group left behind.

With no fault machinery attached (``fault_array=None``) every call is an
inert pass-through: all pages route direct, sweeps do nothing, and no
state mutates — redundancy plumbed through a healthy run costs nothing
and perturbs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CheckpointError
from .health import HA_TRACK, DeviceHealthMonitor
from .placement import make_placement
from .rebuild import Rebuilder, RebuildSweepOutcome


@dataclass(frozen=True)
class HARouteOutcome:
    """Per-batch routing decision counts (plus the lost-page mask)."""

    n_direct: int = 0
    n_replica: int = 0
    n_reconstruct: int = 0
    reconstruct_reads: int = 0
    n_lost: int = 0
    lost_mask: "np.ndarray | None" = None

    @property
    def n_storage(self) -> int:
        """Pages served from the array (any route but the fallback)."""
        return self.n_direct + self.n_replica + self.n_reconstruct

    @property
    def extra_service_reads(self) -> int:
        """Device reads beyond one per served page (parity members)."""
        return self.reconstruct_reads - self.n_reconstruct


class StorageHA:
    """Replication/parity, fail-slow health, and online rebuild in one.

    Args:
        num_devices: SSDs in the array.
        base_latency_s: rated device read latency (health EWMA seed).
        replication: total copies per page (1 = no replication).
        parity: use k+1 rotating parity instead of replication.
        rebuild_iops: background IOPS budget for the online rebuilder.
        total_pages: size of the protected page space.
        fault_array: the :class:`~repro.faults.array.FaultySSDArray`
            view, or ``None`` when the run has no fault machinery.
        seed: salts replica rendezvous placement.
        tracer: optional tracer (``storage.ha`` track).
    """

    def __init__(
        self,
        *,
        num_devices: int,
        base_latency_s: float,
        replication: int = 1,
        parity: bool = False,
        rebuild_iops: float = 0.0,
        total_pages: int = 0,
        fault_array=None,
        seed: int = 0,
        tracer=None,
    ) -> None:
        self.placement = make_placement(
            num_devices, replication=replication, parity=parity, seed=seed
        )
        self.fault_array = fault_array
        self.tracer = tracer
        self.health = DeviceHealthMonitor(
            num_devices, base_latency_s, tracer=tracer
        )
        self.rebuilder = Rebuilder(self.placement, total_pages, rebuild_iops)

    # ------------------------------------------------------------------
    # Clock / observation

    def advance(self, now_s: float) -> None:
        """Move to simulated ``now_s`` and take one health observation."""
        if self.fault_array is None:
            return
        self.fault_array.advance_to(now_s)
        active, factors = self.fault_array.device_states()
        stale = self.fault_array.stale_device_mask()
        self.health.observe(now_s, active, factors, stale)

    # ------------------------------------------------------------------
    # Device availability

    def _availability(self) -> tuple[np.ndarray, np.ndarray]:
        """``(avail, prefer)`` device masks.

        ``avail`` — can serve valid data (live and not stale).
        ``prefer`` — ``avail`` minus health-degraded devices, the set the
        router *wants* to read from.
        """
        n = self.placement.num_devices
        if self.fault_array is None:
            ones = np.ones(n, dtype=bool)
            return ones, ones.copy()
        active, _ = self.fault_array.device_states()
        stale = self.fault_array.stale_device_mask()
        avail = active & ~stale
        prefer = avail & ~self.health.degraded_mask()
        return avail, prefer

    # ------------------------------------------------------------------
    # Routing

    def route(self, pages: np.ndarray) -> HARouteOutcome:
        """Route one batch of miss pages through the redundancy layout."""
        pages = np.asarray(pages, dtype=np.int64)
        n = len(pages)
        if n == 0:
            return HARouteOutcome(lost_mask=np.zeros(0, dtype=bool))
        avail, prefer = self._availability()
        if prefer.all():
            return HARouteOutcome(
                n_direct=n, lost_mask=np.zeros(n, dtype=bool)
            )
        primary = self.placement.primary_device(pages)
        direct = prefer[primary]
        rest = pages[~direct]
        outcome = self._route_rest(rest, avail, prefer)
        lost_mask = np.zeros(n, dtype=bool)
        if outcome["lost"] is not None:
            lost_mask[np.flatnonzero(~direct)[outcome["lost"]]] = True
        return HARouteOutcome(
            n_direct=int(direct.sum()) + outcome["extra_direct"],
            n_replica=outcome["replica"],
            n_reconstruct=outcome["reconstruct"],
            reconstruct_reads=outcome["reconstruct"]
            * self.placement.reconstruct_reads_per_page,
            n_lost=outcome["n_lost"],
            lost_mask=lost_mask,
        )

    def _route_rest(
        self, rest: np.ndarray, avail: np.ndarray, prefer: np.ndarray
    ) -> dict:
        """Route pages whose primary is not preferred (slow, stale, dead)."""
        if len(rest) == 0:
            return {
                "extra_direct": 0,
                "replica": 0,
                "reconstruct": 0,
                "n_lost": 0,
                "lost": None,
            }
        primary = self.placement.primary_device(rest)
        hard = ~avail[primary]
        if self.placement.mode == "replication":
            copies = self.placement.copies(rest)
            prefer_any = prefer[copies].any(axis=1)
            avail_any = avail[copies].any(axis=1)
            # A preferred copy wins outright; a hard-lost primary settles
            # for any available copy (a degraded replica still beats the
            # CPU mirror); a merely-degraded primary with no better copy
            # keeps serving direct, just slowly.
            replica = prefer_any | (hard & avail_any)
            lost = hard & ~replica
            extra_direct = int((~hard & ~replica).sum())
            return {
                "extra_direct": extra_direct,
                "replica": int(replica.sum()),
                "reconstruct": 0,
                "n_lost": int(lost.sum()),
                "lost": lost,
            }
        # Parity: a page is reconstructable iff every *other* device of
        # its (array-wide) stripe group is available; degraded-but-live
        # primaries serve direct — k member reads cost more than one
        # slow read.
        n_unavailable = int((~avail).sum())
        reconstruct = hard & (n_unavailable == 1)
        lost = hard & ~reconstruct
        return {
            "extra_direct": int((~hard).sum()),
            "replica": 0,
            "reconstruct": int(reconstruct.sum()),
            "n_lost": int(lost.sum()),
            "lost": lost,
        }

    def redirect(self, pages: np.ndarray, *, avoid: np.ndarray) -> HARouteOutcome:
        """Route ``pages`` away from devices marked in ``avoid``.

        Serving-path hook: the breaker board forbids devices beyond what
        the fault timeline says (an open breaker is a routing decision,
        not a device state), so the caller passes the full forbidden set.
        """
        pages = np.asarray(pages, dtype=np.int64)
        avoid = np.asarray(avoid, dtype=bool)
        avail, prefer = self._availability()
        avail = avail & ~avoid
        prefer = prefer & ~avoid
        primary = self.placement.primary_device(pages)
        direct = prefer[primary]
        rest = pages[~direct]
        outcome = self._route_rest(rest, avail, prefer)
        lost_mask = np.zeros(len(pages), dtype=bool)
        if outcome["lost"] is not None:
            lost_mask[np.flatnonzero(~direct)[outcome["lost"]]] = True
        return HARouteOutcome(
            n_direct=int(direct.sum()) + outcome["extra_direct"],
            n_replica=outcome["replica"],
            n_reconstruct=outcome["reconstruct"],
            reconstruct_reads=outcome["reconstruct"]
            * self.placement.reconstruct_reads_per_page,
            n_lost=outcome["n_lost"],
            lost_mask=lost_mask,
        )

    def unrepairable_count(self, pages: np.ndarray) -> int:
        """Pages with no live copy and no reconstruction path right now."""
        return self.route(pages).n_lost

    # ------------------------------------------------------------------
    # Background rebuild

    def background_sweep(
        self, elapsed_s: float, now_s: float
    ) -> RebuildSweepOutcome | None:
        """Run one rebuild sweep over ``elapsed_s`` of foreground time."""
        if self.fault_array is None:
            return None
        outcome = self.rebuilder.sweep(elapsed_s, self.fault_array)
        if self.tracer is not None and outcome.pages_rebuilt:
            self.tracer.instant(
                "rebuild.sweep",
                HA_TRACK,
                at_s=now_s,
                pages=outcome.pages_rebuilt,
                reads=outcome.read_requests,
                writes=outcome.write_requests,
            )
        if self.tracer is not None:
            for device, kind, generation in outcome.completed_jobs:
                self.tracer.instant(
                    f"rebuild.{kind}.done",
                    HA_TRACK,
                    at_s=now_s,
                    device=device,
                    generation=generation,
                )
        return outcome

    # ------------------------------------------------------------------
    # Reporting

    def summary_block(self) -> dict:
        """The export-schema ``storage_ha`` block (sans traffic counters)."""
        placement = self.placement
        block = {
            "mode": placement.mode,
            "num_devices": placement.num_devices,
            "storage_overhead_factor": placement.storage_overhead_factor,
            "device_states": self.health.states(),
            "health_transitions": [
                dict(item) for item in self.health.transitions
            ],
            "fully_redundant": self.rebuilder.fully_redundant,
            "rebuild_jobs_open": self.rebuilder.jobs_summary(),
            "pages_rebuilt_total": self.rebuilder.pages_rebuilt_total,
            "rebuild_iops_budget": self.rebuilder.iops_budget,
        }
        if placement.mode == "replication":
            block["replication_factor"] = placement.replication_factor
        else:
            block["parity_group_k"] = placement.k
        return block

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Everything mutable: health machine + rebuild progress.

        The fault array's own clock/clean-generation state is owned (and
        checkpointed) by whichever consumer owns the array.
        """
        return {
            "health": self.health.state_dict(),
            "rebuilder": self.rebuilder.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        if set(state) != {"health", "rebuilder"}:
            raise CheckpointError(
                f"malformed storage-HA checkpoint keys: {sorted(state)}"
            )
        self.health.load_state_dict(state["health"])
        self.rebuilder.load_state_dict(state["rebuilder"])
