"""Highly-available storage over the multi-SSD array (robustness layer).

Replicated or parity-protected page placement, fail-slow health
detection, degraded-mode read routing, and budgeted online rebuild —
see :doc:`docs/STORAGE_HA` for the model and economics.
"""

from .health import HA_TRACK, HEALTH_STATES, DeviceHealthMonitor
from .ha import HARouteOutcome, StorageHA
from .placement import (
    ParityPlacement,
    ReplicatedPlacement,
    make_placement,
)
from .rebuild import Rebuilder, RebuildSweepOutcome

__all__ = [
    "HA_TRACK",
    "HEALTH_STATES",
    "DeviceHealthMonitor",
    "HARouteOutcome",
    "StorageHA",
    "ParityPlacement",
    "ReplicatedPlacement",
    "make_placement",
    "Rebuilder",
    "RebuildSweepOutcome",
]
