"""Online redundancy rebuild on a budgeted background IOPS stream.

Same economics as the integrity scrubber: the rebuilder soaks otherwise
idle device IOPS, so a sweep "pays" only from a budget accrued at
``iops_budget`` over the elapsed modeled time of the foreground work it
overlaps — it never adds modeled time of its own, only counted traffic.
Fractional budget carries across sweeps so tiny groups still make
progress; carry is dropped whenever the job queue drains (no banking
budget while there is nothing to rebuild — pay-for-what-you-use).

Two job kinds, created from the fault timeline as it unfolds:

* ``reprotect`` (replication only) — a device dropped out; every page
  that kept a copy on it is re-replicated onto survivors (1 read of a
  surviving copy + 1 write per page) so a second failure cannot strand
  data.
* ``restore`` — a dropped device came back; its stripe share is
  rewritten from surviving copies (replication: 1 read + 1 write per
  page) or recomputed from the parity group (parity: ``k`` reads + 1
  write per page).  Completion calls
  :meth:`~repro.faults.array.FaultySSDArray.mark_device_clean`, which is
  the moment the device stops serving stale pages.

Every piece of progress state (budget carry, per-job cursors, seen
incident generations) rides in ``state_dict()`` for exact kill/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointError, ConfigError

_JOB_KINDS = ("reprotect", "restore")


@dataclass
class RebuildSweepOutcome:
    """What one background sweep accomplished."""

    pages_rebuilt: int = 0
    read_requests: int = 0
    write_requests: int = 0
    completed_jobs: list = field(default_factory=list)


class Rebuilder:
    """Budgeted background restoration of redundancy after device incidents.

    Args:
        placement: the redundancy layout (copy sets and rebuild costs).
        total_pages: size of the feature page space being protected.
        iops_budget: background device operations per second of modeled
            foreground time; 0 disables rebuilding entirely.
    """

    def __init__(self, placement, total_pages: int, iops_budget: float) -> None:
        if total_pages < 0:
            raise ConfigError("total_pages must be non-negative")
        if iops_budget < 0:
            raise ConfigError("rebuild IOPS budget must be non-negative")
        self.placement = placement
        self.total_pages = int(total_pages)
        self.iops_budget = float(iops_budget)
        self._carry = 0.0
        self._jobs: list[dict] = []
        self._seen_dropouts = [0] * placement.num_devices
        self.pages_rebuilt_total = 0

    # ------------------------------------------------------------------
    # Job discovery

    def _job_cost_per_page(self, kind: str) -> int:
        if kind == "restore" and self.placement.mode == "parity":
            # Recompute from the k surviving group members, then write.
            return self.placement.k + 1
        # Copy a surviving replica onto the target: one read + one write.
        return 2

    def _enqueue(self, device: int, kind: str, generation: int) -> None:
        pages = self.placement.pages_on_device(device, self.total_pages)
        if pages == 0:
            return
        self._jobs.append(
            {
                "device": device,
                "kind": kind,
                "generation": generation,
                "pages_total": pages,
                "pages_done": 0,
            }
        )

    def sync(self, fault_array) -> None:
        """Turn new fault-timeline incidents into rebuild jobs."""
        counts = fault_array.dropout_counts()
        active, _ = fault_array.device_states()
        stale = fault_array.stale_device_mask()
        for device in range(self.placement.num_devices):
            while self._seen_dropouts[device] < int(counts[device]):
                self._seen_dropouts[device] += 1
                generation = self._seen_dropouts[device]
                if self.placement.width > 1:
                    # Survivors still hold a copy — re-replicate the
                    # dropped device's share so redundancy is restored
                    # even if the device never returns.
                    self._enqueue(device, "reprotect", generation)
            if stale[device]:
                generation = int(counts[device])
                have = any(
                    job["device"] == device
                    and job["kind"] == "restore"
                    and job["generation"] == generation
                    for job in self._jobs
                )
                if not have and fault_array.clean_generation(device) < generation:
                    # The device is back: restoring it supersedes any
                    # still-queued re-protection of the same incident.
                    self._jobs = [
                        job
                        for job in self._jobs
                        if not (
                            job["device"] == device
                            and job["kind"] == "reprotect"
                            and job["generation"] == generation
                        )
                    ]
                    self._enqueue(device, "restore", generation)

    # ------------------------------------------------------------------
    # Background sweeps

    def sweep(self, elapsed_s: float, fault_array) -> RebuildSweepOutcome:
        """Spend up to ``carry + iops_budget * elapsed_s`` operations.

        The sweep overlaps the foreground work that took ``elapsed_s`` of
        modeled time, soaking idle IOPS — it contributes no modeled time
        itself, only rebuild traffic and (on restore completion) the
        device-clean transition.
        """
        if elapsed_s < 0:
            raise ConfigError("elapsed time must be non-negative")
        outcome = RebuildSweepOutcome()
        self.sync(fault_array)
        if not self._jobs:
            self._carry = 0.0
            return outcome
        if self.iops_budget == 0.0:
            return outcome
        budget = self._carry + self.iops_budget * elapsed_s
        while self._jobs:
            job = self._jobs[0]
            cost = self._job_cost_per_page(job["kind"])
            affordable = int(budget // cost)
            if affordable == 0:
                break
            remaining = job["pages_total"] - job["pages_done"]
            done = min(remaining, affordable)
            job["pages_done"] += done
            budget -= done * cost
            outcome.pages_rebuilt += done
            outcome.write_requests += done
            outcome.read_requests += done * (cost - 1)
            if job["pages_done"] >= job["pages_total"]:
                self._jobs.pop(0)
                outcome.completed_jobs.append(
                    (job["device"], job["kind"], job["generation"])
                )
                if job["kind"] == "restore":
                    fault_array.mark_device_clean(
                        job["device"], job["generation"]
                    )
        self.pages_rebuilt_total += outcome.pages_rebuilt
        self._carry = budget if self._jobs else 0.0
        return outcome

    # ------------------------------------------------------------------
    # Queries

    @property
    def fully_redundant(self) -> bool:
        """True when no rebuild work is outstanding."""
        return not self._jobs

    def rebuilding_mask(self) -> np.ndarray:
        """Devices with an open restore job (being rewritten in place)."""
        mask = np.zeros(self.placement.num_devices, dtype=bool)
        for job in self._jobs:
            if job["kind"] == "restore":
                mask[job["device"]] = True
        return mask

    def jobs_summary(self) -> list[dict]:
        """Open jobs with progress, oldest first (for reports/CLI)."""
        return [dict(job) for job in self._jobs]

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        return {
            "carry": self._carry,
            "jobs": [dict(job) for job in self._jobs],
            "seen_dropouts": list(self._seen_dropouts),
            "pages_rebuilt_total": self.pages_rebuilt_total,
        }

    def load_state_dict(self, state: dict) -> None:
        expected = {"carry", "jobs", "seen_dropouts", "pages_rebuilt_total"}
        missing = expected - set(state)
        if missing:
            raise CheckpointError(
                f"rebuilder checkpoint missing keys: {sorted(missing)}"
            )
        unknown = set(state) - expected
        if unknown:
            raise CheckpointError(
                f"unknown rebuilder checkpoint keys: {sorted(unknown)}"
            )
        carry = state["carry"]
        if not isinstance(carry, (int, float)) or carry < 0:
            raise CheckpointError(f"invalid rebuild carry: {carry!r}")
        seen = state["seen_dropouts"]
        if len(seen) != self.placement.num_devices:
            raise CheckpointError(
                "rebuilder checkpoint sized for a different array"
            )
        jobs = []
        for job in state["jobs"]:
            if set(job) != {
                "device",
                "kind",
                "generation",
                "pages_total",
                "pages_done",
            }:
                raise CheckpointError(
                    f"malformed rebuild job in checkpoint: {job!r}"
                )
            if job["kind"] not in _JOB_KINDS:
                raise CheckpointError(
                    f"unknown rebuild job kind {job['kind']!r}"
                )
            jobs.append(dict(job))
        self._carry = float(carry)
        self._jobs = jobs
        self._seen_dropouts = [int(value) for value in seen]
        self.pages_rebuilt_total = int(state["pages_rebuilt_total"])
