"""Compressed sparse row adjacency structure.

GNN frameworks store the graph structure in CSC/CSR form (Section 2.1).  We
use a single CSR object and interpret ``indices[indptr[v]:indptr[v+1]]`` as
the *in-neighbors* of ``v`` — the direction neighborhood sampling traverses
(a training node gathers messages from the nodes that point at it).  The
reverse orientation (out-edges) is available via :meth:`CSRGraph.reverse` and
is what reverse PageRank runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import GraphError


@dataclass(frozen=True)
class CSRGraph:
    """An immutable CSR adjacency structure.

    Attributes:
        indptr: ``int64[num_nodes + 1]`` monotone offsets into ``indices``.
        indices: ``int64[num_edges]`` neighbor ids, all in ``[0, num_nodes)``.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if len(self.indptr) < 1:
            raise GraphError("indptr must have at least one entry")
        if self.indptr[0] != 0:
            raise GraphError(f"indptr must start at 0, got {self.indptr[0]}")
        if self.indptr[-1] != len(self.indices):
            raise GraphError(
                f"indptr must end at len(indices)={len(self.indices)}, "
                f"got {self.indptr[-1]}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        num_nodes = len(self.indptr) - 1
        if len(self.indices) > 0:
            lo = self.indices.min()
            hi = self.indices.max()
            if lo < 0 or hi >= num_nodes:
                raise GraphError(
                    f"neighbor ids must lie in [0, {num_nodes}), "
                    f"found range [{lo}, {hi}]"
                )

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @cached_property
    def degrees(self) -> np.ndarray:
        """In-degree of every node (length of each adjacency list)."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacency list of ``node`` (a read-only view)."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        view = self.indices[self.indptr[node] : self.indptr[node + 1]]
        view.flags.writeable = False
        return view

    def has_edge(self, dst: int, src: int) -> bool:
        """True if ``src`` appears in the adjacency list of ``dst``."""
        return bool(np.isin(src, self.neighbors(dst)).item())

    def reverse(self) -> "CSRGraph":
        """Return the graph with every edge direction flipped.

        If this graph stores in-neighbors, the result stores out-neighbors
        (and vice versa).
        """
        num_nodes = self.num_nodes
        counts = np.bincount(self.indices, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(self.num_edges, dtype=np.int64)
        # Destination of each original edge, expanded from indptr runs.
        dst = np.repeat(np.arange(num_nodes, dtype=np.int64), self.degrees)
        order = np.argsort(self.indices, kind="stable")
        indices[:] = dst[order]
        return CSRGraph(indptr=indptr, indices=indices)

    def structure_bytes(self, index_bytes: int = 8) -> int:
        """Size of the structure data (indptr + indices) in bytes."""
        return index_bytes * (len(self.indptr) + len(self.indices))


def from_coo(
    src: np.ndarray, dst: np.ndarray, num_nodes: int, *, dedup: bool = False
) -> CSRGraph:
    """Build a :class:`CSRGraph` from COO edge arrays.

    Edge ``(src[i], dst[i])`` makes ``src[i]`` an in-neighbor of ``dst[i]``,
    i.e. ``src[i]`` appears in ``neighbors(dst[i])``.

    Args:
        src: source node of every edge.
        dst: destination node of every edge.
        num_nodes: total node count (ids must be smaller than this).
        dedup: drop duplicate (src, dst) pairs when True.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src and dst must be 1-D arrays of equal length")
    if num_nodes <= 0:
        raise GraphError(f"num_nodes must be positive, got {num_nodes}")
    if len(src) > 0:
        if src.min() < 0 or dst.min() < 0:
            raise GraphError("edge endpoints must be non-negative")
        if src.max() >= num_nodes or dst.max() >= num_nodes:
            raise GraphError("edge endpoints must be smaller than num_nodes")
    if dedup and len(src) > 0:
        keys = dst * np.int64(num_nodes) + src
        _, unique_idx = np.unique(keys, return_index=True)
        src = src[unique_idx]
        dst = dst[unique_idx]
    counts = np.bincount(dst, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(dst, kind="stable")
    indices = src[order]
    return CSRGraph(indptr=indptr, indices=indices)
