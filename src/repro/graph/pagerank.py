"""PageRank and weighted reverse PageRank.

GIDS ranks "hot" nodes with *weighted reverse PageRank* (Section 3.3,
following Data Tiering [Min et al., KDD'22]): PageRank computed on the graph
with all edges reversed estimates how often a node is reached by the backward
neighbor expansion that neighborhood sampling performs, and therefore how
frequently its feature vector will be requested.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Power-iteration PageRank over a CSR graph.

    The CSR convention of this package stores *in-neighbors*: rank flows
    along edges from ``indices`` entries toward the row node, so a node with
    many in-neighbors collects rank from all of them — the standard PageRank
    orientation.

    Args:
        graph: CSR adjacency (rows collect rank from their lists).
        damping: teleport damping factor in (0, 1).
        tol: L1 convergence threshold.
        max_iters: iteration cap.
        weights: optional per-node personalization weights (non-negative,
            not necessarily normalized) for weighted PageRank.

    Returns:
        float64 rank vector summing to 1.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must lie in (0, 1), got {damping}")
    if tol <= 0 or max_iters <= 0:
        raise GraphError("tol and max_iters must be positive")
    n = graph.num_nodes
    if weights is None:
        teleport = np.full(n, 1.0 / n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise GraphError(
                f"weights must have shape ({n},), got {weights.shape}"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise GraphError("weights must be non-negative with positive sum")
        teleport = weights / weights.sum()

    # Out-degree of every node under this orientation: how many adjacency
    # lists it appears in.
    out_degree = np.bincount(graph.indices, minlength=n).astype(np.float64)
    dangling = out_degree == 0

    rank = np.full(n, 1.0 / n)
    # Destination row of every edge, for the scatter-add below.
    rows = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    for _ in range(max_iters):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_degree, 1.0))
        incoming = np.zeros(n)
        np.add.at(incoming, rows, contrib[graph.indices])
        dangling_mass = rank[dangling].sum()
        new_rank = (1.0 - damping) * teleport + damping * (
            incoming + dangling_mass * teleport
        )
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tol:
            break
    return rank / rank.sum()


def reverse_pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted reverse PageRank: PageRank on the edge-reversed graph.

    High scores mark nodes that neighborhood sampling reaches often — the
    hot nodes GIDS pins in the constant CPU buffer.

    Args:
        graph: CSR adjacency in the package's in-neighbor orientation.
        damping, tol, max_iters: as in :func:`pagerank`.
        weights: optional personalization weights; GIDS weights by training
            seed membership so ranks reflect the actual sampling frontier.
    """
    return pagerank(
        graph.reverse(),
        damping=damping,
        tol=tol,
        max_iters=max_iters,
        weights=weights,
    )


def hot_node_ranking(
    graph: CSRGraph,
    metric: str,
    *,
    seed_weights: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Node ids sorted hottest-first under ``metric``.

    Supported metrics mirror the paper's ablation in Fig. 10:

    * ``"reverse_pagerank"`` — the paper's default (optionally weighted).
    * ``"out_degree"`` — degree heuristic used by PaGraph/AliGraph.
    * ``"random"`` — control arm.
    """
    n = graph.num_nodes
    if metric == "reverse_pagerank":
        scores = reverse_pagerank(graph, weights=seed_weights)
    elif metric == "out_degree":
        scores = np.bincount(graph.indices, minlength=n).astype(np.float64)
    elif metric == "random":
        local_rng = rng if rng is not None else np.random.default_rng(0)
        return local_rng.permutation(n).astype(np.int64)
    else:
        raise GraphError(
            f"unknown hot-node metric {metric!r}; expected 'reverse_pagerank',"
            " 'out_degree' or 'random'"
        )
    return np.argsort(-scores, kind="stable").astype(np.int64)
