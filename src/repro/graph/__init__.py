"""Graph substrate: adjacency structures, synthetic generators, datasets.

The generators produce power-law graphs with the node/edge/feature-dimension
ratios of the datasets used in the GIDS paper (IGB family, ogbn-papers100M,
MAG240M), scaled down by a configurable factor so the evaluation runs on a
laptop while preserving the cache-to-dataset size ratios that drive the
paper's results.
"""

from .csr import CSRGraph, from_coo
from .generators import power_law_graph, uniform_graph
from .hetero import HeteroGraph
from .datasets import (
    DATASETS,
    DatasetSpec,
    ScaledDataset,
    get_dataset_spec,
    load_scaled,
)
from .pagerank import hot_node_ranking, pagerank, reverse_pagerank
from .io import load_dataset, save_dataset
from .partition import (
    PartitionResult,
    bfs_partition,
    edge_cut,
    partition_graph,
    refine_partition,
)

__all__ = [
    "CSRGraph",
    "from_coo",
    "power_law_graph",
    "uniform_graph",
    "HeteroGraph",
    "DATASETS",
    "DatasetSpec",
    "ScaledDataset",
    "get_dataset_spec",
    "load_scaled",
    "hot_node_ranking",
    "pagerank",
    "reverse_pagerank",
    "load_dataset",
    "save_dataset",
    "PartitionResult",
    "bfs_partition",
    "edge_cut",
    "partition_graph",
    "refine_partition",
]
