"""Save and load scaled dataset replicas (.npz).

Generating a large replica (graph + PageRank ranking) takes tens of
seconds; persisting it lets benchmark sessions and notebooks share one
artifact.  The format is a single compressed ``.npz`` holding the CSR
arrays, train ids, type metadata and the generation parameters needed to
reconstruct the :class:`~repro.graph.datasets.ScaledDataset` exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from .csr import CSRGraph
from .datasets import ScaledDataset, get_dataset_spec
from .hetero import HeteroGraph

#: Bump when the on-disk layout changes.
FORMAT_VERSION = 1


def save_dataset(dataset: ScaledDataset, path: str | Path) -> Path:
    """Write a scaled dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "format_version": FORMAT_VERSION,
        "spec_name": dataset.spec.name,
        "scale": dataset.scale,
        "feature_dim": dataset.feature_dim,
        "heterogeneous": dataset.hetero is not None,
        "type_names": (
            list(dataset.hetero.type_names) if dataset.hetero else []
        ),
    }
    arrays = {
        "indptr": dataset.graph.indptr,
        "indices": dataset.graph.indices,
        "train_ids": dataset.train_ids,
        "meta_json": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
    }
    if dataset.hetero is not None:
        arrays["type_offsets"] = dataset.hetero.type_offsets
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | Path) -> ScaledDataset:
    """Read a scaled dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no dataset file at {path}")
    with np.load(path) as archive:
        try:
            meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
            indptr = archive["indptr"]
            indices = archive["indices"]
            train_ids = archive["train_ids"]
            type_offsets = (
                archive["type_offsets"]
                if "type_offsets" in archive.files
                else None
            )
        except KeyError as exc:
            raise DatasetError(
                f"{path} is not a saved dataset (missing {exc})"
            ) from exc
    if meta.get("format_version") != FORMAT_VERSION:
        raise DatasetError(
            f"{path} uses format version {meta.get('format_version')}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    spec = get_dataset_spec(meta["spec_name"])
    graph = CSRGraph(indptr=indptr, indices=indices)
    hetero = None
    if meta["heterogeneous"]:
        if type_offsets is None:
            raise DatasetError(f"{path} is heterogeneous but lacks offsets")
        hetero = HeteroGraph(
            csr=graph,
            type_names=tuple(meta["type_names"]),
            type_offsets=type_offsets,
        )
    return ScaledDataset(
        spec=spec,
        scale=float(meta["scale"]),
        graph=graph,
        hetero=hetero,
        train_ids=np.asarray(train_ids, dtype=np.int64),
        feature_dim=int(meta["feature_dim"]),
    )
