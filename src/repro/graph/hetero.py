"""Heterogeneous graph support (IGBH-Full, MAG240M in the paper).

A :class:`HeteroGraph` stores typed nodes in a single contiguous id space —
the layout GNN dataloaders use in practice so that one feature table and one
CSR structure serve all types.  Each node type owns a contiguous id range;
edges may connect any pair of types.  Sampling and feature aggregation treat
the graph exactly like a homogeneous one (GIDS does too: the dataloader is
type-agnostic), while type metadata is preserved for model-side use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


@dataclass(frozen=True)
class HeteroGraph:
    """A typed wrapper around a single CSR structure.

    Attributes:
        csr: unified adjacency over the concatenated node id space.
        type_names: node type names, e.g. ``("paper", "author", "institute")``.
        type_offsets: ``int64[len(type_names) + 1]`` — node type ``t`` owns ids
            ``[type_offsets[t], type_offsets[t + 1])``.
    """

    csr: CSRGraph
    type_names: tuple[str, ...]
    type_offsets: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.type_offsets, dtype=np.int64)
        object.__setattr__(self, "type_offsets", offsets)
        object.__setattr__(self, "type_names", tuple(self.type_names))
        if len(self.type_names) == 0:
            raise GraphError("a heterogeneous graph needs at least one type")
        if len(offsets) != len(self.type_names) + 1:
            raise GraphError(
                "type_offsets must have len(type_names) + 1 entries"
            )
        if offsets[0] != 0 or offsets[-1] != self.csr.num_nodes:
            raise GraphError(
                "type_offsets must start at 0 and end at num_nodes"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphError("type_offsets must be non-decreasing")

    @property
    def num_nodes(self) -> int:
        return self.csr.num_nodes

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    @property
    def num_types(self) -> int:
        return len(self.type_names)

    def nodes_of_type(self, type_name: str) -> np.ndarray:
        """All node ids belonging to ``type_name``."""
        t = self._type_index(type_name)
        return np.arange(
            self.type_offsets[t], self.type_offsets[t + 1], dtype=np.int64
        )

    def type_of(self, nodes: np.ndarray) -> np.ndarray:
        """Type index of each node id in ``nodes``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) > 0 and (
            nodes.min() < 0 or nodes.max() >= self.num_nodes
        ):
            raise GraphError("node ids out of range for this graph")
        return np.searchsorted(self.type_offsets, nodes, side="right") - 1

    def type_count(self, type_name: str) -> int:
        """Number of nodes of ``type_name``."""
        t = self._type_index(type_name)
        return int(self.type_offsets[t + 1] - self.type_offsets[t])

    def _type_index(self, type_name: str) -> int:
        try:
            return self.type_names.index(type_name)
        except ValueError:
            raise GraphError(
                f"unknown node type {type_name!r}; known: {self.type_names}"
            ) from None


def stack_types(
    type_graphs: dict[str, int],
    csr: CSRGraph,
) -> HeteroGraph:
    """Assemble a :class:`HeteroGraph` from per-type node counts.

    Args:
        type_graphs: mapping ``type name -> node count``; the order of
            insertion defines id ranges.
        csr: adjacency over the concatenated id space (must match the total).
    """
    names = tuple(type_graphs)
    counts = np.array([type_graphs[n] for n in names], dtype=np.int64)
    if np.any(counts < 0):
        raise GraphError("type node counts must be non-negative")
    offsets = np.zeros(len(names) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return HeteroGraph(csr=csr, type_names=names, type_offsets=offsets)
