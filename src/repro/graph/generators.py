"""Synthetic graph generators with controllable degree skew.

Real-world citation/academic graphs (IGB, ogbn-papers100M, MAG240M) have
heavy-tailed degree distributions; the skew is what makes hot-node caching
(constant CPU buffer, Fig. 10) and cross-batch locality (window buffering,
Figs. 11-12) effective.  We generate graphs with a Chung-Lu style model: each
edge endpoint is drawn from a Zipf-like node weight distribution, giving a
power-law in-degree distribution without the cost of full RMAT recursion.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..utils import as_rng
from .csr import CSRGraph, from_coo


def _zipf_weights(num_nodes: int, exponent: float) -> np.ndarray:
    """Normalized Zipf weights ``rank^-exponent`` over ``num_nodes`` ranks."""
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    *,
    skew: float = 0.8,
    seed: int | np.random.Generator | None = None,
    self_loops: bool = False,
) -> CSRGraph:
    """Generate a directed power-law graph in CSR (in-neighbor) form.

    Edge sources follow a Zipf(``skew``) distribution over node ranks while
    destinations are drawn with a milder skew, mimicking citation graphs
    where a few seminal papers are cited by many others.  Node ids are
    shuffled so that "hotness" is not correlated with id order (real dataset
    ids are arbitrary too).

    Args:
        num_nodes: node count.
        num_edges: directed edge count (before optional self-loop removal).
        skew: Zipf exponent of the source distribution; 0 degenerates to a
            uniform graph, larger values concentrate edges on fewer nodes.
        seed: RNG seed or generator.
        self_loops: keep self-loop edges when True.
    """
    if num_nodes <= 0:
        raise GraphError(f"num_nodes must be positive, got {num_nodes}")
    if num_edges < 0:
        raise GraphError(f"num_edges must be non-negative, got {num_edges}")
    if skew < 0:
        raise GraphError(f"skew must be non-negative, got {skew}")
    rng = as_rng(seed)

    src_weights = _zipf_weights(num_nodes, skew)
    dst_weights = _zipf_weights(num_nodes, skew * 0.4)
    src = rng.choice(num_nodes, size=num_edges, p=src_weights)
    dst = rng.choice(num_nodes, size=num_edges, p=dst_weights)

    # Decorrelate hotness from node id order.
    perm = rng.permutation(num_nodes)
    src = perm[src]
    dst = perm[dst]

    if not self_loops:
        keep = src != dst
        src = src[keep]
        dst = dst[keep]
    return from_coo(src, dst, num_nodes)


def uniform_graph(
    num_nodes: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Generate an Erdos-Renyi-style directed graph (no degree skew)."""
    return power_law_graph(num_nodes, num_edges, skew=0.0, seed=seed)
