"""Dataset registry: the paper's graphs (Tables 2-4) and scaled replicas.

Each :class:`DatasetSpec` records the *published* characteristics of a paper
dataset; :func:`load_scaled` synthesizes a graph with the same average degree,
degree skew, feature dimension and node-type mix, shrunk by ``scale``.  All
derived sizes (feature bytes, structure bytes) are computed from the actual
generated graph, so cache/buffer/memory ratios configured against them are
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import DatasetError
from ..utils import as_rng
from .csr import CSRGraph
from .generators import power_law_graph
from .hetero import HeteroGraph, stack_types

#: Bytes per feature element (float32 features throughout the paper).
FEATURE_ELEMENT_BYTES = 4
#: Bytes per structure index (int64 indptr/indices).
INDEX_BYTES = 8


@dataclass(frozen=True)
class DatasetSpec:
    """Published characteristics of one evaluation dataset.

    ``node_type_mix`` lists (type name, fraction of nodes) for heterogeneous
    graphs; homogeneous graphs use a single implicit type.
    ``train_fraction`` is the share of nodes used as mini-batch seeds.
    """

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    heterogeneous: bool = False
    node_type_mix: tuple[tuple[str, float], ...] = ()
    train_fraction: float = 0.01
    #: Degree skew passed to the generator; citation graphs are heavy-tailed.
    skew: float = 0.8
    #: Total on-disk size published in Table 4 of the paper, in bytes.
    #: Differs from our computed size where the original stores features at
    #: reduced precision or only for a subset of node types (MAG240M).
    #: Capacity ratios (CPU memory vs dataset) are derived from this number
    #: so fits-in-memory behavior matches the paper.  ``None`` falls back to
    #: the computed size.
    reported_total_bytes: float | None = None
    #: Feature-data share of the total published in Table 4 (percent).
    reported_feature_pct: float | None = None
    #: Structure-data share published in Table 4 (percent).
    reported_structure_pct: float | None = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.num_edges < 0:
            raise DatasetError(f"{self.name}: invalid node/edge counts")
        if self.feature_dim <= 0:
            raise DatasetError(f"{self.name}: feature dim must be positive")
        if not 0.0 < self.train_fraction <= 1.0:
            raise DatasetError(f"{self.name}: bad train fraction")
        if self.heterogeneous and not self.node_type_mix:
            raise DatasetError(
                f"{self.name}: heterogeneous datasets need a node type mix"
            )

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_nodes

    @property
    def feature_bytes_per_node(self) -> int:
        return self.feature_dim * FEATURE_ELEMENT_BYTES

    @property
    def feature_data_bytes(self) -> int:
        """Size of the full-scale feature table in bytes."""
        return self.num_nodes * self.feature_bytes_per_node

    @property
    def structure_data_bytes(self) -> int:
        """Size of the full-scale CSR structure in bytes."""
        return INDEX_BYTES * (self.num_nodes + 1 + self.num_edges)

    @property
    def total_bytes(self) -> int:
        return self.feature_data_bytes + self.structure_data_bytes


#: Table 2 (real-world) and Table 3 (IGB micro-benchmark) datasets.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        # --- Table 2 ---
        DatasetSpec(
            name="ogbn-papers100M",
            num_nodes=111_059_956,
            num_edges=1_615_685_872,
            feature_dim=128,
            reported_total_bytes=77.4e9,
            reported_feature_pct=68.3,
            reported_structure_pct=31.0,
        ),
        DatasetSpec(
            name="IGB-Full",
            num_nodes=269_364_174,
            num_edges=3_995_777_033,
            feature_dim=1024,
            reported_total_bytes=1084e9,
            reported_feature_pct=94.7,
            reported_structure_pct=5.1,
        ),
        DatasetSpec(
            name="MAG240M",
            num_nodes=244_160_499,
            num_edges=1_728_364_232,
            feature_dim=768,
            heterogeneous=True,
            node_type_mix=(
                ("paper", 0.499),
                ("author", 0.5),
                ("institution", 0.001),
            ),
            reported_total_bytes=200e9,
            reported_feature_pct=86.7,
            reported_structure_pct=12.8,
        ),
        DatasetSpec(
            name="IGBH-Full",
            num_nodes=547_306_935,
            num_edges=5_812_005_639,
            feature_dim=1024,
            heterogeneous=True,
            node_type_mix=(
                ("paper", 0.492),
                ("author", 0.506),
                ("fos", 0.0015),
                ("institute", 0.0005),
            ),
            reported_total_bytes=2773e9,
            reported_feature_pct=96.0,
            reported_structure_pct=3.8,
        ),
        # --- Table 3 ---
        DatasetSpec(
            name="IGB-tiny",
            num_nodes=100_000,
            num_edges=547_416,
            feature_dim=1024,
        ),
        DatasetSpec(
            name="IGB-small",
            num_nodes=1_000_000,
            num_edges=12_070_502,
            feature_dim=1024,
        ),
        DatasetSpec(
            name="IGB-medium",
            num_nodes=10_000_000,
            num_edges=120_077_694,
            feature_dim=1024,
        ),
        DatasetSpec(
            name="IGB-large",
            num_nodes=100_000_000,
            num_edges=1_223_571_364,
            feature_dim=1024,
        ),
    )
}


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset by its paper name (case sensitive)."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


@dataclass(frozen=True)
class ScaledDataset:
    """A synthetic replica of a paper dataset, shrunk by ``scale``.

    The graph is fully materialized; sizes below refer to the *generated*
    graph, so experiment configs built from them keep the paper's ratios.
    """

    spec: DatasetSpec
    scale: float
    graph: CSRGraph
    hetero: HeteroGraph | None
    train_ids: np.ndarray
    feature_dim: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def feature_bytes_per_node(self) -> int:
        return self.feature_dim * FEATURE_ELEMENT_BYTES

    @property
    def feature_data_bytes(self) -> int:
        return self.num_nodes * self.feature_bytes_per_node

    @property
    def structure_data_bytes(self) -> int:
        return self.graph.structure_bytes(INDEX_BYTES)

    @property
    def total_bytes(self) -> int:
        return self.feature_data_bytes + self.structure_data_bytes

    @cached_property
    def reversed_graph(self) -> CSRGraph:
        """Out-edge orientation, used by reverse PageRank hot-node ranking."""
        return self.graph.reverse()


def load_scaled(
    name: str,
    scale: float,
    *,
    seed: int | np.random.Generator | None = 0,
    min_nodes: int = 1_000,
) -> ScaledDataset:
    """Generate a scaled replica of the dataset ``name``.

    Node and edge counts are multiplied by ``scale`` (preserving average
    degree); feature dimension, heterogeneity and degree skew are preserved.

    Args:
        name: a key of :data:`DATASETS`.
        scale: shrink factor in (0, 1]; 1.0 reproduces the published counts.
        seed: RNG seed or generator (generation is deterministic per seed).
        min_nodes: floor on the generated node count.
    """
    spec = get_dataset_spec(name)
    if not 0.0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    rng = as_rng(seed)
    num_nodes = max(min_nodes, int(round(spec.num_nodes * scale)))
    num_edges = int(round(spec.avg_degree * num_nodes))
    graph = power_law_graph(
        num_nodes, num_edges, skew=spec.skew, seed=rng
    )
    hetero: HeteroGraph | None = None
    if spec.heterogeneous:
        counts = _type_counts(spec, graph.num_nodes)
        hetero = stack_types(counts, graph)
    n_train = max(1, int(round(graph.num_nodes * spec.train_fraction)))
    if hetero is not None:
        # Seeds come from the primary (first-listed) node type, as in the
        # paper's node classification workloads (papers are the labeled type).
        candidates = hetero.nodes_of_type(spec.node_type_mix[0][0])
    else:
        candidates = np.arange(graph.num_nodes, dtype=np.int64)
    n_train = min(n_train, len(candidates))
    train_ids = rng.choice(candidates, size=n_train, replace=False)
    train_ids.sort()
    return ScaledDataset(
        spec=spec,
        scale=scale,
        graph=graph,
        hetero=hetero,
        train_ids=train_ids,
        feature_dim=spec.feature_dim,
    )


def _type_counts(spec: DatasetSpec, num_nodes: int) -> dict[str, int]:
    """Distribute ``num_nodes`` across the spec's node types by fraction."""
    fractions = np.array([f for _, f in spec.node_type_mix], dtype=np.float64)
    fractions = fractions / fractions.sum()
    counts = np.floor(fractions * num_nodes).astype(np.int64)
    counts[np.argmax(counts)] += num_nodes - counts.sum()
    return {
        name: int(count)
        for (name, _), count in zip(spec.node_type_mix, counts)
    }
