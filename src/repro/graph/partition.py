"""Graph partitioning for subgraph-based (ClusterGCN) training.

Section 4.7 of the paper explains why GIDS does not evaluate ClusterGCN:
subgraph sampling requires partitioning the graph (METIS) so each cluster
fits in memory, and "Metis-based graph dataset partition is an extremely
time-consuming process for large-scale graph datasets like IGB (more than
2 days)".  To make that argument quantitative, this module provides a
from-scratch partitioner in the same family — balanced seeded-BFS growth
followed by greedy boundary refinement (the uncoarsened core of
multilevel partitioners) — along with quality metrics, so the ClusterGCN
benchmark can measure real partitioning cost on the scaled replicas and
extrapolate it to full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from ..utils import as_rng
from .csr import CSRGraph


@dataclass(frozen=True)
class PartitionResult:
    """A node-to-part assignment plus quality metrics."""

    parts: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        parts = np.ascontiguousarray(self.parts, dtype=np.int64)
        object.__setattr__(self, "parts", parts)
        if self.num_parts <= 0:
            raise GraphError("num_parts must be positive")
        if len(parts) and (parts.min() < 0 or parts.max() >= self.num_parts):
            raise GraphError("part ids out of range")

    @property
    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.parts, minlength=self.num_parts)

    @property
    def balance(self) -> float:
        """Max part size over the ideal size (1.0 = perfectly balanced)."""
        sizes = self.part_sizes
        ideal = len(self.parts) / self.num_parts
        return float(sizes.max() / ideal) if ideal > 0 else 1.0

    def members(self, part: int) -> np.ndarray:
        """Node ids assigned to ``part``."""
        if not 0 <= part < self.num_parts:
            raise GraphError(f"part {part} out of range")
        return np.flatnonzero(self.parts == part).astype(np.int64)

    def halo_nodes(self, graph: CSRGraph, part: int) -> np.ndarray:
        """Boundary in-neighbors of ``part``: the halo a sweep must fetch.

        Sorted unique node ids that live *outside* ``part`` but feed at
        least one in-edge into it.  A partition-sweep step computing
        ``part`` needs the previous layer's values for exactly
        ``members(part) + halo_nodes(part)``.
        """
        return halo_nodes(graph, self, part)

    def edge_cut_stats(self, graph: CSRGraph) -> list[dict]:
        """Per-partition edge-cut/halo accounting (one dict per part).

        Keys: ``part``, ``nodes``, ``internal_edges`` (both endpoints
        inside), ``cut_in_edges`` (src outside, dst inside — the halo
        traffic the sweep pays), ``cut_out_edges`` (src inside, dst
        outside), ``halo_nodes`` (unique outside in-neighbors).
        """
        if len(self.parts) != graph.num_nodes:
            raise GraphError("partition does not cover this graph")
        num_parts = self.num_parts
        src = graph.indices
        dst = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), graph.degrees
        )
        sp = self.parts[src]
        dp = self.parts[dst]
        cut = sp != dp
        internal = np.bincount(dp[~cut], minlength=num_parts)
        cut_in = np.bincount(dp[cut], minlength=num_parts)
        cut_out = np.bincount(sp[cut], minlength=num_parts)
        # Unique (src node, destination part) pairs over cut edges — the
        # same source node feeding several parts counts once per part.
        pairs = np.unique(src[cut] * np.int64(num_parts) + dp[cut])
        halo = np.bincount(
            (pairs % num_parts).astype(np.int64), minlength=num_parts
        )
        sizes = self.part_sizes
        return [
            {
                "part": p,
                "nodes": int(sizes[p]),
                "internal_edges": int(internal[p]),
                "cut_in_edges": int(cut_in[p]),
                "cut_out_edges": int(cut_out[p]),
                "halo_nodes": int(halo[p]),
            }
            for p in range(num_parts)
        ]


def halo_nodes(
    graph: CSRGraph, partition: PartitionResult, part: int
) -> np.ndarray:
    """Sorted unique in-neighbors of ``part`` assigned to other parts."""
    if len(partition.parts) != graph.num_nodes:
        raise GraphError("partition does not cover this graph")
    if not 0 <= part < partition.num_parts:
        raise GraphError(f"part {part} out of range")
    dst = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.degrees
    )
    sel = partition.parts[dst] == part
    srcs = graph.indices[sel]
    outside = srcs[partition.parts[srcs] != part]
    return np.unique(outside).astype(np.int64)


def edge_cut(graph: CSRGraph, parts: np.ndarray) -> int:
    """Number of edges whose endpoints live in different parts."""
    parts = np.asarray(parts, dtype=np.int64)
    if len(parts) != graph.num_nodes:
        raise GraphError("parts must assign every node")
    dst = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    return int(np.count_nonzero(parts[dst] != parts[graph.indices]))


def bfs_partition(
    graph: CSRGraph,
    num_parts: int,
    *,
    seed: int | np.random.Generator | None = 0,
) -> PartitionResult:
    """Balanced seeded-BFS partitioning.

    ``num_parts`` seeds grow breadth-first in round-robin order; each part
    stops accepting nodes at the ideal size (plus slack for the last
    part), and any node unreachable from the seeds is assigned to the
    currently smallest part.  This is the classic "graph growing" scheme
    used to initialize multilevel partitioners.
    """
    n = graph.num_nodes
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    if num_parts > n:
        raise GraphError("more parts than nodes")
    rng = as_rng(seed)
    parts = np.full(n, -1, dtype=np.int64)
    capacity = int(np.ceil(n / num_parts))

    seeds = rng.choice(n, size=num_parts, replace=False)
    frontiers: list[list[int]] = [[int(s)] for s in seeds]
    sizes = np.zeros(num_parts, dtype=np.int64)
    for p, s in enumerate(seeds):
        parts[s] = p
        sizes[p] = 1

    # Treat edges as undirected for growth: out-neighbors come from the
    # reversed graph.
    reverse = graph.reverse()

    active = True
    while active:
        active = False
        for p in range(num_parts):
            if not frontiers[p] or sizes[p] >= capacity:
                continue
            active = True
            next_frontier: list[int] = []
            for node in frontiers[p]:
                for neighbor_list in (
                    graph.neighbors(node),
                    reverse.neighbors(node),
                ):
                    for v in neighbor_list:
                        v = int(v)
                        if parts[v] == -1 and sizes[p] < capacity:
                            parts[v] = p
                            sizes[p] += 1
                            next_frontier.append(v)
            frontiers[p] = next_frontier

    unassigned = np.flatnonzero(parts == -1)
    for v in unassigned:
        p = int(np.argmin(sizes))
        parts[v] = p
        sizes[p] += 1
    return PartitionResult(parts=parts, num_parts=num_parts)


def refine_partition(
    graph: CSRGraph,
    partition: PartitionResult,
    *,
    passes: int = 2,
    balance_slack: float = 1.1,
) -> PartitionResult:
    """Greedy boundary refinement (Kernighan-Lin style, one-sided moves).

    Each pass scans boundary nodes and moves a node to the neighboring
    part holding the majority of its (undirected) neighbors when the move
    reduces the edge cut and keeps the destination part within
    ``balance_slack`` of the ideal size.
    """
    if passes < 0:
        raise GraphError("passes must be non-negative")
    if balance_slack < 1.0:
        raise GraphError("balance_slack must be >= 1.0")
    n = graph.num_nodes
    num_parts = partition.num_parts
    parts = partition.parts.copy()
    sizes = np.bincount(parts, minlength=num_parts)
    limit = int(np.ceil(n / num_parts * balance_slack))
    reverse = graph.reverse()

    for _ in range(passes):
        moved = 0
        for v in range(n):
            neighbors = np.concatenate(
                [graph.neighbors(v), reverse.neighbors(v)]
            )
            if len(neighbors) == 0:
                continue
            counts = np.bincount(parts[neighbors], minlength=num_parts)
            current = parts[v]
            best = int(np.argmax(counts))
            if best == current:
                continue
            gain = counts[best] - counts[current]
            if gain > 0 and sizes[best] < limit:
                sizes[current] -= 1
                sizes[best] += 1
                parts[v] = best
                moved += 1
        if moved == 0:
            break
    return PartitionResult(parts=parts, num_parts=num_parts)


def partition_graph(
    graph: CSRGraph,
    num_parts: int,
    *,
    refine_passes: int = 2,
    seed: int | np.random.Generator | None = 0,
) -> PartitionResult:
    """BFS growth followed by boundary refinement — the full pipeline."""
    initial = bfs_partition(graph, num_parts, seed=seed)
    if refine_passes == 0:
        return initial
    return refine_partition(graph, initial, passes=refine_passes)
