"""Per-iteration and per-run metrics for the GNN training pipeline.

The paper's pipeline has four stages (Section 2.2): graph sampling, feature
aggregation, data transfer and model training.  Every loader reports modeled
time per stage per iteration; :class:`RunReport` aggregates them into the
quantities the figures plot (stage breakdowns, effective bandwidths,
end-to-end time with or without prep/train overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PipelineError
from ..sim.counters import TransferCounters

#: Pipeline stage names in execution order.
STAGES = ("sampling", "aggregation", "transfer", "training")


@dataclass
class StageTimes:
    """Modeled seconds spent in each pipeline stage for one iteration."""

    sampling: float = 0.0
    aggregation: float = 0.0
    transfer: float = 0.0
    training: float = 0.0

    def __post_init__(self) -> None:
        for stage in STAGES:
            if getattr(self, stage) < 0:
                raise PipelineError(f"negative time for stage {stage!r}")

    @property
    def preparation(self) -> float:
        """Data-preparation time: everything except model training."""
        return self.sampling + self.aggregation + self.transfer

    @property
    def total(self) -> float:
        return self.preparation + self.training

    def add(self, other: "StageTimes") -> None:
        self.sampling += other.sampling
        self.aggregation += other.aggregation
        self.transfer += other.transfer
        self.training += other.training

    def state_dict(self) -> dict:
        """Plain-dict snapshot (checkpointable)."""
        return {stage: getattr(self, stage) for stage in STAGES}

    @classmethod
    def from_state_dict(cls, state: dict) -> "StageTimes":
        return cls(**{stage: float(state[stage]) for stage in STAGES})


@dataclass
class IterationMetrics:
    """One training iteration's work and modeled time."""

    times: StageTimes
    num_seeds: int
    num_input_nodes: int
    num_sampled: int
    num_edges: int
    counters: TransferCounters

    def state_dict(self) -> dict:
        """Plain-dict snapshot (checkpointable)."""
        return {
            "times": self.times.state_dict(),
            "num_seeds": self.num_seeds,
            "num_input_nodes": self.num_input_nodes,
            "num_sampled": self.num_sampled,
            "num_edges": self.num_edges,
            "counters": self.counters.state_dict(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterationMetrics":
        return cls(
            times=StageTimes.from_state_dict(state["times"]),
            num_seeds=int(state["num_seeds"]),
            num_input_nodes=int(state["num_input_nodes"]),
            num_sampled=int(state["num_sampled"]),
            num_edges=int(state["num_edges"]),
            counters=TransferCounters.from_state_dict(state["counters"]),
        )


@dataclass
class RunReport:
    """Aggregated results of a measured training run.

    ``overlapped`` marks loaders whose data preparation runs ahead of
    training (GIDS with the accumulator decouples the stages, Section 3.2),
    in which case end-to-end time is the maximum of the two streams rather
    than their sum.
    """

    loader_name: str
    iterations: list[IterationMetrics] = field(default_factory=list)
    overlapped: bool = False

    def append(self, metrics: IterationMetrics) -> None:
        self.iterations.append(metrics)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def stage_totals(self) -> StageTimes:
        totals = StageTimes()
        for it in self.iterations:
            totals.add(it.times)
        return totals

    @property
    def e2e_time(self) -> float:
        """End-to-end modeled time of the measured iterations."""
        totals = self.stage_totals
        if self.overlapped:
            return max(totals.preparation, totals.training)
        return totals.total

    @property
    def counters(self) -> TransferCounters:
        merged = TransferCounters()
        for it in self.iterations:
            merged.merge(it.counters)
        return merged

    @property
    def total_input_nodes(self) -> int:
        return sum(it.num_input_nodes for it in self.iterations)

    @property
    def aggregation_time(self) -> float:
        return self.stage_totals.aggregation

    @property
    def effective_aggregation_bandwidth(self) -> float:
        """Feature bytes served per second of aggregation time (Fig. 10)."""
        agg = self.aggregation_time
        if agg == 0:
            return 0.0
        return self.counters.total_feature_bytes / agg

    @property
    def pcie_ingress_bandwidth(self) -> float:
        """Bytes crossing PCIe per second of aggregation time (Fig. 9)."""
        agg = self.aggregation_time
        if agg == 0:
            return 0.0
        return self.counters.ingress_bytes / agg

    @property
    def gpu_cache_hit_ratio(self) -> float:
        return self.counters.gpu_cache_hit_ratio

    @property
    def total_retries(self) -> int:
        """Storage commands re-issued after injected failures."""
        return self.counters.storage_retries

    @property
    def total_fallbacks(self) -> int:
        """Reads served by the degraded-mode CPU/feature-store path."""
        return self.counters.fallback_requests

    def resilience_summary(self) -> dict[str, float]:
        """Fault/retry/fallback view of the run (all zero when healthy)."""
        counters = self.counters
        return {
            "injected_faults": counters.injected_faults,
            "storage_retries": counters.storage_retries,
            "latency_spikes": counters.latency_spikes,
            "fallback_requests": counters.fallback_requests,
            "fallback_bytes": counters.fallback_bytes,
            "fallback_fraction": counters.fallback_fraction,
            "retry_timeouts": counters.retry_timeouts,
            "replica_redirects": counters.replica_redirects,
            "parity_reconstructs": counters.parity_reconstructs,
            "reconstruct_reads": counters.reconstruct_reads,
            "rebuild_pages": counters.rebuild_pages,
        }

    def integrity_summary(self) -> dict[str, float]:
        """Data-integrity view of the run (all zero when the layer is off).

        ``consistent`` asserts the layer's core invariant: every detected
        corruption ended as a repair or a quarantine.
        """
        counters = self.counters
        return {
            "verified_pages": counters.verified_pages,
            "unverified_pages": counters.unverified_pages,
            "corrupt_detected": counters.corrupt_detected,
            "corrupt_repaired": counters.corrupt_repaired,
            "corrupt_quarantined": counters.corrupt_quarantined,
            "integrity_rereads": counters.integrity_rereads,
            "scrubbed_pages": counters.scrubbed_pages,
            "consistent": (
                counters.corrupt_detected
                == counters.corrupt_repaired + counters.corrupt_quarantined
            ),
        }

    def breakdown_fractions(self) -> dict[str, float]:
        """Share of serialized time per stage (the Fig. 5 bars)."""
        totals = self.stage_totals
        if totals.total == 0:
            return {stage: 0.0 for stage in STAGES}
        return {
            stage: getattr(totals, stage) / totals.total for stage in STAGES
        }

    def time_per_iteration(self) -> float:
        if not self.iterations:
            raise PipelineError("run report holds no iterations")
        return self.e2e_time / self.num_iterations

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Plain-dict snapshot of the whole report (checkpointable)."""
        return {
            "loader_name": self.loader_name,
            "overlapped": self.overlapped,
            "iterations": [it.state_dict() for it in self.iterations],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "RunReport":
        report = cls(
            loader_name=str(state["loader_name"]),
            overlapped=bool(state["overlapped"]),
        )
        for it in state["iterations"]:
            report.append(IterationMetrics.from_state_dict(it))
        return report
