"""End-to-end training pipeline: any dataloader + the NumPy GraphSAGE.

Combines the functional side (real sampled batches, real features, real
gradient steps) with the modeled side (per-stage simulated time from the
loader's :meth:`run`).  Used by the examples to demonstrate that the GIDS
dataloader trains an actual model, and by integration tests to check the
loaders agree on the workload they serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PipelineError
from ..training.graphsage import GraphSAGE, synthetic_labels


@dataclass
class TrainingResult:
    """Losses and accuracy of a functional training run."""

    losses: list[float] = field(default_factory=list)
    final_train_accuracy: float = 0.0

    @property
    def num_steps(self) -> int:
        return len(self.losses)


class TrainingPipeline:
    """Drives real GNN training through a dataloader.

    Args:
        loader: any loader exposing ``iter_batches`` (GIDS, BaM, DGL-mmap,
            Ginex, UVA).
        model: a :class:`GraphSAGE` whose layer count matches the sampler.
        num_classes: label space size for the synthetic node-classification
            task (labels derive deterministically from node features).
        label_seed: seed of the label projection.
    """

    def __init__(
        self,
        loader,
        model: GraphSAGE,
        *,
        num_classes: int,
        label_seed: int = 0,
    ) -> None:
        if num_classes <= 0:
            raise PipelineError("num_classes must be positive")
        self.loader = loader
        self.model = model
        self.num_classes = num_classes
        self.label_seed = label_seed

    def _labels_for(self, seeds: np.ndarray) -> np.ndarray:
        return synthetic_labels(
            self.loader.store,
            seeds,
            self.num_classes,
            seed=self.label_seed,
        )

    def train(self, num_iterations: int) -> TrainingResult:
        """Run ``num_iterations`` real training steps; returns the losses."""
        if num_iterations <= 0:
            raise PipelineError("num_iterations must be positive")
        result = TrainingResult()
        last_batch = None
        last_features = None
        for batch, features in self.loader.iter_batches(num_iterations):
            labels = self._labels_for(batch.seeds)
            loss = self.model.train_step(batch, features, labels)
            result.losses.append(loss)
            last_batch, last_features = batch, features
        if last_batch is not None:
            predictions = self.model.predict(last_batch, last_features)
            labels = self._labels_for(last_batch.seeds)
            result.final_train_accuracy = float(
                np.mean(predictions == labels)
            )
        return result
