"""End-to-end training pipeline: any dataloader + the NumPy GraphSAGE.

Combines the functional side (real sampled batches, real features, real
gradient steps) with the modeled side (per-stage simulated time from the
loader's :meth:`run`).  Used by the examples to demonstrate that the GIDS
dataloader trains an actual model, and by integration tests to check the
loaders agree on the workload they serve.

The pipeline is *stateful and resumable*: it keeps the completed-step
count, loss history, run report and the queue of already-aggregated but
not-yet-trained mini-batches as instance state, and :meth:`train` runs a
requested number of *additional* steps.  A loss is appended only after its
training step has fully completed, so an interruption at any point can
never record a half-applied step; together with
:meth:`state_dict`/:meth:`load_state_dict` this is what makes crash-safe
checkpoint/resume bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import CheckpointError, PipelineError
from ..sampling.minibatch import MiniBatch
from ..training.graphsage import GraphSAGE, synthetic_labels
from .metrics import RunReport


@dataclass
class TrainingResult:
    """Losses and accuracy of a functional training run.

    ``completed_iterations`` counts the steps whose weight updates fully
    applied — always equal to ``len(losses)``, surfaced explicitly so
    supervised runs can report how far a (possibly interrupted and
    resumed) run actually got.
    """

    losses: list[float] = field(default_factory=list)
    final_train_accuracy: float = 0.0
    completed_iterations: int = 0

    @property
    def num_steps(self) -> int:
        return len(self.losses)


class TrainingPipeline:
    """Drives real GNN training through a dataloader.

    Args:
        loader: any loader exposing ``iter_batches`` (GIDS, BaM, DGL-mmap,
            Ginex, UVA).  Loaders that additionally expose
            ``next_training_group`` (GIDS-family) get per-iteration modeled
            metrics collected into :attr:`report` and support
            checkpoint/resume.
        model: a :class:`GraphSAGE` whose layer count matches the sampler.
        num_classes: label space size for the synthetic node-classification
            task (labels derive deterministically from node features).
        label_seed: seed of the label projection.
    """

    def __init__(
        self,
        loader,
        model: GraphSAGE,
        *,
        num_classes: int,
        label_seed: int = 0,
    ) -> None:
        if num_classes <= 0:
            raise PipelineError("num_classes must be positive")
        self.loader = loader
        self.model = model
        self.num_classes = num_classes
        self.label_seed = label_seed

        self.completed_steps = 0
        self.losses: list[float] = []
        config = getattr(loader, "config", None)
        self.report = RunReport(
            loader_name=getattr(loader, "name", type(loader).__name__),
            overlapped=bool(getattr(config, "accumulator_enabled", False)),
        )
        # Aggregated-but-untrained mini-batches: the accumulator merges
        # several future iterations into one storage batch, so at any
        # moment some batches have been served but not yet trained on.
        self._pending: deque[MiniBatch] = deque()
        self._last_batch: MiniBatch | None = None
        self._last_features: np.ndarray | None = None

    def _labels_for(self, seeds: np.ndarray) -> np.ndarray:
        return synthetic_labels(
            self.loader.store,
            seeds,
            self.num_classes,
            seed=self.label_seed,
        )

    def train(
        self,
        num_iterations: int,
        *,
        on_step: Callable[["TrainingPipeline"], None] | None = None,
    ) -> TrainingResult:
        """Run ``num_iterations`` *additional* training steps.

        Each step becomes visible (loss appended, ``completed_steps``
        advanced) only after :meth:`GraphSAGE.train_step` has returned, so
        an exception at any point — including one raised by ``on_step`` —
        leaves the pipeline consistent at the last completed step.

        Args:
            num_iterations: steps to run on top of ``completed_steps``.
            on_step: optional hook called after every completed step with
                the pipeline itself; the run supervisor uses it for
                checkpoint cadence, crash events and the watchdog.  An
                exception raised here propagates out of ``train``.
        """
        if num_iterations <= 0:
            raise PipelineError("num_iterations must be positive")
        target = self.completed_steps + num_iterations
        use_groups = hasattr(self.loader, "next_training_group")
        batch_iter = None
        if not use_groups:
            batch_iter = self.loader.iter_batches(num_iterations)
        while self.completed_steps < target:
            if use_groups:
                if not self._pending:
                    pairs = self.loader.next_training_group(
                        target - self.completed_steps
                    )
                    for batch, metrics in pairs:
                        self.report.append(metrics)
                        self._pending.append(batch)
                batch = self._pending.popleft()
                fetch = getattr(self.loader, "fetch_features", None)
                if fetch is not None:
                    # GIDS-family loaders own the integrity layer: the
                    # delivered matrix reflects any corruption that slipped
                    # past verification.
                    features = fetch(batch)
                else:
                    features = self.loader.store.fetch(batch.input_nodes)
            else:
                batch, features = next(batch_iter)
            labels = self._labels_for(batch.seeds)
            loss = self.model.train_step(batch, features, labels)
            self.losses.append(loss)
            self.completed_steps += 1
            self._last_batch = batch
            self._last_features = features
            if on_step is not None:
                on_step(self)
        return self.result()

    def result(self) -> TrainingResult:
        """The run's outcome so far (losses, step count, train accuracy)."""
        result = TrainingResult(
            losses=list(self.losses),
            completed_iterations=self.completed_steps,
        )
        if self._last_batch is not None:
            features = self._last_features
            if features is None:
                features = self.loader.store.fetch(
                    self._last_batch.input_nodes
                )
            predictions = self.model.predict(self._last_batch, features)
            labels = self._labels_for(self._last_batch.seeds)
            result.final_train_accuracy = float(
                np.mean(predictions == labels)
            )
        return result

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the whole training run (model, loader, progress).

        Requires a loader with ``state_dict`` support (the GIDS family);
        the baseline loaders are stateless generators and cannot be
        checkpointed mid-run.
        """
        if not hasattr(self.loader, "state_dict"):
            raise CheckpointError(
                f"loader {type(self.loader).__name__} does not support "
                "checkpointing"
            )
        return {
            "num_classes": self.num_classes,
            "label_seed": self.label_seed,
            "completed_steps": self.completed_steps,
            "losses": list(self.losses),
            "model": self.model.state_dict(),
            "loader": self.loader.state_dict(),
            "report": self.report.state_dict(),
            "pending": [b.state_dict() for b in self._pending],
            "last_batch": (
                None
                if self._last_batch is None
                else self._last_batch.state_dict()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a run captured by :meth:`state_dict`.

        The pipeline must have been constructed over the same task (loader
        configuration, model shape, class count, label seed) as the one
        that produced the snapshot.
        """
        if not hasattr(self.loader, "load_state_dict"):
            raise CheckpointError(
                f"loader {type(self.loader).__name__} does not support "
                "checkpointing"
            )
        if state.get("num_classes") != self.num_classes:
            raise CheckpointError(
                f"checkpoint num_classes {state.get('num_classes')} does "
                f"not match configured {self.num_classes}"
            )
        if state.get("label_seed") != self.label_seed:
            raise CheckpointError(
                f"checkpoint label_seed {state.get('label_seed')} does "
                f"not match configured {self.label_seed}"
            )
        completed = int(state["completed_steps"])
        losses = [float(x) for x in state["losses"]]
        if len(losses) != completed:
            raise CheckpointError(
                f"checkpoint records {len(losses)} losses for "
                f"{completed} completed steps"
            )
        self.model.load_state_dict(state["model"])
        self.loader.load_state_dict(state["loader"])
        self.completed_steps = completed
        self.losses = losses
        self.report = RunReport.from_state_dict(state["report"])
        self._pending = deque(
            MiniBatch.from_state_dict(b) for b in state["pending"]
        )
        last = state["last_batch"]
        self._last_batch = (
            None if last is None else MiniBatch.from_state_dict(last)
        )
        # Features are deterministic given the batch; re-fetched lazily.
        self._last_features = None
