"""ASCII timeline of pipeline-stage overlap.

Renders how the accumulator's decoupling changes the execution schedule:
a serial loader alternates preparation and training on one lane, while
GIDS runs preparation ahead on its own lane with training consuming
finished mini-batches behind it (Section 3.2's "the training stage makes
progress by accessing the next mini-batch from the batch buffers").
"""

from __future__ import annotations

from ..errors import PipelineError
from ..utils import format_time
from .metrics import RunReport


def render_timeline(
    report: RunReport,
    *,
    width: int = 72,
    max_iterations: int = 12,
) -> str:
    """Render the first iterations of a run as two labeled lanes.

    Args:
        report: a measured run.
        width: character budget for the time axis.
        max_iterations: iterations drawn (the chart is illustrative).
    """
    if not report.iterations:
        raise PipelineError("run report holds no iterations")
    if width < 20:
        raise PipelineError("width must be at least 20 characters")
    if max_iterations <= 0:
        raise PipelineError(
            f"max_iterations must be positive, got {max_iterations}"
        )
    iterations = report.iterations[:max_iterations]

    # Schedule: prep is always serial with itself; training of iteration i
    # starts after its prep AND after training of i-1.  Overlapped loaders
    # let prep of i+1 start immediately; serial loaders make prep wait for
    # the previous training step.
    prep_spans = []
    train_spans = []
    prep_free = 0.0
    train_free = 0.0
    for it in iterations:
        prep_start = prep_free if report.overlapped else max(
            prep_free, train_free
        )
        prep_end = prep_start + it.times.preparation
        train_start = max(prep_end, train_free)
        train_end = train_start + it.times.training
        prep_spans.append((prep_start, prep_end))
        train_spans.append((train_start, train_end))
        prep_free = prep_end
        train_free = train_end

    total = max(train_spans[-1][1], prep_spans[-1][1])
    if total <= 0:
        raise PipelineError("timeline requires non-zero stage times")
    scale = (width - 1) / total

    def lane(spans: list[tuple[float, float]], symbols: str) -> str:
        cells = [" "] * width
        for index, (start, end) in enumerate(spans):
            a = int(start * scale)
            b = max(a + 1, int(end * scale))
            mark = symbols[index % len(symbols)]
            for pos in range(a, min(b, width)):
                cells[pos] = mark
        return "".join(cells)

    lines = [
        f"{report.loader_name}: first {len(iterations)} iterations over "
        f"{format_time(total)} "
        f"({'overlapped' if report.overlapped else 'serial'})",
        "prep  |" + lane(prep_spans, "0123456789ab"),
        "train |" + lane(train_spans, "0123456789ab"),
        "      |" + _axis_line(width, total),
    ]
    busy_train = sum(e - s for s, e in train_spans) / total
    lines.append(
        f"training-lane utilization: {busy_train:.0%}"
        " (digits identify iterations)"
    )
    return "\n".join(lines)


def _axis_line(width: int, total: float) -> str:
    """Time-axis ruler: 0, the midpoint and the end in adaptive units."""
    cells = [" "] * width
    cells[0] = "0"
    mid = format_time(total / 2)
    start = max(2, width // 2 - len(mid) // 2)
    for offset, char in enumerate(mid):
        if start + offset < width:
            cells[start + offset] = char
    right = format_time(total)
    start = max(0, width - len(right))
    for offset, char in enumerate(right):
        if start + offset < width:
            cells[start + offset] = char
    return "".join(cells)
