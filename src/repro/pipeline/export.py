"""Serialize run reports to dictionaries, JSON and CSV.

Benchmark pipelines usually post-process loader measurements elsewhere
(plotting, regression tracking); these helpers flatten a
:class:`~repro.pipeline.metrics.RunReport` into stable, versioned records.
"""

from __future__ import annotations

import csv
import io
import json
import math

from ..errors import PipelineError
from ..utils import package_version
from .metrics import STAGES, RunReport

#: Bump when the exported record layout changes.
#: v2: added the ``faults`` block and NaN/inf-safe float serialization.
#: v3: added the optional ``checkpoint_summary`` block (supervised runs).
#: v4: added ``repro_version`` and the optional ``telemetry`` block
#:     (traced runs: per-track span seconds and the metrics registry).
#: v5: added the ``integrity_summary`` block (verify-on-read and scrubber
#:     accounting; all-zero with ``consistent: true`` when the layer is
#:     off).
#: v6: added the optional ``attribution`` block (spec snapshot,
#:     per-resource utilization, bottleneck verdict, what-if table; runs
#:     exported with a ``system``) and the optional ``alerts`` block (SLO
#:     evaluation results; runs exported with ``--alerts``).
#: v7: added the optional ``serving`` block (``repro serve`` overload
#:     accounting: offered/admitted/shed/rejected counts, latency
#:     percentiles, breaker and brownout transitions) and the ``capacity``
#:     row of the attribution what-if table.
#: v8: added the optional ``fleet`` block (elastic multi-GPU runs:
#:     per-worker counters, peer-cache hit ratio, rebalance/steal/worker
#:     events, breaker transitions) and the per-fleet-size capacity rows
#:     of the attribution what-if table.
#: v9: added the optional ``fullgraph`` block (``repro fullgraph`` runs:
#:     memory plan, partition edge-cut stats, per-class spill/reload
#:     traffic, epoch loss/accuracy trajectories, 2x-HBM what-if) and the
#:     ``2x HBM`` row of the attribution what-if table for such runs.
#: v10: added the storage-HA counters (``replica_redirects``,
#:     ``parity_reconstructs``, ``reconstruct_reads``, ``rebuild_pages``)
#:     to the ``faults`` block, the optional ``storage_ha`` block
#:     (placement mode, device health states and transitions, rebuild
#:     progress from :meth:`~repro.storage_ha.StorageHA.summary_block`),
#:     and the degraded-capacity rows of the attribution what-if table.
#: v11: added the optional ``observability`` block (live metric-snapshot
#:     cadence and file pointers from
#:     :meth:`~repro.telemetry.snapshot.MetricsSnapshotter.export_block`,
#:     the tracer's ``telemetry.dropped_events`` count, and the flight
#:     recorder's :meth:`~repro.telemetry.flight.FlightRecorder
#:     .export_block` with its last dump trigger).
EXPORT_SCHEMA_VERSION = 11


def _finite(value: float) -> float | None:
    """Return ``value`` if it is a finite number, else ``None``.

    ``json.dumps`` happily emits ``NaN``/``Infinity`` — tokens that are
    *not* valid JSON and break strict parsers downstream.  Every float
    that could be contaminated (ratios of zero totals, degenerate runs)
    goes through here so the export is always syntactically valid JSON.
    """
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def report_to_dict(
    report: RunReport,
    *,
    checkpoint_summary: "object | None" = None,
    tracer: "object | None" = None,
    system: "object | None" = None,
    alerts: "dict | None" = None,
    serving: "dict | None" = None,
    fleet: "dict | None" = None,
    fullgraph: "dict | None" = None,
    storage_ha: "dict | None" = None,
    observability: "dict | None" = None,
) -> dict:
    """Flatten a run report into a JSON-serializable summary dict.

    Args:
        report: the measured run.
        checkpoint_summary: optional
            :class:`~repro.checkpoint.supervisor.CheckpointSummary` (or a
            plain dict) from a supervised run; exported as the
            ``checkpoint_summary`` block.  ``None`` (unsupervised runs)
            exports the block as ``None`` so the schema stays uniform.
        tracer: optional :class:`~repro.telemetry.Tracer` whose
            :meth:`~repro.telemetry.Tracer.export_block` becomes the
            ``telemetry`` block; ``None`` (untraced runs) exports the
            block as ``None``.
        system: optional :class:`~repro.config.SystemConfig` the run was
            modeled on; when given, the export embeds the ``attribution``
            block (spec snapshot, per-resource utilization, bottleneck
            verdict and what-if table) so the saved report is analyzable
            offline.  ``None`` exports the block as ``None``.
        alerts: optional ``alerts`` summary block from
            :meth:`~repro.observatory.slo.SLOMonitor.evaluate`; ``None``
            (no SLO evaluation) exports the block as ``None``.
        serving: optional ``serving`` block from
            :meth:`~repro.serving.report.ServingReport.to_dict`; ``None``
            (training runs) exports the block as ``None``.
        fleet: optional ``fleet`` block from
            :meth:`~repro.core.fleet.FleetResult.fleet_block` (elastic
            multi-GPU runs: per-worker counters, peer-cache hit ratio,
            rebalance/steal/worker events, breaker transitions); ``None``
            (single-GPU runs) exports the block as ``None``.
        fullgraph: optional ``fullgraph`` block from
            :meth:`~repro.fullgraph.FullGraphTrainer.fullgraph_block`
            (partition-sweep runs: memory plan, edge-cut stats,
            spill/reload traffic, epoch trajectories, 2x-HBM what-if);
            ``None`` (mini-batch runs) exports the block as ``None``.
        storage_ha: optional ``storage_ha`` block from
            :meth:`~repro.storage_ha.StorageHA.summary_block` (redundant
            runs: placement mode, device health states/transitions,
            rebuild progress); ``None`` (no redundancy) exports the
            block as ``None``.
        observability: optional ``observability`` block from
            :func:`observability_block` (streamed/flight-recorded runs:
            snapshot cadence and file pointers, dropped-event count,
            flight-recorder state); ``None`` exports the block as
            ``None``.
    """
    # Local import: the observatory analyzes the dicts this module emits,
    # so the reverse dependency stays off the module level.
    from ..observatory.attribution import attribute_summary, system_spec_block

    totals = report.stage_totals
    counters = report.counters
    if checkpoint_summary is not None and hasattr(
        checkpoint_summary, "to_dict"
    ):
        checkpoint_summary = checkpoint_summary.to_dict()
    telemetry = None
    if tracer is not None and getattr(tracer, "enabled", True):
        telemetry = tracer.export_block()
    summary = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "repro_version": package_version(),
        "loader": report.loader_name,
        "iterations": report.num_iterations,
        "overlapped": report.overlapped,
        "e2e_seconds": _finite(report.e2e_time),
        "seconds_per_iteration": _finite(report.time_per_iteration()),
        "stage_seconds": {
            stage: _finite(getattr(totals, stage)) for stage in STAGES
        },
        "counters": {
            "storage_requests": counters.storage_requests,
            "storage_bytes": counters.storage_bytes,
            "cpu_buffer_requests": counters.cpu_buffer_requests,
            "cpu_buffer_bytes": counters.cpu_buffer_bytes,
            "gpu_cache_hits": counters.gpu_cache_hits,
            "gpu_cache_bytes": counters.gpu_cache_bytes,
            "page_faults": counters.page_faults,
            "page_cache_hits": counters.page_cache_hits,
        },
        "faults": {
            "injected_faults": counters.injected_faults,
            "storage_retries": counters.storage_retries,
            "latency_spikes": counters.latency_spikes,
            "fallback_requests": counters.fallback_requests,
            "fallback_bytes": counters.fallback_bytes,
            "fallback_fraction": _finite(counters.fallback_fraction),
            "retry_timeouts": counters.retry_timeouts,
            "replica_redirects": counters.replica_redirects,
            "parity_reconstructs": counters.parity_reconstructs,
            "reconstruct_reads": counters.reconstruct_reads,
            "rebuild_pages": counters.rebuild_pages,
        },
        "integrity_summary": report.integrity_summary(),
        "gpu_cache_hit_ratio": _finite(report.gpu_cache_hit_ratio),
        "redirect_fraction": _finite(counters.redirect_fraction),
        "effective_aggregation_bandwidth": _finite(
            report.effective_aggregation_bandwidth
        ),
        "pcie_ingress_bandwidth": _finite(report.pcie_ingress_bandwidth),
        "total_input_nodes": report.total_input_nodes,
        "checkpoint_summary": checkpoint_summary,
        "telemetry": telemetry,
        "attribution": None,
        "alerts": alerts,
        "serving": serving,
        "fleet": fleet,
        "fullgraph": fullgraph,
        "storage_ha": storage_ha,
        "observability": observability,
    }
    if system is not None:
        summary["attribution"] = attribute_summary(
            summary, system_spec_block(system)
        )
    return summary


def observability_block(
    *,
    tracer: "object | None" = None,
    snapshotter: "object | None" = None,
    flight: "object | None" = None,
) -> dict | None:
    """Assemble the optional schema-v11 ``observability`` block.

    Returns ``None`` when none of the mission-control surfaces were
    active, so plain runs keep exporting ``"observability": null``.
    """
    if tracer is None and snapshotter is None and flight is None:
        return None
    dropped = 0
    if tracer is not None:
        metrics = getattr(tracer, "metrics", None)
        if metrics is not None and "telemetry.dropped_events" in metrics:
            dropped = int(
                metrics.counter("telemetry.dropped_events").value
            )
    block: dict = {"dropped_events": dropped}
    if snapshotter is not None:
        block["snapshots"] = snapshotter.export_block()
    if flight is not None:
        block["flight_recorder"] = flight.export_block()
    return block


def report_to_json(
    report: RunReport,
    *,
    indent: int = 2,
    checkpoint_summary: "object | None" = None,
    tracer: "object | None" = None,
    system: "object | None" = None,
    alerts: "dict | None" = None,
    fleet: "dict | None" = None,
    fullgraph: "dict | None" = None,
    storage_ha: "dict | None" = None,
    observability: "dict | None" = None,
) -> str:
    """JSON rendering of :func:`report_to_dict`.

    ``allow_nan=False`` guarantees the output is strict JSON: any
    non-finite float that slipped past :func:`_finite` raises here
    instead of silently producing an unparseable document.
    """
    return json.dumps(
        report_to_dict(
            report,
            checkpoint_summary=checkpoint_summary,
            tracer=tracer,
            system=system,
            alerts=alerts,
            fleet=fleet,
            fullgraph=fullgraph,
            storage_ha=storage_ha,
            observability=observability,
        ),
        indent=indent,
        sort_keys=True,
        allow_nan=False,
    )


#: Column order of the per-iteration CSV export.
_CSV_COLUMNS = (
    "iteration",
    "sampling_s",
    "aggregation_s",
    "transfer_s",
    "training_s",
    "num_seeds",
    "num_input_nodes",
    "num_sampled",
    "num_edges",
    "storage_requests",
    "cpu_buffer_requests",
    "gpu_cache_hits",
    "page_faults",
)


def iterations_to_csv(report: RunReport) -> str:
    """Per-iteration CSV (one row per measured training iteration)."""
    if not report.iterations:
        raise PipelineError("run report holds no iterations")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_COLUMNS)
    for index, it in enumerate(report.iterations):
        writer.writerow(
            [
                index,
                f"{it.times.sampling:.9f}",
                f"{it.times.aggregation:.9f}",
                f"{it.times.transfer:.9f}",
                f"{it.times.training:.9f}",
                it.num_seeds,
                it.num_input_nodes,
                it.num_sampled,
                it.num_edges,
                it.counters.storage_requests,
                it.counters.cpu_buffer_requests,
                it.counters.gpu_cache_hits,
                it.counters.page_faults,
            ]
        )
    return buffer.getvalue()


def reports_to_comparison_csv(reports: list[RunReport]) -> str:
    """One summary row per loader, for side-by-side comparisons."""
    if not reports:
        raise PipelineError("at least one report is required")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    columns = [
        "loader", "iterations", "e2e_seconds", "seconds_per_iteration",
        "gpu_cache_hit_ratio", "redirect_fraction",
        "effective_aggregation_bandwidth", "storage_requests",
    ]
    writer.writerow(columns)

    def fmt(value: float | None, digits: int) -> str:
        # Non-finite summary values export as an empty cell, mirroring the
        # JSON export's null.
        return "" if value is None else f"{value:.{digits}f}"

    for report in reports:
        summary = report_to_dict(report)
        writer.writerow(
            [
                summary["loader"],
                summary["iterations"],
                fmt(summary["e2e_seconds"], 9),
                fmt(summary["seconds_per_iteration"], 9),
                fmt(summary["gpu_cache_hit_ratio"], 6),
                fmt(summary["redirect_fraction"], 6),
                fmt(summary["effective_aggregation_bandwidth"], 3),
                summary["counters"]["storage_requests"],
            ]
        )
    return buffer.getvalue()
