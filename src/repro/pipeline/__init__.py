"""End-to-end GNN training pipeline: runner and reporting."""

from .metrics import IterationMetrics, RunReport, StageTimes
from .runner import TrainingPipeline, TrainingResult
from .export import (
    iterations_to_csv,
    report_to_dict,
    report_to_json,
    reports_to_comparison_csv,
)
from .timeline import render_timeline

__all__ = [
    "render_timeline",
    "IterationMetrics",
    "RunReport",
    "StageTimes",
    "TrainingPipeline",
    "TrainingResult",
    "iterations_to_csv",
    "report_to_dict",
    "report_to_json",
    "reports_to_comparison_csv",
]
