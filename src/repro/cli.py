"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — print the dataset registry (Tables 2-3).
* ``run`` — run one or all dataloaders on a scaled workload and print a
  comparison (optionally JSON/CSV); ``--fault-plan plan.json`` injects
  storage faults and reports the retry/fallback counters;
  ``--checkpoint-dir`` switches to a supervised, crash-safe functional
  training run (with ``--checkpoint-every`` cadence and ``--resume``).
* ``figure`` — regenerate one paper figure/table by name.
* ``train`` — functional GraphSAGE training through the GIDS loader, with
  the same supervised checkpoint/resume flags.
* ``serve`` — overload-protected online inference in modeled time: a
  seeded open-loop arrival process (``--shape poisson|diurnal|bursty``)
  drives per-request sample→fetch→aggregate through admission control,
  priority load shedding, per-device circuit breakers, hedged reads and
  brownout degradation (``--no-protection`` disables all five layers;
  ``-o out.json`` writes the schema-v11 serving export).
* ``trace`` — render a saved Chrome-trace JSON as an ASCII timeline;
  ``--request <id>`` renders one request's causal chain instead
  (``--request list`` enumerates the stamped trace ids).
* ``top`` — render the latest line of a ``--stream`` snapshot JSONL as
  a terminal frame, busiest counters first (``--follow`` to keep
  refreshing).
* ``profile`` — run a bench experiment under the simulator
  self-profiler and report wall-clock seconds per modeled subsystem vs
  modeled time (ROADMAP item 4; feeds ``BENCH_sim_overhead.json``).
* ``ssd-model`` — print the Eq. 2-3 bandwidth model for an SSD.
* ``scrub`` — sweep a workload's feature pages against their digests,
  repairing storm-poisoned pages from the ground-truth store.
* ``faults validate`` — parse a FaultPlan JSON, cross-check its event
  windows against a planned iteration count and summarize it per device
  (exit 0 when valid, 2 when not).
* ``analyze`` — bottleneck attribution for a saved report JSON:
  per-resource achieved-vs-peak utilization, a roofline-style verdict
  naming the binding bottleneck, and the Eq. 2-3 what-if table.
* ``compare`` — regression gate between two report JSONs (or one report
  and a run history's noise band): per-metric deltas and a
  regression/improvement/neutral verdict.  Exit 0 on neutral or
  improvement, 3 on regression, 2 on malformed input.
* ``history record`` / ``history list`` — append report summaries to the
  local JSONL run history (keyed by config fingerprint + git revision)
  and inspect the recorded trends.

Analysis subcommands share exit-code conventions: 0 success, 1 runtime
error, 2 malformed/unsupported input, and 3 (``compare`` only) a
regression verdict.

``run`` and ``train`` accept ``--verify-reads off|sample|full`` and
``--scrub-iops N`` to enable the integrity layer (digest verification of
storage-served pages, bounded re-read repair, quarantine and background
scrubbing); a malformed ``--fault-plan`` file exits with status 2 and a
one-line message.

``run`` and ``train`` accept ``--trace out.json`` (plus ``--trace-detail
stage|request``) to record the run's modeled-time telemetry as a Chrome
trace-event file, loadable in ``chrome://tracing`` / Perfetto or rendered
with the ``trace`` subcommand, and ``--alerts rules.json`` to evaluate
declarative SLO rules against the finished run (fired rules print to
stderr, land in the JSON export's ``alerts`` block and — when tracing —
as instants on the ``alerts`` track).  ``repro --version`` prints the
package version.

The mission-control flags ride every workload command (``run``,
``train``, ``serve``, ``fleet``, ``fullgraph``): ``--trace-cap N``
bounds recorded events (drops are counted in
``telemetry.dropped_events``), ``--stream snap.jsonl`` /
``--prom metrics.prom`` / ``--snapshot-every S`` emit live modeled-time
metric snapshots, and ``--blackbox box.json`` dumps the flight
recorder's recent-event ring on a simulated crash, a fired SLO rule, or
a violated fleet invariant.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

from .bench.tables import render_table
from .config import INTEL_OPTANE, SAMSUNG_980PRO, SSDSpec
from .utils import package_version

_SSDS: dict[str, SSDSpec] = {
    "optane": INTEL_OPTANE,
    "980pro": SAMSUNG_980PRO,
}

#: figure/table name -> experiment function name in repro.bench.experiments.
_EXPERIMENTS = {
    "fig03": "fig03_request_rates",
    "fig05": "fig05_breakdown",
    "fig07": "fig07_sampling",
    "fig08": "fig08_ssd_model",
    "fig09": "fig09_accumulator",
    "fig10": "fig10_cpu_buffer",
    "fig11": "fig11_window_depth",
    "fig12": "fig12_cache_sizes",
    "fig13": "fig13_e2e_980pro",
    "fig14": "fig14_e2e_optane",
    "fig15": "fig15_ladies",
    "table01": "table01_config",
    "table02": "table02_datasets",
    "table03": "table03_igb_microbench",
    "table04": "table04_sizes",
    "ablation-target": "ablation_accumulator_target",
    "ablation-eviction": "ablation_eviction_policy",
}


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="enable crash-safe supervised training: write snapshots to "
        "DIR and restart from the latest valid one after a crash",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="snapshot cadence in completed iterations (default: 10)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from snapshots already in --checkpoint-dir instead "
        "of starting fresh",
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="JSON_PATH",
        default=None,
        help="record modeled-time telemetry and write a Chrome trace-event "
        "file (open in chrome://tracing / Perfetto, or render with "
        "'repro trace')",
    )
    parser.add_argument(
        "--trace-detail",
        choices=["stage", "request"],
        default="stage",
        help="trace granularity: per-iteration stage spans only, or also "
        "per-resource spans and instant events (default: stage)",
    )
    parser.add_argument(
        "--trace-cap",
        type=int,
        default=None,
        metavar="N",
        help="cap on recorded spans + instants (default: 200000); events "
        "past the cap are dropped and counted in the "
        "'telemetry.dropped_events' metric",
    )


def _add_stream_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream",
        metavar="JSONL_PATH",
        default=None,
        help="stream periodic modeled-time metric snapshots to this JSONL "
        "file during the run (view live with 'repro top')",
    )
    parser.add_argument(
        "--prom",
        metavar="PROM_PATH",
        default=None,
        help="keep a Prometheus text-exposition rendering of the metrics "
        "registry up to date in this file during the run",
    )
    parser.add_argument(
        "--snapshot-every",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="modeled seconds between metric snapshots (default: 0.05)",
    )
    parser.add_argument(
        "--blackbox",
        metavar="JSON_PATH",
        default=None,
        help="arm the black-box flight recorder: keep a bounded ring of "
        "recent telemetry and dump it to this file on a simulated crash, "
        "an SLO breach, or an invariant violation",
    )


def _add_integrity_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify-reads",
        choices=["off", "sample", "full"],
        default="off",
        help="verify storage-served pages against their digests: 'off' "
        "(default; corrupt bytes flow through), 'sample' (a seeded "
        "fraction of pages), or 'full' (every page)",
    )
    parser.add_argument(
        "--scrub-iops",
        type=float,
        default=0.0,
        metavar="N",
        help="page reads per modeled second granted to the background "
        "scrubber (default: 0, disabled)",
    )


def _load_fault_plan(path: str):
    """Load ``--fault-plan`` or exit 2 with a one-line message."""
    from .errors import FaultPlanError
    from .faults import FaultPlan

    try:
        return FaultPlan.from_json_file(path)
    except FaultPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _wants_telemetry(args: argparse.Namespace) -> bool:
    """True when any tracing/streaming/flight-recorder flag is set."""
    return any(
        getattr(args, flag, None) is not None
        for flag in ("trace", "stream", "prom", "blackbox")
    )


def _make_tracer(args: argparse.Namespace):
    """Build the tracer behind ``--trace``/``--stream``/``--prom``/
    ``--blackbox``, or ``None`` when no telemetry surface is requested.

    Streaming and the flight recorder ride the tracer's metrics registry
    and event feed, so any of the four flags brings the tracer up; only
    ``--trace`` additionally writes the Chrome trace file at run end.
    """
    if not _wants_telemetry(args):
        return None
    from .telemetry import Tracer

    kwargs = {}
    cap = getattr(args, "trace_cap", None)
    if cap is not None:
        kwargs["max_events"] = cap
    return Tracer(
        enabled=True,
        detail=args.trace_detail,
        strict_tracks=True,
        **kwargs,
    )


def _make_flight(args: argparse.Namespace, tracer):
    """Arm the flight recorder behind ``--blackbox`` (needs a tracer)."""
    if tracer is None or getattr(args, "blackbox", None) is None:
        return None
    from .telemetry import FlightRecorder

    flight = FlightRecorder()
    tracer.attach_flight(flight)
    return flight


def _make_snapshotter(args: argparse.Namespace, tracer, source, flight=None):
    """Build the live-metrics snapshotter behind ``--stream``/``--prom``."""
    stream = getattr(args, "stream", None)
    prom = getattr(args, "prom", None)
    if tracer is None or (stream is None and prom is None):
        return None
    if args.snapshot_every <= 0:
        print("error: --snapshot-every must be positive", file=sys.stderr)
        raise SystemExit(2)
    from .telemetry import MetricsSnapshotter

    return MetricsSnapshotter(
        tracer.metrics,
        every_s=args.snapshot_every,
        jsonl_path=stream,
        prom_path=prom,
        source=source,
        flight=flight,
    )


def _finish_snapshots(snapshotter, tracer) -> None:
    """Take one final snapshot so the stream reflects the finished run."""
    if snapshotter is not None and tracer is not None:
        last = snapshotter.last_taken_s
        snapshotter.take(max(tracer.clock_s, last if last is not None else 0.0))


def _breach_blackbox(args, flight, alerts_block, at_s: float) -> None:
    """Dump the flight recorder when SLO rules fired (``--blackbox``)."""
    if flight is None or alerts_block is None or alerts_block["ok"]:
        return
    names = [f["name"] for f in alerts_block["fired"]]
    flight.dump(
        args.blackbox,
        trigger=f"slo breach: {', '.join(names)}",
        at_s=at_s,
        context={"fired_rules": names},
    )
    print(f"wrote flight-recorder dump to {args.blackbox}", file=sys.stderr)


def _write_trace(tracer, path: str) -> None:
    from .telemetry import write_chrome_trace

    events = write_chrome_trace(tracer, path)
    print(f"wrote {events} trace events to {path}", file=sys.stderr)


def _add_ha_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="R",
        help="keep R copies of every feature page across the SSD array "
        "(default: 1, no redundancy); degraded-mode reads then redirect "
        "to a surviving replica instead of the CPU mirror",
    )
    parser.add_argument(
        "--parity",
        action="store_true",
        help="protect the array with one parity page per stripe "
        "(RAID-5-style, needs --num-ssds >= 2); lost pages reconstruct "
        "inline from the surviving group members",
    )
    parser.add_argument(
        "--rebuild-iops",
        type=float,
        default=0.0,
        metavar="N",
        help="page operations per modeled second granted to the online "
        "rebuilder that re-protects pages after a device loss "
        "(default: 0, disabled)",
    )


def _ha_kwargs(args: argparse.Namespace) -> dict:
    """Validated HA constructor kwargs from the ``_add_ha_args`` flags."""
    if args.replication < 1:
        print("error: --replication must be >= 1", file=sys.stderr)
        raise SystemExit(2)
    if args.replication > 1 and args.parity:
        print(
            "error: choose --replication or --parity, not both",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.rebuild_iops < 0:
        print("error: --rebuild-iops must be non-negative", file=sys.stderr)
        raise SystemExit(2)
    return {
        "replication": args.replication,
        "parity": args.parity,
        "rebuild_iops": args.rebuild_iops,
    }


def _add_alerts_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--alerts",
        metavar="RULES_JSON",
        default=None,
        help="evaluate declarative SLO alert rules against the finished "
        "run (fired rules print to stderr and land in the JSON export's "
        "'alerts' block)",
    )


def _load_alert_rules(path: str):
    """Load ``--alerts`` rules or exit 2 with a one-line message."""
    from .errors import ObservatoryError
    from .observatory import load_alert_rules

    try:
        return load_alert_rules(path)
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _print_alerts(loader_name: str, block: dict) -> None:
    """One stderr line per fired rule, plus an all-clear / missing note."""
    for fired in block["fired"]:
        where = (
            f" in {fired['count']} iteration(s)" if "count" in fired else ""
        )
        print(
            f"alert [{fired['severity']}] {loader_name}: {fired['name']} "
            f"— {fired['metric']} {fired['op']} {fired['threshold']:g} "
            f"(value {fired['value']:g}){where}",
            file=sys.stderr,
        )
    for metric in block["missing"]:
        print(
            f"note: alert metric {metric!r} not present in this run",
            file=sys.stderr,
        )
    if block["ok"]:
        print(
            f"alerts: {loader_name} passes all {block['rules']} rule(s)",
            file=sys.stderr,
        )


def _load_report(path: str, loader: str | None = None) -> dict:
    """Load and validate a report export, or exit 2 with a message.

    ``repro run --format json`` writes a JSON *array* of reports (one per
    loader); ``loader`` selects one entry from such a file.  A single
    report object passes through unchanged.
    """
    import json

    from .errors import ObservatoryError
    from .observatory import validate_summary

    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read report {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if isinstance(payload, list):
        if loader is not None:
            payload = [
                entry
                for entry in payload
                if isinstance(entry, dict) and entry.get("loader") == loader
            ]
            if len(payload) != 1:
                print(
                    f"error: {path!r} holds no report for loader "
                    f"{loader!r}",
                    file=sys.stderr,
                )
                raise SystemExit(2)
            payload = payload[0]
        elif len(payload) == 1:
            payload = payload[0]
        else:
            names = [
                entry.get("loader")
                for entry in payload
                if isinstance(entry, dict)
            ]
            print(
                f"error: {path!r} holds {len(payload)} reports "
                f"({names}); pick one with --loader",
                file=sys.stderr,
            )
            raise SystemExit(2)
    try:
        validate_summary(payload)
    except ObservatoryError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    return payload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GIDS reproduction (PVLDB 17(6), 2024)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset registry")

    run = sub.add_parser("run", help="compare dataloaders on a workload")
    run.add_argument("--dataset", default="IGB-Full")
    run.add_argument("--scale", type=float, default=None,
                     help="dataset shrink factor (default: per-dataset)")
    run.add_argument("--ssd", choices=sorted(_SSDS), default="optane")
    run.add_argument("--num-ssds", type=int, default=1)
    run.add_argument(
        "--loader",
        choices=["gids", "bam", "mmap", "ginex", "all"],
        default="all",
    )
    run.add_argument("--iterations", type=int, default=40)
    run.add_argument("--format", choices=["table", "json", "csv"],
                     default="table")
    run.add_argument(
        "--fault-plan",
        metavar="JSON_PATH",
        default=None,
        help="inject storage faults from a FaultPlan JSON file "
        "(read failures, tail spikes, device dropout, PCIe degradation, "
        "simulated process crashes)",
    )
    _add_checkpoint_args(run)
    _add_trace_args(run)
    _add_stream_args(run)
    _add_integrity_args(run)
    _add_ha_args(run)
    _add_alerts_arg(run)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=sorted(_EXPERIMENTS))

    train = sub.add_parser("train", help="functional GraphSAGE training")
    train.add_argument("--dataset", default="IGB-tiny")
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument("--iterations", type=int, default=60)
    train.add_argument("--classes", type=int, default=8)
    train.add_argument("--hidden-dim", type=int, default=64)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument(
        "--fault-plan",
        metavar="JSON_PATH",
        default=None,
        help="inject storage faults / crash events from a FaultPlan JSON "
        "file",
    )
    _add_checkpoint_args(train)
    _add_trace_args(train)
    _add_stream_args(train)
    _add_integrity_args(train)
    _add_ha_args(train)
    _add_alerts_arg(train)

    fleet = sub.add_parser(
        "fleet",
        help="elastic multi-GPU sharded training in modeled time",
    )
    fleet.add_argument("--dataset", default="IGB-tiny")
    fleet.add_argument("--scale", type=float, default=0.05,
                       help="dataset shrink factor (default: 0.05)")
    fleet.add_argument("--ssd", choices=sorted(_SSDS), default="optane")
    fleet.add_argument("--num-ssds", type=int, default=1)
    fleet.add_argument("--gpus", type=int, default=4,
                       help="data-parallel width (default: 4)")
    fleet.add_argument("--batch-size", type=int, default=32)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--shard-mode", choices=["partition", "hash"], default="partition",
        help="seed sharding: graph-partition-aware (default) or "
        "rendezvous hash",
    )
    fleet.add_argument(
        "--no-peer-cache", action="store_true",
        help="disable the peer-cache tier (every local miss pays the "
        "shared SSD array: the contention baseline)",
    )
    fleet.add_argument(
        "--fault-plan", metavar="JSON_PATH", default=None,
        help="FaultPlan JSON; its worker events (gpu:<k> "
        "dropout/recovery/straggle) drive fleet elasticity, its device "
        "events degrade the shared SSD array",
    )
    fleet.add_argument(
        "--chaos", action="store_true",
        help="sweep the chaos scenarios (dropout, straggler, storm...) "
        "and assert the fleet invariants instead of one epoch",
    )
    _add_trace_args(fleet)
    _add_stream_args(fleet)
    _add_ha_args(fleet)
    fleet.add_argument("--format", choices=["table", "json"],
                       default="table")
    fleet.add_argument(
        "-o", "--output", metavar="JSON_PATH", default=None,
        help="also write the schema-v11 run export (with the fleet block) "
        "to this file",
    )

    fullgraph = sub.add_parser(
        "fullgraph",
        help="full-graph training as partition sweeps with activation "
        "offload",
    )
    fullgraph.add_argument("--dataset", default="IGB-tiny")
    fullgraph.add_argument("--scale", type=float, default=0.01,
                           help="dataset shrink factor (default: 0.01)")
    fullgraph.add_argument("--ssd", choices=sorted(_SSDS), default="980pro")
    fullgraph.add_argument("--num-ssds", type=int, default=1)
    fullgraph.add_argument("--epochs", type=int, default=5,
                           help="sweep epochs to run (default: 5)")
    fullgraph.add_argument(
        "--target-acc", type=float, default=None, metavar="FRAC",
        help="stop early once eval accuracy reaches FRAC (epochs becomes "
        "the cap)",
    )
    fullgraph.add_argument("--classes", type=int, default=8)
    fullgraph.add_argument("--hidden-dim", type=int, default=32)
    fullgraph.add_argument("--layers", type=int, default=2)
    fullgraph.add_argument(
        "--aggregator", choices=["mean", "gcn", "pool"], default="mean",
    )
    fullgraph.add_argument(
        "--partitions", type=int, default=None, metavar="P",
        help="force the partition count instead of letting the memory "
        "planner choose",
    )
    fullgraph.add_argument(
        "--hbm-mb", type=float, default=None, metavar="MB",
        help="modeled HBM budget in MiB (default: the GPU spec's full "
        "memory; small values force the activation-offload regime)",
    )
    fullgraph.add_argument(
        "--no-overlap", action="store_true",
        help="serialize spill/reload I/O with sweep compute instead of "
        "overlapping them",
    )
    fullgraph.add_argument(
        "--steps", type=int, default=None, metavar="N",
        help="run at most N partition steps this invocation (kill/resume "
        "drills; pair with --checkpoint-dir)",
    )
    fullgraph.add_argument(
        "--fault-plan", metavar="JSON_PATH", default=None,
        help="inject storage faults from a FaultPlan JSON file; spill "
        "pages ride the same failure/retry/corruption process as feature "
        "pages",
    )
    _add_checkpoint_args(fullgraph)
    _add_trace_args(fullgraph)
    _add_stream_args(fullgraph)
    fullgraph.add_argument(
        "--verify-reads", choices=["off", "sample", "full"], default="off",
        help="verify reloaded spill pages against their digests: 'off' "
        "(default), 'sample', or 'full'",
    )
    _add_ha_args(fullgraph)
    fullgraph.add_argument("--format", choices=["table", "json"],
                           default="table")
    fullgraph.add_argument(
        "-o", "--output", metavar="JSON_PATH", default=None,
        help="also write the schema-v11 run export (with the fullgraph "
        "block) to this file",
    )

    serve = sub.add_parser(
        "serve",
        help="overload-protected online inference in modeled time",
    )
    serve.add_argument("--dataset", default="IGB-tiny")
    serve.add_argument("--scale", type=float, default=0.1,
                       help="dataset shrink factor (default: 0.1)")
    serve.add_argument("--ssd", choices=sorted(_SSDS), default="optane")
    serve.add_argument("--num-ssds", type=int, default=1)
    serve.add_argument("--requests", type=int, default=2000,
                       help="arrivals to generate (default: 2000)")
    serve.add_argument(
        "--shape", choices=["poisson", "diurnal", "bursty"],
        default="poisson",
        help="arrival shape (default: poisson steady state)",
    )
    serve.add_argument("--rate", type=float, default=2000.0,
                       help="baseline offered rate in req/s (default: 2000)")
    serve.add_argument("--seed", type=int, default=0,
                       help="arrival-trace seed (default: 0)")
    serve.add_argument(
        "--priority-mix", default="0.2,0.6,0.2", metavar="HI,NORM,LOW",
        help="high/normal/low traffic fractions (default: 0.2,0.6,0.2)",
    )
    serve.add_argument("--deadline-ms", type=float, default=50.0,
                       help="per-request deadline (default: 50 ms)")
    serve.add_argument(
        "--slo-p99-ms", type=float, default=50.0,
        help="p99 objective driving brownout degradation (default: 50 ms)",
    )
    serve.add_argument(
        "--no-protection", action="store_true",
        help="disable every protection layer (shows the unprotected "
        "latency collapse past saturation)",
    )
    serve.add_argument(
        "--fault-plan", metavar="JSON_PATH", default=None,
        help="inject storage faults from a FaultPlan JSON file (device "
        "dropouts exercise the per-device circuit breakers)",
    )
    _add_ha_args(serve)
    serve.add_argument("--format", choices=["table", "json"],
                       default="table")
    serve.add_argument(
        "-o", "--output", metavar="JSON_PATH", default=None,
        help="also write the schema-v11 serving export to this file",
    )
    _add_trace_args(serve)
    _add_stream_args(serve)
    _add_alerts_arg(serve)

    scrub = sub.add_parser(
        "scrub",
        help="sweep a workload's feature pages against their digests",
    )
    scrub.add_argument("--dataset", default="IGB-tiny")
    scrub.add_argument("--scale", type=float, default=0.1,
                       help="dataset shrink factor (default: 0.1)")
    scrub.add_argument("--num-ssds", type=int, default=1)
    scrub.add_argument(
        "--scrub-iops", type=float, default=1e6, metavar="N",
        help="page reads per modeled second for the sweep (default: 1e6)",
    )
    scrub.add_argument(
        "--fault-plan", metavar="JSON_PATH", default=None,
        help="FaultPlan JSON whose corruption storms poison the media; "
        "omitted means a clean sweep",
    )
    scrub.add_argument(
        "--at-time", type=float, default=None, metavar="SECONDS",
        help="simulated time of the sweep (default: just after the last "
        "corruption storm in the plan)",
    )

    faults = sub.add_parser(
        "faults", help="fault-plan tooling (validate)"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    validate = faults_sub.add_parser(
        "validate",
        help="parse a FaultPlan JSON and cross-check its event windows",
    )
    validate.add_argument("plan", help="path to the FaultPlan JSON file")
    validate.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="planned run length; crash events beyond it are flagged",
    )
    validate.add_argument(
        "--fleet-size", type=int, default=None, metavar="N",
        help="planned fleet width; worker events targeting gpu:<k> with "
        "k >= N are flagged",
    )
    validate.add_argument(
        "--num-ssds", type=int, default=None, metavar="N",
        help="planned SSD-array width; device events targeting device "
        "k >= N are flagged, as is a plan that drops every device with "
        "no recovery (a full-array wipe nothing can serve through)",
    )

    storage = sub.add_parser(
        "storage",
        help="storage-HA drill: device health and rebuild report",
    )
    storage.add_argument("--dataset", default="IGB-tiny")
    storage.add_argument("--scale", type=float, default=0.05,
                         help="dataset shrink factor (default: 0.05)")
    storage.add_argument("--ssd", choices=sorted(_SSDS), default="optane")
    storage.add_argument("--num-ssds", type=int, default=4)
    storage.add_argument(
        "--fault-plan", metavar="JSON_PATH", default=None,
        help="FaultPlan JSON whose device events (dropout / recovery / "
        "fail_slow) drive the health state machine",
    )
    storage.add_argument(
        "--duration", type=float, default=1.0, metavar="SECONDS",
        help="simulated observation window (default: 1.0 s)",
    )
    storage.add_argument(
        "--steps", type=int, default=50, metavar="N",
        help="health observations across the window (default: 50)",
    )
    _add_ha_args(storage)
    storage.add_argument("--format", choices=["table", "json"],
                         default="table")

    trace = sub.add_parser(
        "trace", help="render a saved Chrome trace as an ASCII timeline"
    )
    trace.add_argument("path", help="trace JSON written by --trace")
    trace.add_argument(
        "--width",
        type=int,
        default=72,
        metavar="COLS",
        help="timeline width in characters (default: 72)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable summary (per-track seconds, event "
        "counts, metrics) instead of the ASCII timeline",
    )
    trace.add_argument(
        "--request",
        metavar="TRACE_ID",
        default=None,
        help="render one causal chain (e.g. req-000042) from a trace "
        "recorded with --trace-detail request; pass 'list' to enumerate "
        "the trace ids present",
    )

    top = sub.add_parser(
        "top",
        help="terminal view of a live metric-snapshot stream (--stream)",
    )
    top.add_argument("path", help="snapshot JSONL written by --stream")
    top.add_argument(
        "--follow",
        action="store_true",
        help="keep polling the file for new snapshots until interrupted",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="wall-clock poll interval with --follow (default: 1.0)",
    )
    top.add_argument(
        "--metrics",
        type=int,
        default=12,
        metavar="N",
        help="show the N busiest counters/gauges (default: 12)",
    )

    profile = sub.add_parser(
        "profile",
        help="self-profile the simulator: wall-clock overhead vs modeled "
        "time per subsystem",
    )
    profile.add_argument(
        "--experiment",
        choices=sorted(_EXPERIMENTS),
        default="fig13",
        help="bench experiment to profile (default: fig13, the e2e "
        "980 Pro comparison)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="print the profile document as JSON instead of the table",
    )
    profile.add_argument(
        "-o", "--output", metavar="JSON_PATH", default=None,
        help="also write the profile document to this file (e.g. "
        "BENCH_sim_overhead.json)",
    )

    ssd = sub.add_parser("ssd-model", help="Eq. 2-3 bandwidth model")
    ssd.add_argument("--ssd", choices=sorted(_SSDS), default="optane")
    ssd.add_argument("--num-ssds", type=int, default=1)
    ssd.add_argument("--target", type=float, default=0.95)
    ssd.add_argument(
        "--json",
        action="store_true",
        help="print the model points as JSON instead of a table",
    )

    analyze = sub.add_parser(
        "analyze",
        help="bottleneck attribution for a saved report JSON",
    )
    analyze.add_argument("report", help="report JSON from run --format json")
    analyze.add_argument(
        "--loader",
        default=None,
        help="pick one report out of a multi-loader export",
    )
    analyze.add_argument(
        "--ssd",
        choices=sorted(_SSDS),
        default="optane",
        help="fallback hardware specs for reports without an embedded "
        "attribution block (default: optane)",
    )
    analyze.add_argument("--num-ssds", type=int, default=1)
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the attribution block as JSON",
    )

    compare = sub.add_parser(
        "compare",
        help="regression gate: compare reports or a report vs the history",
    )
    compare.add_argument(
        "reports",
        nargs="+",
        metavar="REPORT",
        help="BASELINE CANDIDATE report JSONs, or just CANDIDATE with "
        "--history",
    )
    compare.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="compare against the noise band of same-fingerprint records "
        "in this run-history directory instead of a baseline file",
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="relative tolerance before a delta counts (default: 0.05)",
    )
    compare.add_argument(
        "--sigma",
        type=float,
        default=3.0,
        metavar="N",
        help="history noise-band width in standard deviations "
        "(default: 3.0)",
    )
    compare.add_argument(
        "--loader",
        default=None,
        help="pick one report out of multi-loader exports",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="print the comparison result as JSON",
    )

    history = sub.add_parser(
        "history", help="record and inspect the local run history"
    )
    history_sub = history.add_subparsers(
        dest="history_command", required=True
    )
    record = history_sub.add_parser(
        "record", help="append a report summary to the run history"
    )
    record.add_argument("report", help="report JSON from run --format json")
    record.add_argument(
        "--dir",
        default=".repro-history",
        metavar="DIR",
        help="history directory (default: .repro-history)",
    )
    record.add_argument(
        "--label",
        default=None,
        help="workload label folded into the config fingerprint",
    )
    record.add_argument(
        "--loader",
        default=None,
        help="pick one report out of a multi-loader export",
    )
    hist_list = history_sub.add_parser(
        "list", help="list recorded fingerprints or one trend"
    )
    hist_list.add_argument(
        "--dir",
        default=".repro-history",
        metavar="DIR",
        help="history directory (default: .repro-history)",
    )
    hist_list.add_argument(
        "--fingerprint",
        default=None,
        help="show the individual records of one config fingerprint",
    )
    hist_list.add_argument(
        "--json",
        action="store_true",
        help="print records as JSON",
    )
    return parser


def _cmd_datasets() -> int:
    from .graph.datasets import DATASETS

    rows = []
    for spec in DATASETS.values():
        rows.append(
            [
                spec.name,
                "hetero" if spec.heterogeneous else "homo",
                f"{spec.num_nodes:,}",
                f"{spec.num_edges:,}",
                spec.feature_dim,
                f"{spec.total_bytes / 1e9:.1f} GB",
            ]
        )
    print(
        render_table(
            ["dataset", "type", "nodes", "edges", "dim", "computed size"],
            rows,
            title="Dataset registry (Tables 2-3 of the paper)",
        )
    )
    return 0


def _make_supervisor(args: argparse.Namespace, pipeline_factory):
    """Build the run supervisor behind the ``--checkpoint-*`` flags.

    Without ``--resume``, snapshots left over from a previous invocation
    are cleared so the run starts from iteration 0 (in-run crash recovery
    still resumes from the snapshots this run writes).
    """
    from .checkpoint import CheckpointStore, RunSupervisor, SupervisorConfig

    config = SupervisorConfig(checkpoint_every=args.checkpoint_every)
    store = CheckpointStore(
        args.checkpoint_dir, keep=config.keep_snapshots
    )
    if not args.resume:
        stale = store.iterations()
        if stale:
            print(
                f"note: clearing {len(stale)} old snapshot(s) from "
                f"{args.checkpoint_dir} (pass --resume to continue them)",
                file=sys.stderr,
            )
            import os

            for iteration in stale:
                os.unlink(store.path_for(iteration))
    return RunSupervisor(
        pipeline_factory,
        store,
        config=config,
        blackbox_path=getattr(args, "blackbox", None),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from .baselines.ginex import GinexLoader
    from .baselines.mmap_loader import DGLMmapLoader
    from .bench.workloads import get_workload
    from .core.bam import BaMDataLoader
    from .core.gids import GIDSDataLoader
    from .pipeline.export import report_to_json, reports_to_comparison_csv

    workload = get_workload(args.dataset, scale=args.scale)
    system = workload.system(_SSDS[args.ssd], num_ssds=args.num_ssds)
    config = workload.loader_config()
    common = dict(
        batch_size=workload.batch_size, fanouts=workload.fanouts, seed=1
    )
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
    ha = _ha_kwargs(args)
    ha_on = (
        ha["replication"] > 1 or ha["parity"] or ha["rebuild_iops"] > 0
    )
    if ha_on and args.loader not in ("gids", "bam", "all"):
        print(
            "error: --replication/--parity/--rebuild-iops require the "
            "gids or bam loader",
            file=sys.stderr,
        )
        return 2
    alert_rules = None
    if args.alerts is not None:
        alert_rules = _load_alert_rules(args.alerts)

    if _wants_telemetry(args) and args.loader not in ("gids", "bam"):
        print(
            "error: --trace/--stream/--prom/--blackbox require --loader "
            "gids or bam (the baseline loaders are not instrumented)",
            file=sys.stderr,
        )
        return 2
    tracer = _make_tracer(args)
    flight = _make_flight(args, tracer)
    snapshotter = _make_snapshotter(args, tracer, "run", flight=flight)

    if args.checkpoint_dir is not None:
        return _cmd_run_supervised(
            args, workload, system, config, common, fault_plan, tracer,
            alert_rules, flight=flight, snapshotter=snapshotter,
        )

    heterogeneous = workload.dataset.hetero is not None
    selected = (
        ["gids", "bam", "ginex", "mmap"]
        if args.loader == "all"
        else [args.loader]
    )
    integrity = dict(
        verify_reads=args.verify_reads, scrub_iops=args.scrub_iops
    )
    reports = []
    ha_blocks: list = []
    for kind in selected:
        if kind == "gids":
            loader = GIDSDataLoader(
                workload.dataset, system, config,
                hot_nodes=workload.hot_nodes, fault_plan=fault_plan,
                tracer=tracer, **integrity, **ha, **common,
            )
            loader.snapshotter = snapshotter
            reports.append(loader.run(args.iterations, warmup=10))
            ha_blocks.append(
                loader.storage_ha.summary_block()
                if loader.storage_ha is not None
                else None
            )
        elif kind == "bam":
            loader = BaMDataLoader(
                workload.dataset, system, config, fault_plan=fault_plan,
                tracer=tracer, **integrity, **ha, **common,
            )
            loader.snapshotter = snapshotter
            reports.append(loader.run(args.iterations, warmup=10))
            ha_blocks.append(
                loader.storage_ha.summary_block()
                if loader.storage_ha is not None
                else None
            )
        elif kind == "ginex":
            if heterogeneous:
                print(
                    "note: Ginex supports only homogeneous graphs; skipped",
                    file=sys.stderr,
                )
                continue
            loader = GinexLoader(
                workload.dataset, system, fault_plan=fault_plan,
                verify_reads=args.verify_reads, **common,
            )
            reports.append(loader.run(args.iterations, warmup=150))
            ha_blocks.append(None)
        else:
            if fault_plan is not None:
                print(
                    "note: the mmap loader has no fault-injection path; "
                    "running it healthy",
                    file=sys.stderr,
                )
            loader = DGLMmapLoader(workload.dataset, system, **common)
            reports.append(loader.run(args.iterations, warmup=150))
            ha_blocks.append(None)

    if not reports:
        print("no loader could run on this workload", file=sys.stderr)
        return 1
    alerts_blocks: list = [None] * len(reports)
    if alert_rules is not None:
        from .observatory import SLOMonitor

        # Evaluate before writing the trace so fired instants land in it.
        monitor = SLOMonitor(alert_rules, tracer=tracer)
        alerts_blocks = [monitor.evaluate(r) for r in reports]
        for report, block in zip(reports, alerts_blocks):
            _print_alerts(report.loader_name, block)
    _finish_snapshots(snapshotter, tracer)
    if tracer is not None and alerts_blocks and flight is not None:
        _breach_blackbox(args, flight, alerts_blocks[0], tracer.clock_s)
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)
    if args.format == "json":
        from .pipeline.export import observability_block

        # --trace implies a single traced loader, so the tracer (when
        # present) belongs to the one report in the list.
        obs = observability_block(
            tracer=tracer, snapshotter=snapshotter, flight=flight
        )
        print(
            "["
            + ",\n".join(
                report_to_json(
                    r, tracer=tracer, system=system, alerts=block,
                    storage_ha=ha_block, observability=obs,
                )
                for r, block, ha_block in zip(
                    reports, alerts_blocks, ha_blocks
                )
            )
            + "]"
        )
    elif args.format == "csv":
        print(reports_to_comparison_csv(reports), end="")
    else:
        slowest = max(r.e2e_time for r in reports)
        rows = [
            [
                r.loader_name,
                f"{r.e2e_time * 1e3:.2f}",
                f"{r.time_per_iteration() * 1e3:.3f}",
                f"{slowest / r.e2e_time:.1f}x",
            ]
            for r in reports
        ]
        print(
            render_table(
                ["loader", f"E2E ms ({args.iterations} iters)", "ms/iter",
                 "speedup vs slowest"],
                rows,
                title=f"{args.dataset} on {_SSDS[args.ssd].name} "
                f"x{args.num_ssds}",
            )
        )
    return 0


def _cmd_run_supervised(
    args, workload, system, config, common, fault_plan, tracer=None,
    alert_rules=None, flight=None, snapshotter=None,
) -> int:
    """``run --checkpoint-dir``: crash-safe supervised functional training.

    Snapshot/resume requires the stateful GIDS-family loaders; the run
    report covers every trained iteration (no warmup split) and the JSON
    export carries the ``checkpoint_summary`` block.  The tracer (if any)
    is created once out here and re-attached on every restart attempt:
    restoring a snapshot restores the trace recorded up to it, so a
    killed-and-resumed run still emits one seamless trace.
    """
    from .core.bam import BaMDataLoader
    from .core.gids import GIDSDataLoader
    from .pipeline.export import report_to_json
    from .pipeline.runner import TrainingPipeline
    from .training.graphsage import GraphSAGE

    loader_cls = {"gids": GIDSDataLoader, "bam": BaMDataLoader}.get(
        args.loader
    )
    if loader_cls is None:
        print(
            "error: --checkpoint-dir requires --loader gids or bam "
            "(the baseline loaders cannot be checkpointed mid-run)",
            file=sys.stderr,
        )
        return 2

    def pipeline_factory() -> TrainingPipeline:
        kwargs = dict(common)
        if loader_cls is GIDSDataLoader:
            kwargs["hot_nodes"] = workload.hot_nodes
        loader = loader_cls(
            workload.dataset, system, config,
            fault_plan=fault_plan, tracer=tracer,
            verify_reads=args.verify_reads, scrub_iops=args.scrub_iops,
            **_ha_kwargs(args), **kwargs,
        )
        loader.snapshotter = snapshotter
        model = GraphSAGE(
            workload.dataset.feature_dim, 32, 8, num_layers=len(
                workload.fanouts
            ), seed=0,
        )
        return TrainingPipeline(loader, model, num_classes=8)

    supervisor = _make_supervisor(args, pipeline_factory)
    outcome = supervisor.run(args.iterations)
    summary = outcome.summary
    alerts_block = None
    if alert_rules is not None:
        from .observatory import SLOMonitor

        monitor = SLOMonitor(alert_rules, tracer=tracer)
        alerts_block = monitor.evaluate(outcome.report)
        _print_alerts(outcome.report.loader_name, alerts_block)
    _finish_snapshots(snapshotter, tracer)
    if tracer is not None:
        _breach_blackbox(args, flight, alerts_block, tracer.clock_s)
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)

    if args.format == "json":
        from .pipeline.export import observability_block

        print(
            report_to_json(
                outcome.report, checkpoint_summary=summary, tracer=tracer,
                system=system, alerts=alerts_block,
                observability=observability_block(
                    tracer=tracer, snapshotter=snapshotter, flight=flight
                ),
            )
        )
    else:
        report = outcome.report
        rows = [
            ["completed iterations", outcome.result.completed_iterations],
            ["final loss", f"{outcome.result.losses[-1]:.4f}"],
            ["E2E modeled ms", f"{report.e2e_time * 1e3:.2f}"],
            ["snapshots written", summary.snapshots_written],
            ["snapshot bytes", summary.snapshot_bytes],
            ["restores", summary.restores],
            ["corrupted skipped", summary.corrupted_skipped],
            ["crashes survived", summary.crashes],
            ["restarts", summary.restarts],
        ]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"supervised {report.loader_name} run on "
                f"{args.dataset}",
            )
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .bench import experiments

    fn = getattr(experiments, _EXPERIMENTS[args.name])
    print(fn().render())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .config import LoaderConfig, SystemConfig
    from .core.gids import GIDSDataLoader
    from .graph.datasets import load_scaled
    from .pipeline.runner import TrainingPipeline
    from .training.graphsage import GraphSAGE

    dataset = load_scaled(args.dataset, args.scale, seed=0)
    system = SystemConfig(
        cpu_memory_limit_bytes=dataset.total_bytes * 0.5
    )
    config = LoaderConfig(
        gpu_cache_bytes=dataset.feature_data_bytes * 0.02,
        cpu_buffer_fraction=0.10,
        window_depth=4,
    )
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
    alert_rules = None
    if args.alerts is not None:
        alert_rules = _load_alert_rules(args.alerts)
    tracer = _make_tracer(args)
    flight = _make_flight(args, tracer)
    snapshotter = _make_snapshotter(args, tracer, "train", flight=flight)

    def pipeline_factory() -> TrainingPipeline:
        loader = GIDSDataLoader(
            dataset, system, config, batch_size=args.batch_size,
            fanouts=(5, 5), seed=1, fault_plan=fault_plan, tracer=tracer,
            verify_reads=args.verify_reads, scrub_iops=args.scrub_iops,
            **_ha_kwargs(args),
        )
        loader.snapshotter = snapshotter
        model = GraphSAGE(
            dataset.feature_dim, args.hidden_dim, args.classes,
            num_layers=2, lr=0.05, seed=0,
        )
        return TrainingPipeline(loader, model, num_classes=args.classes)

    if args.checkpoint_dir is not None:
        supervisor = _make_supervisor(args, pipeline_factory)
        outcome = supervisor.run(args.iterations)
        result = outcome.result
        summary = outcome.summary
        report = outcome.report
    else:
        pipeline = pipeline_factory()
        result = pipeline.train(args.iterations)
        summary = None
        report = pipeline.report
    if alert_rules is not None:
        from .observatory import SLOMonitor

        monitor = SLOMonitor(alert_rules, tracer=tracer)
        alerts_block = monitor.evaluate(report)
        _print_alerts(report.loader_name, alerts_block)
        if tracer is not None:
            _breach_blackbox(args, flight, alerts_block, tracer.clock_s)
    _finish_snapshots(snapshotter, tracer)
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)
    first = sum(result.losses[:5]) / 5
    last = sum(result.losses[-5:]) / 5
    print(f"trained {result.num_steps} steps: loss {first:.4f} -> {last:.4f}")
    print(f"final training accuracy: {result.final_train_accuracy:.1%}")
    integ = report.integrity_summary()
    if any(v for k, v in integ.items() if k != "consistent"):
        print(
            f"integrity: {integ['verified_pages']} verified, "
            f"{integ['corrupt_detected']} detected, "
            f"{integ['corrupt_repaired']} repaired, "
            f"{integ['corrupt_quarantined']} quarantined, "
            f"{integ['unverified_pages']} unverified "
            f"(consistent={integ['consistent']})"
        )
    if summary is not None:
        print(
            f"checkpointing: {summary.snapshots_written} snapshot(s), "
            f"{summary.restores} restore(s), {summary.crashes} crash(es) "
            f"survived, {summary.corrupted_skipped} corrupted skipped"
        )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet``: an elastic multi-GPU epoch (or the chaos sweep)."""
    import json

    from .bench.workloads import get_workload
    from .core.fleet import (
        ElasticFleetTrainer,
        FleetConfig,
        check_invariants,
        run_chaos_suite,
    )
    from .errors import ReproError
    from .pipeline.export import report_to_dict

    workload = get_workload(args.dataset, scale=args.scale)
    system = workload.system(_SSDS[args.ssd], num_ssds=args.num_ssds)
    dataset = workload.dataset

    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
    tracer = _make_tracer(args)
    flight = _make_flight(args, tracer)
    snapshotter = _make_snapshotter(args, tracer, "fleet", flight=flight)

    if args.chaos:
        if fault_plan is not None:
            print(
                "note: --chaos sweeps its own fault plans; --fault-plan "
                "is ignored",
                file=sys.stderr,
            )
        try:
            suite = run_chaos_suite(
                dataset, system, num_gpus=args.gpus, seed=args.seed
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(suite, fh, indent=2, sort_keys=True)
        if args.format == "json":
            print(json.dumps(suite, indent=2, sort_keys=True))
        else:
            rows = [
                [
                    name,
                    "pass" if r["passed"] else "FAIL",
                    r["global_steps"],
                    r["rebalance_events"],
                    r["steal_events"],
                    f"{r['peer_cache_hit_ratio']:.1%}",
                    "; ".join(r["violations"]) or "-",
                ]
                for name, r in suite["scenarios"].items()
            ]
            print(
                render_table(
                    ["scenario", "verdict", "steps", "rebalances",
                     "steals", "peer hits", "violations"],
                    rows,
                    title=f"chaos sweep: {args.gpus}-GPU fleet on "
                    f"{args.dataset}",
                )
            )
        if not suite["passed"]:
            print("error: chaos invariants violated", file=sys.stderr)
            return 1
        return 0

    try:
        fleet_config = FleetConfig(
            num_gpus=args.gpus,
            batch_size=args.batch_size,
            shard_mode=args.shard_mode,
            peer_cache=not args.no_peer_cache,
        )
        trainer = ElasticFleetTrainer(
            dataset,
            system,
            fleet_config,
            seed=args.seed,
            fault_plan=fault_plan,
            fanouts=workload.fanouts,
            tracer=tracer,
            **_ha_kwargs(args),
        )
        trainer.snapshotter = snapshotter
        result = trainer.run_epoch()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations = check_invariants(dataset, result)
    _finish_snapshots(snapshotter, tracer)
    if violations and flight is not None:
        flight.dump(
            args.blackbox,
            trigger=f"invariant violation: {'; '.join(violations)}",
            at_s=trainer.clock_s,
            context={"violations": list(violations)},
        )
        print(
            f"wrote flight-recorder dump to {args.blackbox}",
            file=sys.stderr,
        )
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)
    from .pipeline.export import observability_block

    summary = report_to_dict(
        result.report, system=system, fleet=result.fleet_block(),
        tracer=tracer,
        storage_ha=(
            trainer.storage_ha.summary_block()
            if trainer.storage_ha is not None
            else None
        ),
        observability=observability_block(
            tracer=tracer, snapshotter=snapshotter, flight=flight
        ),
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True, allow_nan=False)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True, allow_nan=False))
    else:
        rows = [
            [
                f"gpu:{w['worker']}",
                "up" if w["active"] else "down",
                w["iterations"],
                w["seeds_trained"],
                w["cache_hit_pages"],
                w["peer_hit_pages"],
                w["ssd_pages"],
                w["stolen_in"] - w["stolen_out"],
            ]
            for w in result.worker_stats
        ]
        print(
            render_table(
                ["worker", "state", "steps", "seeds", "local hits",
                 "peer hits", "ssd pages", "net stolen"],
                rows,
                title=f"{args.gpus}-GPU fleet on {args.dataset} "
                f"({_SSDS[args.ssd].name} x{args.num_ssds})",
            )
        )
        print(
            f"epoch: {len(result.schedule)} global steps, "
            f"{result.epoch_time_s * 1e3:.2f} modeled ms, final loss "
            f"{result.final_loss:.4f}, peer-cache hit ratio "
            f"{result.peer_cache_hit_ratio:.1%}"
        )
        if result.rebalance_events:
            print(f"rebalances: {len(result.rebalance_events)}")
        if result.steal_events:
            print(f"steals: {len(result.steal_events)}")
    for violation in violations:
        print(f"error: invariant violated: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_fullgraph(args: argparse.Namespace) -> int:
    """``fullgraph``: sweep epochs over partitions with modeled offload."""
    import json

    from .bench.workloads import get_workload
    from .checkpoint import CheckpointStore
    from .errors import ReproError
    from .fullgraph import FullGraphConfig, FullGraphTrainer
    from .pipeline.export import report_to_dict
    from .utils import format_time

    workload = get_workload(args.dataset, scale=args.scale)
    system = workload.system(_SSDS[args.ssd], num_ssds=args.num_ssds)
    dataset = workload.dataset

    fault_injector = None
    if args.fault_plan is not None:
        from .faults import FaultInjector

        fault_injector = FaultInjector(_load_fault_plan(args.fault_plan))
    verifier = None
    if args.verify_reads != "off":
        from .integrity import CorruptionLedger, ReadVerifier

        verifier = ReadVerifier(
            CorruptionLedger(num_devices=args.num_ssds),
            mode=args.verify_reads,
        )

    tracer = _make_tracer(args)
    flight = _make_flight(args, tracer)
    snapshotter = _make_snapshotter(args, tracer, "fullgraph", flight=flight)
    trainer = None
    try:
        config = FullGraphConfig(
            hidden_dim=args.hidden_dim,
            num_classes=args.classes,
            num_layers=args.layers,
            aggregator=args.aggregator,
            hbm_budget_bytes=(
                None if args.hbm_mb is None else args.hbm_mb * 2**20
            ),
            num_partitions=args.partitions,
            io_overlap=not args.no_overlap,
            **_ha_kwargs(args),
        )
        trainer = FullGraphTrainer(
            dataset,
            system,
            config,
            tracer=tracer,
            fault_injector=fault_injector,
            verifier=verifier,
        )
        trainer.snapshotter = snapshotter

        store = None
        if args.checkpoint_dir is not None:
            store = CheckpointStore(args.checkpoint_dir)
            if args.resume:
                loaded = store.load_latest()
                if loaded is not None:
                    trainer.load_state_dict(loaded.payload["trainer"])
                    if tracer is not None and "tracer" in loaded.payload:
                        tracer.load_state_dict(loaded.payload["tracer"])
                    print(
                        f"resumed from step {loaded.iteration} "
                        f"({loaded.path})",
                        file=sys.stderr,
                    )
            else:
                stale = store.iterations()
                if stale:
                    import os

                    print(
                        f"note: clearing {len(stale)} old snapshot(s) "
                        f"from {args.checkpoint_dir} (pass --resume to "
                        "continue them)",
                        file=sys.stderr,
                    )
                    for iteration in stale:
                        os.unlink(store.path_for(iteration))

        total_steps = args.epochs * trainer.steps_per_epoch
        done = (
            trainer.epochs_completed * trainer.steps_per_epoch
            + trainer.step_index
        )
        budget = max(0, total_steps - done)
        if args.steps is not None:
            budget = min(budget, args.steps)
        every = max(1, args.checkpoint_every)
        ran = 0
        while ran < budget:
            if args.target_acc is not None and (
                trainer.accuracies
                and trainer.accuracies[-1] >= args.target_acc
            ):
                break
            chunk = min(every, budget - ran) if store else budget - ran
            trainer.run_steps(chunk)
            ran += chunk
            if store is not None:
                payload = {"trainer": trainer.state_dict()}
                if tracer is not None:
                    payload["tracer"] = tracer.state_dict()
                store.save(done + ran, payload)
        result = trainer.result(target_accuracy=args.target_acc)
    except ReproError as exc:
        from .errors import FaultError

        if isinstance(exc, FaultError) and flight is not None:
            now = trainer.clock_s if trainer is not None else 0.0
            flight.note(
                "crash", type(exc).__name__, "alerts", now,
                detail={"message": str(exc)},
            )
            flight.dump(
                args.blackbox,
                trigger=f"{type(exc).__name__}: {exc}",
                at_s=now,
            )
            print(
                f"wrote flight-recorder dump to {args.blackbox}",
                file=sys.stderr,
            )
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from .pipeline.export import observability_block

    _finish_snapshots(snapshotter, tracer)
    summary = report_to_dict(
        result.report,
        tracer=tracer,
        system=system,
        fullgraph=result.block,
        observability=observability_block(
            tracer=tracer, snapshotter=snapshotter, flight=flight
        ),
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True, allow_nan=False)
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True, allow_nan=False))
        return 0

    block = result.block
    plan = block["plan"]
    rows = [
        [
            epoch + 1,
            f"{loss:.4f}",
            f"{acc:.1%}",
            format_time(end_s),
        ]
        for epoch, (loss, acc, end_s) in enumerate(
            zip(result.losses, result.accuracies, result.epoch_end_times_s)
        )
    ]
    print(
        render_table(
            ["epoch", "loss", "eval acc", "modeled time"],
            rows,
            title=f"full-graph sweep on {args.dataset} "
            f"({_SSDS[args.ssd].name} x{args.num_ssds}, "
            f"{block['num_partitions']} partitions)",
        )
    )
    residency = (
        "resident in HBM"
        if block["activations_resident"]
        else "spilled to SSD"
    )
    traffic = block["traffic"]
    print(
        f"plan: {block['num_partitions']} partitions, workspace "
        f"{plan['workspace_bytes'] / 2**20:.1f} MiB of "
        f"{plan['hbm_budget_bytes'] / 2**20:.1f} MiB HBM, activations "
        f"{residency}"
    )
    print(
        f"traffic: {traffic['feature_sequential_bytes'] / 2**20:.1f} MiB "
        f"features streamed, {traffic['activation_spill_bytes'] / 2**20:.1f}"
        f" MiB spilled, {traffic['spill_pages']} spill pages"
    )
    if trainer.step_index:
        print(
            f"stopped mid-epoch at step {trainer.step_index} of "
            f"{trainer.steps_per_epoch} (resume with --checkpoint-dir "
            "--resume)"
        )
    if result.target_accuracy is not None:
        if result.time_to_target_s is not None:
            print(
                f"reached {result.target_accuracy:.0%} accuracy at modeled "
                f"{format_time(result.time_to_target_s)}"
            )
        else:
            print(
                f"did not reach {result.target_accuracy:.0%} accuracy in "
                f"{result.epochs_completed} epochs"
            )
    what_if = block["what_if_2x_hbm"]
    if what_if.get("speedup") and what_if["speedup"] > 1.0:
        print(
            f"what-if 2x HBM: activations become resident, predicted "
            f"{what_if['speedup']:.2f}x faster epoch"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: an overload-protected online inference run."""
    import json

    from .bench.workloads import get_workload
    from .errors import ConfigError
    from .serving import PRIORITIES, ArrivalConfig, InferenceServer, ServingConfig
    from .utils import format_rate, format_time

    try:
        mix = tuple(float(p) for p in args.priority_mix.split(","))
        arrival = ArrivalConfig(
            shape=args.shape,
            rate=args.rate,
            seed=args.seed,
            priority_mix=mix,
            deadline_s=args.deadline_ms / 1e3,
        )
        serving = ServingConfig(
            protection=not args.no_protection,
            slo_p99_s=args.slo_p99_ms / 1e3,
        )
    except (ConfigError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.requests <= 0:
        print("error: --requests must be positive", file=sys.stderr)
        return 2

    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)
    alert_rules = None
    if args.alerts is not None:
        alert_rules = _load_alert_rules(args.alerts)
    tracer = _make_tracer(args)
    flight = _make_flight(args, tracer)
    snapshotter = _make_snapshotter(args, tracer, "serve", flight=flight)

    workload = get_workload(args.dataset, scale=args.scale)
    system = workload.system(_SSDS[args.ssd], num_ssds=args.num_ssds)
    server = InferenceServer(
        workload.dataset,
        system,
        workload.loader_config(),
        arrival=arrival,
        serving=serving,
        fanouts=workload.fanouts,
        hot_nodes=workload.hot_nodes,
        seed=1,
        fault_plan=fault_plan,
        tracer=tracer,
        **_ha_kwargs(args),
    )
    server.snapshotter = snapshotter
    server.serve(args.requests)
    server.drain()
    report = server.report()
    _finish_snapshots(snapshotter, tracer)

    alerts_block = None
    if alert_rules is not None:
        from .observatory import SLOMonitor

        # Serving has no RunReport: rules are evaluated against the
        # metrics registry (report-scoped rules are listed as missing).
        monitor = SLOMonitor(alert_rules, tracer=tracer)
        alerts_block = monitor.evaluate(None, server.registry)
        _print_alerts(server.name, alerts_block)
        if tracer is not None:
            _breach_blackbox(args, flight, alerts_block, tracer.clock_s)
    from .pipeline.export import observability_block

    summary = report.export_dict(
        tracer=tracer, system=system, alerts=alerts_block,
        storage_ha=(
            server.storage_ha.summary_block()
            if server.storage_ha is not None
            else None
        ),
        observability=observability_block(
            tracer=tracer, snapshotter=snapshotter, flight=flight
        ),
    )
    if tracer is not None and args.trace is not None:
        _write_trace(tracer, args.trace)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote serving export to {args.output}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps(summary, indent=2))
        return 0

    stats = report.stats
    rows = [
        [
            PRIORITIES[tier],
            stats.offered[tier],
            stats.admitted[tier],
            stats.shed[tier],
            stats.rejected[tier],
            stats.completed[tier],
            stats.deadline_met[tier],
            stats.deadline_missed[tier],
        ]
        for tier in range(len(PRIORITIES))
    ]
    protection = "on" if report.protection else "OFF"
    print(
        render_table(
            ["priority", "offered", "admitted", "shed", "rejected",
             "completed", "met", "missed"],
            rows,
            title=f"{args.dataset} serving: {args.shape} @ "
            f"{format_rate(args.rate)}, protection {protection}",
        )
    )
    p50, p99 = report.latency_percentile(50), report.latency_percentile(99)
    if p99 is not None:
        within = "within" if p99 <= report.slo_p99_s else "VIOLATES"
        print(
            f"latency: p50 {format_time(p50)}, p99 {format_time(p99)} "
            f"({within} the {format_time(report.slo_p99_s)} SLO)"
        )
    print(
        f"goodput {format_rate(report.goodput_req_s)} of "
        f"{format_rate(report.capacity_req_s)} capacity; "
        f"shed {stats.shed_fraction:.1%}, degraded "
        f"{report.degraded_fraction:.1%} "
        f"({report.stale_requests} stale)"
    )
    if report.hedge["issued"]:
        print(
            f"hedged reads: {report.hedge['issued']} issued, "
            f"{report.hedge['won']} won"
        )
    if report.breaker_transitions:
        opens = sum(
            1 for t in report.breaker_transitions if t["to"] == "open"
        )
        print(
            f"breakers: {len(report.breaker_transitions)} transition(s), "
            f"{opens} open event(s), {report.breaker_open_count} "
            "currently not closed"
        )
    for t in report.brownout_transitions:
        print(
            f"brownout: {t['from_level']} -> {t['to_level']} at "
            f"{t['at_s']:.3f}s"
        )
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    """``scrub``: one offline integrity sweep over a workload's pages."""
    from .faults.injector import FaultInjector
    from .graph.datasets import load_scaled
    from .integrity import CorruptionLedger, PageChecksummer, Scrubber
    from .storage.feature_store import FeatureStore

    if args.scrub_iops <= 0:
        print("error: --scrub-iops must be positive", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = _load_fault_plan(args.fault_plan)

    dataset = load_scaled(args.dataset, args.scale, seed=0)
    store = FeatureStore(dataset.num_nodes, dataset.feature_dim)
    total_pages = store.layout.total_pages
    injector = None
    if fault_plan is not None and not fault_plan.is_null():
        injector = FaultInjector(fault_plan)

    at_time = args.at_time
    if at_time is None:
        # Default: sweep just after every storm in the plan has landed, so
        # the scan observes the poisoned steady state.
        storms = () if fault_plan is None else fault_plan.corruption_events
        at_time = max((e.at_time_s for e in storms), default=0.0) + 1e-9

    ledger = CorruptionLedger(num_devices=args.num_ssds)
    scrubber = Scrubber(
        total_pages=total_pages,
        iops_budget=args.scrub_iops,
        ledger=ledger,
        injector=injector,
        num_devices=args.num_ssds,
        checksummer=PageChecksummer(store),
    )
    # Grant exactly one full pass worth of budget (+1 page of slack so
    # float truncation cannot round the last page away).
    outcome = scrubber.sweep((total_pages + 1) / args.scrub_iops, at_time)

    rows = [
        [r["device"], r["detected"], r["repaired"], r["unrepairable"]]
        for r in ledger.per_device_summary()
    ]
    print(
        render_table(
            ["device", "detected", "repaired", "unrepairable"],
            rows,
            title=f"scrub of {args.dataset} ({total_pages} pages, "
            f"t={at_time:.3f}s)",
        )
    )
    sweep_s = total_pages / args.scrub_iops
    print(
        f"scanned {outcome.pages_scanned} pages in {sweep_s:.3f} modeled "
        f"seconds ({args.scrub_iops:.0f} IOPS): {outcome.detected} "
        f"corrupt, {outcome.repaired} repaired, {outcome.released} "
        f"released from quarantine"
    )
    return 0


def _cmd_faults_validate(args: argparse.Namespace) -> int:
    """``faults validate``: parse a plan and cross-check its events."""
    plan = _load_fault_plan(args.plan)  # exits 2 on a malformed plan

    problems: list[str] = []
    if args.iterations is not None:
        for event in plan.crash_events:
            if event.at_iteration > args.iterations:
                problems.append(
                    f"crash event at iteration {event.at_iteration} never "
                    f"fires in a {args.iterations}-iteration run"
                )
    if args.fleet_size is not None:
        if args.fleet_size <= 0:
            print("error: --fleet-size must be positive", file=sys.stderr)
            return 2
        for event in plan.worker_events:
            if event.worker >= args.fleet_size:
                problems.append(
                    f"{event.kind} event targets {event.target} but a "
                    f"{args.fleet_size}-GPU fleet only has workers "
                    f"gpu:0..gpu:{args.fleet_size - 1}"
                )
        # A dropout with no later recovery strands the shard only if it
        # empties the whole fleet; flag the unrecoverable full wipe.
        dropped: set[int] = set()
        wiped = False
        for event in sorted(
            plan.worker_events, key=lambda e: (e.at_time_s, e.worker)
        ):
            if event.kind == "dropout":
                dropped.add(event.worker)
            elif event.kind == "recovery":
                dropped.discard(event.worker)
            if len(dropped) >= args.fleet_size:
                wiped = True
        if wiped and dropped and len(dropped) >= args.fleet_size:
            problems.append(
                f"the plan drops all {args.fleet_size} workers with no "
                "recovery: the fleet would stall with batches unassigned"
            )
    if args.num_ssds is not None:
        if args.num_ssds <= 0:
            print("error: --num-ssds must be positive", file=sys.stderr)
            return 2
        for event in plan.device_events:
            if event.device >= args.num_ssds:
                problems.append(
                    f"{event.kind} event targets device {event.device} "
                    f"but a {args.num_ssds}-SSD array only has devices "
                    f"0..{args.num_ssds - 1}"
                )
        for event in plan.corruption_events:
            if event.device >= args.num_ssds:
                problems.append(
                    f"corruption storm targets device {event.device} "
                    f"but a {args.num_ssds}-SSD array only has devices "
                    f"0..{args.num_ssds - 1}"
                )
        # A full-array wipe with no recovery leaves nothing to serve (or
        # rebuild) from; with redundancy a partial wipe is survivable,
        # but an all-devices-down plan cannot be routed around.
        down: set[int] = set()
        all_down = False
        for event in sorted(
            plan.device_events, key=lambda e: (e.at_time_s, e.device)
        ):
            if event.device >= args.num_ssds:
                continue
            if event.kind == "dropout":
                down.add(event.device)
            elif event.kind == "recovery":
                down.discard(event.device)
            if len(down) >= args.num_ssds:
                all_down = True
        if all_down and down and len(down) >= args.num_ssds:
            problems.append(
                f"the plan drops all {args.num_ssds} devices with no "
                "recovery: no replica or parity group survives to serve "
                "reads"
            )

    rates = [
        ["read_failure_rate", f"{plan.read_failure_rate:g}"],
        ["tail_latency_rate", f"{plan.tail_latency_rate:g}"],
        ["bitflip_rate", f"{plan.bitflip_rate:g}"],
        ["torn_page_rate", f"{plan.torn_page_rate:g}"],
        ["pcie_degradation_factor", f"{plan.pcie_degradation_factor:g}"],
        ["crash_events", len(plan.crash_events)],
    ]
    print(render_table(["knob", "value"], rates, title=f"plan {args.plan}"))

    devices: dict[int, list[str]] = {}
    for event in plan.device_events:
        devices.setdefault(event.device, []).append(
            f"{event.kind}@{event.at_time_s:g}s"
        )
    for event in plan.corruption_events:
        devices.setdefault(event.device, []).append(
            f"storm@{event.at_time_s:g}s"
            f" ({event.page_fraction:.2%} of pages)"
        )
    if devices:
        rows = [
            [device, "; ".join(notes)]
            for device, notes in sorted(devices.items())
        ]
        print(render_table(["device", "events"], rows,
                           title="per-device events"))

    workers: dict[int, list[str]] = {}
    for event in plan.worker_events:
        note = f"{event.kind}@{event.at_time_s:g}s"
        if event.kind == "straggle":
            note += f" (x{event.factor:g} I/O)"
        workers.setdefault(event.worker, []).append(note)
    if workers:
        rows = [
            [f"gpu:{worker}", "; ".join(notes)]
            for worker, notes in sorted(workers.items())
        ]
        print(render_table(["worker", "events"], rows,
                           title="per-worker events"))

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 2
    print("plan is valid")
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    """``storage``: a stepped device health / rebuild drill.

    Advances the fault timeline across ``--duration`` in ``--steps``
    observation ticks (the health monitor needs repeated EWMA samples to
    tell fail-slow from a blip), granting the rebuilder its budget each
    tick, then prints the per-device health table and rebuild progress.
    """
    import json

    from .bench.workloads import get_workload
    from .errors import ReproError
    from .faults.array import FaultySSDArray
    from .faults.injector import FaultInjector
    from .sim.ssd import SSDArray
    from .storage.feature_store import FeatureStore
    from .storage_ha import StorageHA

    if args.num_ssds <= 0:
        print("error: --num-ssds must be positive", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    if args.steps <= 0:
        print("error: --steps must be positive", file=sys.stderr)
        return 2
    ha_kwargs = _ha_kwargs(args)

    workload = get_workload(args.dataset, scale=args.scale)
    system = workload.system(_SSDS[args.ssd], num_ssds=args.num_ssds)
    store = FeatureStore(
        workload.dataset.num_nodes,
        workload.dataset.feature_dim,
        page_bytes=system.ssd.page_bytes,
    )

    fault_array = None
    if args.fault_plan is not None:
        plan = _load_fault_plan(args.fault_plan)
        if plan.device_events:
            fault_array = FaultySSDArray(
                SSDArray(system.ssd, system.num_ssds), FaultInjector(plan)
            )
        else:
            print(
                "note: the plan has no device events; the array stays "
                "healthy",
                file=sys.stderr,
            )
    try:
        ha = StorageHA(
            num_devices=system.num_ssds,
            base_latency_s=system.ssd.read_latency_s,
            total_pages=store.layout.total_pages,
            fault_array=fault_array,
            **ha_kwargs,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    dt = args.duration / args.steps
    now = 0.0
    for _ in range(args.steps):
        now += dt
        ha.advance(now)
        ha.background_sweep(dt, now)

    block = ha.summary_block()
    block["observed_seconds"] = args.duration
    block["observations"] = args.steps
    if args.format == "json":
        print(json.dumps(block, indent=2, sort_keys=True, allow_nan=False))
        return 0

    ewma = ha.health.ewma_latencies()
    states = block["device_states"]
    rows = [
        [
            f"ssd:{device}",
            states[device],
            f"{ewma[device] * 1e6:.1f}",
        ]
        for device in range(system.num_ssds)
    ]
    mode = block["mode"]
    width = (
        f"replication x{block['replication_factor']}"
        if mode == "replication"
        else f"parity k={block['parity_group_k']}+1"
    )
    print(
        render_table(
            ["device", "health", "EWMA latency (us)"],
            rows,
            title=f"{system.num_ssds}-SSD array after "
            f"{args.duration:g}s ({width}, overhead "
            f"{block['storage_overhead_factor']:.2f}x)",
        )
    )
    for t in block["health_transitions"]:
        print(
            f"health: ssd:{t['device']} {t['from']} -> {t['to']} at "
            f"{t['at_time_s']:.3f}s"
        )
    jobs = block["rebuild_jobs_open"]
    if jobs:
        for job in jobs:
            print(
                f"rebuild: {job['kind']} ssd:{job['device']} "
                f"{job['pages_done']}/{job['pages_total']} pages"
            )
    print(
        f"redundant: {'yes' if block['fully_redundant'] else 'NO'}; "
        f"{block['pages_rebuilt_total']} pages rebuilt on "
        f"{block['rebuild_iops_budget']:g} IOPS budget"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: render a saved Chrome-trace file as an ASCII timeline."""
    import json

    from .errors import TelemetryError
    from .telemetry import (
        render_trace,
        summarize_chrome_trace,
        validate_chrome_trace,
    )

    try:
        with open(args.path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.path!r}: {exc}",
              file=sys.stderr)
        return 1
    if args.request is not None:
        from .telemetry import list_trace_ids, render_request_trace

        try:
            validate_chrome_trace(trace)
            if args.request == "list":
                ids = list_trace_ids(trace)
                if not ids:
                    print(
                        "no causal chains in this trace (record with "
                        "--trace-detail request)",
                        file=sys.stderr,
                    )
                    return 1
                for trace_id in ids:
                    print(trace_id)
            else:
                print(render_request_trace(trace, args.request))
        except TelemetryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    try:
        if args.json:
            print(
                json.dumps(
                    summarize_chrome_trace(trace),
                    indent=2,
                    sort_keys=True,
                    allow_nan=False,
                )
            )
        else:
            validate_chrome_trace(trace)
            print(render_trace(trace, width=args.width))
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _render_top(snapshots: list[dict], max_metrics: int) -> str:
    """One ``repro top`` frame from the latest snapshot of a stream."""
    latest = snapshots[-1]
    deltas = latest.get("counter_deltas", {})
    lines = [
        f"repro top — source {latest['source']}, snapshot "
        f"#{latest['seq']} at modeled {latest['modeled_time_s']:.3f}s "
        f"(cadence {latest['every_s']:g}s, {len(snapshots)} snapshot(s))"
    ]
    rows = []
    for name, summary in sorted(latest.get("metrics", {}).items()):
        kind = summary.get("kind")
        if kind in ("counter", "gauge"):
            value = summary.get("value", 0)
            rows.append(
                (abs(deltas.get(name, 0)), name, kind,
                 f"{value:g}", f"{deltas.get(name, 0):+g}"
                 if name in deltas else "")
            )
        elif kind == "histogram":
            count = summary.get("count", 0)
            mean = summary.get("mean")
            rows.append(
                (0, name, kind, f"n={count}",
                 f"mean={mean:.6g}" if mean is not None else "")
            )
    # Busiest first: largest counter movement since the last snapshot.
    rows.sort(key=lambda r: (-r[0], r[1]))
    shown = rows[:max_metrics]
    if not shown:
        lines.append("(registry is empty)")
        return "\n".join(lines)
    width = max(len(r[1]) for r in shown)
    for _, name, kind, value, extra in shown:
        lines.append(f"  {name:<{width}}  {kind:<9} {value:>14} {extra}")
    if len(rows) > len(shown):
        lines.append(f"  ... {len(rows) - len(shown)} more metric(s)")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """``top``: terminal view of a ``--stream`` snapshot JSONL file."""
    import time

    from .errors import TelemetryError
    from .telemetry import read_snapshots

    last_seq = None
    while True:
        try:
            snapshots = read_snapshots(args.path)
        except OSError as exc:
            print(f"error: cannot read {args.path!r}: {exc}",
                  file=sys.stderr)
            return 1
        except TelemetryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not snapshots:
            if not args.follow:
                print(f"error: {args.path!r} holds no snapshots",
                      file=sys.stderr)
                return 1
        else:
            seq = snapshots[-1]["seq"]
            if seq != last_seq:
                last_seq = seq
                print(_render_top(snapshots, args.metrics))
        if not args.follow:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: wall-clock-vs-modeled self-profile of one experiment."""
    import json
    import time

    from .bench import experiments
    from .telemetry import SimProfiler, render_profile

    fn = getattr(experiments, _EXPERIMENTS[args.experiment])
    profiler = SimProfiler()
    start = time.perf_counter()
    with profiler:
        result = fn()
    wall_s = time.perf_counter() - start

    # Modeled seconds the experiment simulated: sum every loader seconds
    # value its extras carry (the e2e experiments' common shape).
    modeled_s = 0.0
    for dataset_block in (result.extras or {}).values():
        if isinstance(dataset_block, dict):
            for value in dataset_block.values():
                if isinstance(value, (int, float)):
                    modeled_s += float(value)
    doc = profiler.report(
        modeled_s=modeled_s or None,
        baseline_wall_s=wall_s,
        workload=f"bench_{_EXPERIMENTS[args.experiment]}",
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"wrote profile to {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True, allow_nan=False))
    else:
        print(render_profile(doc))
    return 0


def _cmd_ssd_model(args: argparse.Namespace) -> int:
    from .sim.ssd import SSDArray

    array = SSDArray(_SSDS[args.ssd], args.num_ssds)
    points = [
        {
            "overlapping": n,
            "iops": array.achieved_iops(n),
            "bandwidth_bytes": array.achieved_bandwidth(n),
        }
        for n in (32, 128, 512, 2048, 8192, 32768)
    ]
    required = array.required_overlapping(args.target)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "ssd": array.spec.name,
                    "num_ssds": array.num_ssds,
                    "peak_iops": array.peak_iops,
                    "peak_bandwidth_bytes": array.peak_bandwidth,
                    "target": args.target,
                    "required_overlapping": required,
                    "points": points,
                },
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
        )
        return 0
    rows = [
        [
            p["overlapping"],
            f"{p['iops'] / 1e6:.3f}",
            f"{p['bandwidth_bytes'] / 1e9:.2f}",
        ]
        for p in points
    ]
    print(
        render_table(
            ["overlapping", "MIOPS", "GB/s"],
            rows,
            title=f"{array.spec.name} x{array.num_ssds}",
        )
    )
    print(
        f"{required} overlapping accesses reach "
        f"{args.target:.0%} of peak"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """``analyze``: bottleneck attribution for a saved report export."""
    import json

    from .errors import ObservatoryError
    from .observatory import attribute_summary, system_spec_block

    summary = _load_report(args.report, loader=args.loader)
    specs = (summary.get("attribution") or {}).get("specs")
    if specs is None:
        from .config import SystemConfig

        specs = system_spec_block(
            SystemConfig(ssd=_SSDS[args.ssd], num_ssds=args.num_ssds)
        )
        print(
            f"note: report has no embedded specs; assuming "
            f"{specs['ssd']} x{specs['num_ssds']} (--ssd/--num-ssds)",
            file=sys.stderr,
        )
    try:
        block = attribute_summary(summary, specs)
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(block, indent=2, sort_keys=True, allow_nan=False))
        return 0

    rows = [
        [
            name,
            f"{entry['achieved']:.4g}",
            f"{entry['peak']:.4g}",
            entry["unit"],
            f"{entry['utilization']:.1%}",
        ]
        for name, entry in block["resources"].items()
    ]
    print(
        render_table(
            ["resource", "achieved", "peak", "unit", "utilization"],
            rows,
            title=f"{summary['loader']} on {specs['ssd']} "
            f"x{specs['num_ssds']} ({summary['iterations']} iterations)",
        )
    )
    fractions = ", ".join(
        f"{name} {fraction:.0%}"
        for name, fraction in block["stage_fractions"].items()
    )
    print(f"stage breakdown: {fractions}")
    print(f"bottleneck: {block['bottleneck']} — {block['verdict']}")
    if block["what_if"]:
        rows = [
            [
                row["scenario"],
                f"{row['predicted_e2e_seconds'] * 1e3:.3f}",
                f"{row['delta_seconds'] * 1e3:+.3f}",
                f"{row['delta_fraction']:+.1%}",
            ]
            for row in block["what_if"]
        ]
        print(
            render_table(
                ["what-if", "predicted E2E ms", "delta ms", "delta"],
                rows,
                title="Eq. 2-3 sensitivity (modeled)",
            )
        )
        for row in block["what_if"]:
            if row["scenario"] != "capacity":
                continue
            max_req_s = row.get("max_sustainable_req_s")
            if max_req_s is not None:
                from .utils import format_rate

                print(
                    f"capacity: ~{format_rate(max_req_s)} feature requests "
                    f"sustainable at the {row['bottleneck']} bottleneck "
                    f"(achieved {format_rate(row['achieved_req_s'])}, "
                    f"{row['utilization']:.1%} utilized)"
                )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """``compare``: regression gate between reports or vs the history."""
    import json

    from .errors import ObservatoryError
    from .observatory import (
        RunHistory,
        compare_summaries,
        compare_to_history,
    )

    try:
        if args.history is not None:
            if len(args.reports) != 1:
                print(
                    "error: --history takes exactly one CANDIDATE report",
                    file=sys.stderr,
                )
                return 2
            candidate = _load_report(args.reports[0], loader=args.loader)
            result = compare_to_history(
                candidate,
                RunHistory(args.history),
                sigma=args.sigma,
                threshold=args.threshold,
            )
        else:
            if len(args.reports) != 2:
                print(
                    "error: compare takes BASELINE and CANDIDATE reports "
                    "(or one CANDIDATE with --history)",
                    file=sys.stderr,
                )
                return 2
            baseline = _load_report(args.reports[0], loader=args.loader)
            candidate = _load_report(args.reports[1], loader=args.loader)
            result = compare_summaries(
                baseline, candidate, threshold=args.threshold
            )
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(
            json.dumps(
                result.to_dict(), indent=2, sort_keys=True, allow_nan=False
            )
        )
        return result.exit_code

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value:.6g}"

    rows = [
        [
            delta.metric,
            fmt(delta.baseline),
            fmt(delta.candidate),
            fmt(delta.delta),
            "-" if delta.fraction is None else f"{delta.fraction:+.2%}",
            delta.verdict,
        ]
        for delta in result.deltas
    ]
    print(
        render_table(
            ["metric", "baseline", "candidate", "delta", "%", "verdict"],
            rows,
            title=f"comparison ({result.mode} mode, "
            f"threshold {result.threshold:.0%})",
        )
    )
    if result.drifting:
        print(
            "warning: within tolerance but drifting: "
            + ", ".join(result.drifting),
            file=sys.stderr,
        )
    print(f"verdict: {result.verdict}")
    return result.exit_code


def _cmd_history_record(args: argparse.Namespace) -> int:
    """``history record``: append one report summary to the history."""
    from .errors import ObservatoryError
    from .observatory import RunHistory

    summary = _load_report(args.report, loader=args.loader)
    try:
        record = RunHistory(args.dir).append(summary, label=args.label)
    except (ObservatoryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    e2e = record.e2e_seconds
    print(
        f"recorded {record.loader} run as fingerprint "
        f"{record.fingerprint} (rev {record.git_rev}, "
        f"e2e {'-' if e2e is None else f'{e2e * 1e3:.2f} ms'}) "
        f"in {args.dir}"
    )
    return 0


def _cmd_history_list(args: argparse.Namespace) -> int:
    """``history list``: show recorded fingerprints or one trend."""
    import json

    from .errors import ObservatoryError
    from .observatory import RunHistory

    history = RunHistory(args.dir)
    try:
        records = history.records(args.fingerprint)
    except ObservatoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                [record.to_dict() for record in records],
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
        )
        return 0
    if not records:
        print(f"history at {history.path} holds no records")
        return 0
    if args.fingerprint is not None:
        rows = [
            [
                record.git_rev,
                record.loader,
                record.iterations,
                "-"
                if record.e2e_seconds is None
                else f"{record.e2e_seconds * 1e3:.2f}",
                record.bottleneck or "-",
                record.label or "-",
            ]
            for record in records
        ]
        print(
            render_table(
                ["rev", "loader", "iters", "E2E ms", "bottleneck", "label"],
                rows,
                title=f"fingerprint {args.fingerprint}",
            )
        )
        return 0
    counts: dict[str, list] = {}
    for record in records:
        counts.setdefault(record.fingerprint, []).append(record)
    rows = [
        [
            fingerprint,
            len(group),
            group[-1].loader,
            group[-1].iterations,
            group[-1].label or "-",
        ]
        for fingerprint, group in counts.items()
    ]
    print(
        render_table(
            ["fingerprint", "runs", "loader", "iters", "label"],
            rows,
            title=f"run history ({history.path})",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "fullgraph":
        return _cmd_fullgraph(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "scrub":
        return _cmd_scrub(args)
    if args.command == "storage":
        return _cmd_storage(args)
    if args.command == "faults":
        if args.faults_command == "validate":
            return _cmd_faults_validate(args)
        raise AssertionError(
            f"unhandled faults command {args.faults_command!r}"
        )
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "ssd-model":
        return _cmd_ssd_model(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "history":
        if args.history_command == "record":
            return _cmd_history_record(args)
        if args.history_command == "list":
            return _cmd_history_list(args)
        raise AssertionError(
            f"unhandled history command {args.history_command!r}"
        )
    raise AssertionError(f"unhandled command {args.command!r}")
