"""The modeled-time online inference server over the GIDS storage stack.

One request = one seed node: sample its neighborhood on the GPU, redirect
hot features to the constant CPU buffer, look the rest up in the BaM GPU
software cache, fetch the misses from the SSD array with GPU-initiated
direct storage accesses, then run the forward pass — the training loader's
sample→fetch→aggregate path driven per-request instead of per-epoch.

Requests arrive open-loop (the :class:`~repro.serving.arrival
.ArrivalProcess` does not wait for anyone) and queue for the single modeled
pipeline.  The event loop is discrete and deterministic: arrivals are
generated in order, and before each arrival is admitted, every queued
request whose service would start earlier is completed — so the queue state
any admission decision sees is exactly the state at that modeled instant.

The protection layers (admission control, shedding, per-device breakers,
hedged reads, brownout) are owned here and all share the same modeled
clock.  With ``serving.protection`` off, the queue is unbounded and every
layer is inert — the configuration that shows the textbook latency collapse
past saturation.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..cache.cpu_buffer import ConstantCPUBuffer
from ..cache.gpu_cache import GPUSoftwareCache
from ..config import LoaderConfig, SystemConfig
from ..errors import CheckpointError, ServingError
from ..faults import (
    FaultInjector,
    FaultPlan,
    FaultySSDArray,
    RetryPolicy,
)
from ..graph.datasets import ScaledDataset
from ..graph.pagerank import hot_node_ranking
from ..sampling.neighbor import NeighborSampler
from ..sim.counters import TransferCounters
from ..sim.gpu import GPUModel
from ..sim.pcie import PCIeLink
from ..sim.ssd import SSDArray
from ..storage.feature_store import FeatureStore
from ..storage_ha import StorageHA
from ..telemetry import Tracer
from ..telemetry.metrics import Histogram, MetricsRegistry
from ..utils import as_rng
from .admission import (
    ADMIT,
    REJECT_DEADLINE,
    REJECT_QUEUE,
    SHED,
    AdmissionController,
)
from .arrival import ArrivalProcess, Request
from .breaker import BreakerBoard, HALF_OPEN
from .brownout import BrownoutController
from .config import ArrivalConfig, ServingConfig
from .hedging import HedgePolicy
from .report import ServingReport, ServingStats
from ..telemetry.context import TraceContext, request_trace_id
from ..telemetry.tracks import HA_TRACK, SERVING_TRACK

#: Verdict name → ServingStats field.
_VERDICT_FIELDS = {
    SHED: "shed",
    REJECT_QUEUE: "rejected_queue",
    REJECT_DEADLINE: "rejected_deadline",
}


class InferenceServer:
    """Online inference over the shared storage stack, in modeled time.

    Args:
        dataset: the (scaled) graph dataset served.
        system: hardware configuration (GPU, CPU, PCIe, SSD array).
        config: GIDS capacity knobs (GPU cache bytes, CPU buffer fraction).
        arrival: open-loop traffic description.
        serving: overload-protection configuration.
        fanouts: full-quality sampling fanouts; brownout levels scale them.
        hot_nodes: optional precomputed hot-node ranking for the CPU
            buffer (computed from ``config.hot_node_metric`` otherwise).
        framework_overhead_s: fixed software cost per served request.
        seed: RNG seed for sampling and cache eviction (the arrival
            process and fault injector each keep their own stream).
        fault_plan: optional fault scenario shared with the training path.
        retry_policy: overrides the plan's embedded retry policy.
        replication: copies of each feature page across the array (>= 2
            lets reads behind a dead device or an open breaker redirect
            to a surviving replica instead of the CPU mirror).
        parity: k+1 parity-group redundancy instead of replication.
        rebuild_iops: background IOPS budget for the online rebuilder.
        tracer: optional telemetry tracer; breaker and brownout
            transitions become instants, and (at ``request`` detail) each
            served request records a span on the ``serving`` track.
        monitor: optional SLO monitor override for the brownout
            controller.
    """

    name = "GIDS-serve"

    def __init__(
        self,
        dataset: ScaledDataset,
        system: SystemConfig,
        config: LoaderConfig | None = None,
        *,
        arrival: ArrivalConfig | None = None,
        serving: ServingConfig | None = None,
        fanouts: tuple[int, ...] = (10, 5, 5),
        hot_nodes: np.ndarray | None = None,
        framework_overhead_s: float = 150e-6,
        seed: int | np.random.Generator | None = 0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        replication: int = 1,
        parity: bool = False,
        rebuild_iops: float = 0.0,
        tracer: Tracer | None = None,
        monitor=None,
    ) -> None:
        self.dataset = dataset
        self.system = system
        self.config = config if config is not None else LoaderConfig()
        self.arrival_config = (
            arrival if arrival is not None else ArrivalConfig()
        )
        self.serving = serving if serving is not None else ServingConfig()
        self.fanouts = tuple(int(f) for f in fanouts)
        self.framework_overhead_s = float(framework_overhead_s)
        self.tracer = tracer
        self._rng = as_rng(seed)

        # --- shared storage stack (mirrors GIDSDataLoader) -------------
        self.store = FeatureStore(dataset.num_nodes, dataset.feature_dim)
        self.layout = self.store.layout
        self.ssd = SSDArray(system.ssd, system.num_ssds)
        self.pcie = PCIeLink(system.pcie)
        self.gpu = GPUModel(system.gpu)

        self.fault_plan = fault_plan
        self.faults: FaultInjector | None = None
        self.fault_array: FaultySSDArray | None = None
        if fault_plan is not None and not fault_plan.is_null():
            self.faults = FaultInjector(fault_plan, retry_policy)
            self.fault_array = FaultySSDArray(self.ssd, self.faults)
            if fault_plan.pcie_degradation_factor > 1.0:
                self.pcie = PCIeLink(
                    system.pcie,
                    degradation_factor=fault_plan.pcie_degradation_factor,
                )

        # Storage HA: same pay-for-what-you-use gating as the loader.
        self.storage_ha: StorageHA | None = None
        if replication > 1 or parity or rebuild_iops > 0:
            self.storage_ha = StorageHA(
                num_devices=system.num_ssds,
                base_latency_s=system.ssd.read_latency_s,
                replication=replication,
                parity=parity,
                rebuild_iops=rebuild_iops,
                total_pages=self.store.layout.total_pages,
                fault_array=self.fault_array,
                tracer=tracer,
            )

        cache_lines = int(
            self.config.gpu_cache_bytes // self.layout.page_bytes
        )
        self._cache_rng = self._rng.spawn(1)[0]
        self.cache = GPUSoftwareCache(cache_lines, seed=self._cache_rng)
        self.cache.tracer = tracer
        self.cpu_buffer = self._build_cpu_buffer(hot_nodes)

        # One sampler per brownout level (scaled fanouts), sharing the
        # sampling RNG: the level sequence is deterministic, so the draw
        # sequence is too.
        self._samplers = tuple(
            NeighborSampler(
                dataset.graph,
                self._scaled(level.fanout_scale),
                seed=self._rng,
            )
            for level in self.serving.brownout_levels
        )

        # --- traffic and protection ------------------------------------
        self.arrivals = ArrivalProcess(
            self.arrival_config, dataset.num_nodes
        )
        self.registry: MetricsRegistry = (
            tracer.metrics if tracer is not None else MetricsRegistry()
        )
        protection = self.serving.protection
        self.admission = AdmissionController(self.serving)
        self.breakers = (
            BreakerBoard(system.num_ssds, self.serving)
            if protection
            else None
        )
        self.hedge = HedgePolicy(self.serving) if protection else None
        self.brownout = (
            BrownoutController(
                self.serving, self.registry, monitor=monitor, tracer=tracer
            )
            if protection
            else None
        )

        # --- run state --------------------------------------------------
        #: Optional live-metric streamer, polled after every completion
        #: (attached by the CLI; ``None`` costs one attribute check).
        self.snapshotter = None
        self.stats = ServingStats()
        self.counters = TransferCounters()
        self._queue: list[tuple[int, int, dict]] = []  # (priority, idx, req)
        self._now_s = 0.0
        self._busy_until_s = 0.0
        self._busy_s = 0.0
        self._last_completion_s = 0.0
        self._latencies: list[float] = []
        self._latency_priorities: list[int] = []
        self._deadline_flags: list[bool] = []
        self._latency_hist = Histogram("serving.latency_s")
        self._stage_seconds = {
            "sampling": 0.0,
            "aggregation": 0.0,
            "transfer": 0.0,
            "training": 0.0,
        }
        self.degraded_requests = 0
        self.stale_requests = 0
        self.stale_pages = 0

    # ------------------------------------------------------------------
    # Construction helpers

    def _scaled(self, scale: float) -> tuple[int, ...]:
        return tuple(max(1, int(round(f * scale))) for f in self.fanouts)

    def _build_cpu_buffer(
        self, hot_nodes: np.ndarray | None
    ) -> ConstantCPUBuffer | None:
        fraction = self.config.cpu_buffer_fraction
        if fraction <= 0:
            return None
        if hot_nodes is None:
            seed_weights = None
            if self.config.hot_node_metric == "reverse_pagerank":
                # Same teleport weighting as the training loader, so both
                # pin the identical hot set.
                seed_weights = np.zeros(self.dataset.num_nodes)
                seed_weights[self.dataset.train_ids] = 1.0
                if seed_weights.sum() == 0:
                    seed_weights = None
            hot_nodes = hot_node_ranking(
                self.dataset.graph,
                self.config.hot_node_metric,
                seed_weights=seed_weights,
                rng=self._rng,
            )
        return ConstantCPUBuffer(
            num_nodes=self.dataset.num_nodes,
            feature_bytes=self.store.feature_bytes,
            capacity_bytes=fraction * self.dataset.feature_data_bytes,
            hot_nodes=np.asarray(hot_nodes, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Event loop

    def serve(self, num_requests: int) -> None:
        """Generate and process ``num_requests`` arrivals (open loop).

        Completions interleave naturally: before each arrival is decided,
        queued requests whose service starts earlier are finished.  Call
        :meth:`drain` afterwards to complete what is still queued.
        """
        if num_requests < 0:
            raise ServingError("num_requests must be non-negative")
        for _ in range(num_requests):
            self.step()

    def step(self) -> dict:
        """Process exactly one arrival; returns its admission verdict."""
        request = self.arrivals.next_request()
        # Finish everything that completes before this arrival so the
        # admission decision sees the true queue at that instant.
        self._complete_until(request.arrival_s)
        self._now_s = request.arrival_s
        priority = request.priority
        self.stats.count("offered", priority)

        if self.serving.protection:
            backlog = max(0.0, self._busy_until_s - request.arrival_s)
            verdict = self.admission.decide(
                priority,
                request.arrival_s,
                request.deadline_s,
                len(self._queue),
                backlog,
            )
        else:
            verdict = ADMIT

        if verdict == ADMIT:
            self.stats.count("admitted", priority)
            heapq.heappush(
                self._queue,
                (priority, request.index, request.to_dict()),
            )
        else:
            self.stats.count(_VERDICT_FIELDS[verdict], priority)
        self._publish_gauges()
        return {"request": request.index, "verdict": verdict}

    def drain(self) -> None:
        """Serve every request still waiting in the queue."""
        self._complete_until(float("inf"))

    def _complete_until(self, horizon_s: float) -> None:
        """Serve queued requests whose service starts before ``horizon_s``."""
        while self._queue:
            start_s = max(
                self._busy_until_s, self._queue[0][2]["arrival_s"]
            )
            if start_s >= horizon_s:
                break
            _, _, entry = heapq.heappop(self._queue)
            request = Request.from_dict(entry)
            if self.serving.protection and self._expired(request, start_s):
                # Dropped at dequeue: its deadline can no longer be met,
                # so serving it would only delay everyone behind it.
                self.stats.count("expired", request.priority)
                continue
            self._serve_one(request, start_s)

    def _expired(self, request: Request, start_s: float) -> bool:
        estimate = self.admission.service_estimate_s or 0.0
        return start_s + estimate > request.deadline_at_s

    def _serve_one(self, request: Request, start_s: float) -> None:
        tracer = self.tracer
        ctx = None
        if tracer is not None and tracer.want_request_detail:
            # Causal root: every span/instant recorded while the context
            # is active — cache tiers, breakers, HA redirects, retries —
            # is stamped with this request's trace id.
            ctx = TraceContext(
                request_trace_id(request.index), origin="serve"
            )
        if ctx is not None:
            with tracer.context(ctx):
                tracer.instant(
                    "admission",
                    SERVING_TRACK,
                    at_s=start_s,
                    priority=request.priority,
                    queued_s=start_s - request.arrival_s,
                )
                service_s = self._service_time(request, start_s)
        else:
            service_s = self._service_time(request, start_s)
        completion_s = start_s + service_s
        self._busy_until_s = completion_s
        self._busy_s += service_s
        self._last_completion_s = completion_s
        latency = completion_s - request.arrival_s
        priority = request.priority
        self.stats.count("completed", priority)
        met = latency <= request.deadline_s
        self.stats.count("deadline_met" if met else "deadline_missed",
                         priority)
        self._latencies.append(latency)
        self._latency_priorities.append(priority)
        self._deadline_flags.append(met)
        self._latency_hist.observe(latency)
        self.admission.observe_service(service_s)
        if self.brownout is not None:
            self.brownout.level_seconds[self.brownout.level_index] += (
                service_s
            )
            self.brownout.observe(latency, completion_s)
        if self.tracer is not None:
            self.tracer.clock_s = max(self.tracer.clock_s, completion_s)
            if self.tracer.want_request_detail:
                with self.tracer.context(ctx):
                    self.tracer.record(
                        f"request {request.index}",
                        SERVING_TRACK,
                        start_s=start_s,
                        duration_s=service_s,
                        priority=priority,
                        latency_s=latency,
                        deadline_met=met,
                    )
                    self.tracer.instant(
                        "complete",
                        SERVING_TRACK,
                        at_s=completion_s,
                        latency_s=latency,
                        deadline_met=met,
                    )
        self._publish_gauges()
        if self.snapshotter is not None:
            self.snapshotter.poll(completion_s)

    # ------------------------------------------------------------------
    # Per-request service model

    def _service_time(self, request: Request, start_s: float) -> float:
        """Modeled service time of one request on the shared stack."""
        level_index = 0 if self.brownout is None else self.brownout.level_index
        level = self.serving.brownout_levels[level_index]
        if level_index > 0:
            self.degraded_requests += 1
        sampler = self._samplers[level_index]
        batch = sampler.sample(np.asarray([request.node], dtype=np.int64))
        nodes = batch.input_nodes
        counters = TransferCounters()

        sampling_s = self.gpu.sampling_time(
            batch.num_sampled, n_kernels=sampler.num_layers
        )
        stamp = self.tracer is not None and self.tracer.want_request_detail
        if stamp:
            self.tracer.record(
                "sample",
                SERVING_TRACK,
                start_s=start_s,
                duration_s=sampling_s,
                nodes=len(nodes),
                sampled=batch.num_sampled,
                brownout_level=level_index,
            )

        if self.cpu_buffer is not None:
            buffered = self.cpu_buffer.contains(nodes)
        else:
            buffered = np.zeros(len(nodes), dtype=bool)
        n_buffered = int(buffered.sum())
        counters.cpu_buffer_requests += n_buffered
        counters.cpu_buffer_bytes += n_buffered * self.store.feature_bytes

        pages = self.layout.pages_for_nodes(nodes[~buffered])
        counters.page_faults += len(pages)
        hit_mask = self.cache.access(pages)
        n_hits = int(hit_mask.sum())
        counters.gpu_cache_hits += n_hits
        counters.gpu_cache_bytes += n_hits * self.layout.page_bytes
        miss_pages = pages[~hit_mask]

        storage_s = 0.0
        if level.cache_only:
            # Degraded to cache-only: misses are answered from stale
            # approximations instead of storage.  Free of device time, but
            # accounted — staleness is a quality debt, not a freebie.
            if len(miss_pages):
                self.stale_requests += 1
                self.stale_pages += len(miss_pages)
                if stamp:
                    self.tracer.instant(
                        "stale.cache_only",
                        SERVING_TRACK,
                        at_s=start_s + sampling_s,
                        pages=len(miss_pages),
                    )
        elif len(miss_pages):
            if stamp:
                self.tracer.instant(
                    "fetch",
                    SERVING_TRACK,
                    at_s=start_s + sampling_s,
                    pages=len(miss_pages),
                    cache_hits=n_hits,
                    buffered=n_buffered,
                )
            storage_s = self._storage_time(miss_pages, start_s, counters)

        cpu_path_bytes = (
            counters.cpu_buffer_bytes + counters.fallback_bytes
        )
        ingress_s = self.pcie.ingress_time(
            counters.storage_bytes, storage_s, cpu_path_bytes
        )
        hbm_s = self.gpu.hbm_read_time(counters.gpu_cache_bytes)
        inference_s = self.gpu.training_time(len(nodes))
        if stamp:
            self.tracer.record(
                "aggregate",
                SERVING_TRACK,
                start_s=start_s + sampling_s,
                duration_s=ingress_s + hbm_s,
                storage_s=storage_s,
            )
            self.tracer.record(
                "infer",
                SERVING_TRACK,
                start_s=start_s + sampling_s + ingress_s + hbm_s,
                duration_s=inference_s,
            )

        self._stage_seconds["sampling"] += sampling_s
        self._stage_seconds["aggregation"] += ingress_s + hbm_s
        self._stage_seconds["training"] += inference_s
        self.counters.merge(counters)
        counters.publish(self.registry)
        return (
            self.framework_overhead_s
            + sampling_s
            + ingress_s
            + hbm_s
            + inference_s
        )

    def _storage_time(
        self,
        miss_pages: np.ndarray,
        start_s: float,
        counters: TransferCounters,
    ) -> float:
        """Latency of the storage fetch, through breakers/faults/hedging."""
        num_ssds = self.system.num_ssds
        devices = miss_pages % num_ssds
        if self.faults is not None:
            self.fault_array.advance_to(start_s)
            active, _ = self.faults.device_states(start_s, num_ssds)
            stale = self.fault_array.stale_device_mask()
        else:
            active = np.ones(num_ssds, dtype=bool)
            stale = np.zeros(num_ssds, dtype=bool)
        if self.storage_ha is not None:
            self.storage_ha.advance(start_s)

        n_storage = 0
        n_fallback = 0
        extra_reads = 0
        timeout_s = 0.0
        stamp = self.tracer is not None and self.tracer.want_request_detail

        def reroute(pages_subset: np.ndarray, device: int) -> None:
            """Send pages away from ``device``: replica first, mirror last."""
            nonlocal n_storage, n_fallback, extra_reads
            if self.storage_ha is None or len(pages_subset) == 0:
                n_fallback += len(pages_subset)
                if stamp and len(pages_subset):
                    self.tracer.instant(
                        "fallback.mirror",
                        "cpu.buffer",
                        at_s=start_s,
                        device=device,
                        pages=len(pages_subset),
                    )
                return
            avoid = ~(active & ~stale)
            avoid[device] = True
            out = self.storage_ha.redirect(pages_subset, avoid=avoid)
            n_storage += out.n_storage
            extra_reads += out.extra_service_reads
            counters.replica_redirects += out.n_replica
            counters.parity_reconstructs += out.n_reconstruct
            counters.reconstruct_reads += out.reconstruct_reads
            n_fallback += out.n_lost
            if stamp:
                self.tracer.instant(
                    "ha.redirect",
                    HA_TRACK,
                    at_s=start_s,
                    device=device,
                    pages=len(pages_subset),
                    replica=out.n_replica,
                    reconstruct=out.n_reconstruct,
                    lost=out.n_lost,
                )

        for device in np.unique(devices):
            device = int(device)
            dev_pages = miss_pages[devices == device]
            n_dev = len(dev_pages)
            breaker = (
                self.breakers[device] if self.breakers is not None else None
            )
            if breaker is not None and not breaker.allows_storage(
                start_s, self.tracer
            ):
                # Open breaker: reroute — to a surviving replica when
                # redundancy exists, to the CPU mirror otherwise.
                reroute(dev_pages, device)
                continue
            n_probe = n_dev
            if breaker is not None and breaker.state == HALF_OPEN:
                # Half-open: only probe traffic touches the device.
                n_probe = min(n_dev, self.serving.breaker_probes)
                reroute(dev_pages[n_probe:], device)
            if not active[device]:
                # Dead device discovered the hard way: the probe times
                # out, then reroutes.
                timeout_s += self.serving.device_timeout_s
                if stamp:
                    self.tracer.instant(
                        "device.timeout",
                        "faults",
                        at_s=start_s,
                        device=device,
                        pages=int(n_probe),
                        timeout_s=self.serving.device_timeout_s,
                    )
                reroute(dev_pages[:n_probe], device)
                if breaker is not None:
                    breaker.record(0, n_probe, start_s, self.tracer)
            elif stale[device]:
                # The device answers (no breaker failure) but its pages
                # predate its dropout; serve them from a copy until the
                # rebuilder marks the device clean.
                reroute(dev_pages[:n_probe], device)
                if breaker is not None:
                    breaker.record(n_probe, 0, start_s, self.tracer)
            else:
                n_storage += n_probe
                if breaker is not None:
                    breaker.record(n_probe, 0, start_s, self.tracer)

        array = self.fault_array if self.fault_array is not None else self.ssd
        latency = timeout_s
        base = 0.0
        if n_storage:
            retries = 0
            backoff_s = 0.0
            unrecovered = 0
            spike_extra = 0.0
            if self.faults is not None:
                outcome = self.faults.resolve_batch(n_storage)
                retries = outcome.retries
                backoff_s = outcome.backoff_s
                unrecovered = outcome.unrecovered
                counters.storage_retries += retries
                counters.injected_faults += outcome.injected_failures
                if outcome.timed_out:
                    counters.retry_timeouts += 1
                n_spiked = self.faults.spike_count(n_storage)
                if n_spiked:
                    spike_extra = array.tail_extra_time(n_spiked)
                    counters.latency_spikes += n_spiked
                if stamp and (retries or unrecovered):
                    self.tracer.instant(
                        "retry",
                        "faults",
                        at_s=start_s + timeout_s,
                        retries=retries,
                        backoff_s=backoff_s,
                        unrecovered=unrecovered,
                    )
            n_served = n_storage - unrecovered
            n_fallback += unrecovered
            base = array.batch_service_time(n_served + retries + extra_reads)
            latency += base + backoff_s + spike_extra
            counters.storage_requests += n_served
            counters.storage_bytes += (
                n_served + extra_reads
            ) * self.layout.page_bytes

        if self.hedge is not None and n_storage:
            hedged = self.hedge.maybe_hedge(latency, base)
            if stamp and hedged != latency:
                self.tracer.instant(
                    "hedge.won",
                    SERVING_TRACK,
                    at_s=start_s + hedged,
                    saved_s=latency - hedged,
                )
            latency = hedged

        counters.fallback_requests += n_fallback
        counters.fallback_bytes += n_fallback * self.layout.page_bytes
        if self.storage_ha is not None:
            # Rebuild rides the idle IOPS left behind by this request's
            # storage window — no modeled-time cost, traffic only.
            sweep = self.storage_ha.background_sweep(
                latency, start_s + latency
            )
            if sweep is not None and sweep.pages_rebuilt:
                counters.rebuild_pages += sweep.pages_rebuilt
        return latency

    # ------------------------------------------------------------------
    # Metrics

    def _publish_gauges(self) -> None:
        registry = self.registry
        p99 = self._latency_hist.percentile(99)
        if p99 is not None:
            registry.gauge("serving.p99").set(p99)
        registry.gauge("serving.shed_fraction").set(
            self.stats.shed_fraction
        )
        registry.gauge("serving.queue_depth").set(len(self._queue))
        if self.breakers is not None:
            registry.gauge("serving.breakers_open").set(
                self.breakers.open_count
            )
        if self.brownout is not None:
            registry.gauge("serving.brownout_level").set(
                self.brownout.level_index
            )

    # ------------------------------------------------------------------
    # Reporting

    def report(self) -> ServingReport:
        """Snapshot the run into a :class:`ServingReport`."""
        duration = max(self._last_completion_s, self._now_s)
        hedge = {
            "issued": self.hedge.issued if self.hedge else 0,
            "won": self.hedge.won if self.hedge else 0,
            "budget_spent_s": (
                self.hedge.budget.spent_s if self.hedge else 0.0
            ),
        }
        levels = self.serving.brownout_levels
        return ServingReport(
            stats=self.stats,
            latencies=list(self._latencies),
            latency_priorities=list(self._latency_priorities),
            deadline_flags=list(self._deadline_flags),
            protection=self.serving.protection,
            arrival={
                "shape": self.arrival_config.shape,
                "rate": self.arrival_config.rate,
                "seed": self.arrival_config.seed,
                "deadline_s": self.arrival_config.deadline_s,
            },
            slo_p99_s=self.serving.slo_p99_s,
            duration_s=duration,
            busy_s=self._busy_s,
            stage_seconds=dict(self._stage_seconds),
            counters=self.counters.snapshot(),
            degraded_requests=self.degraded_requests,
            stale_requests=self.stale_requests,
            stale_pages=self.stale_pages,
            hedge=hedge,
            breaker_transitions=(
                self.breakers.transitions() if self.breakers else []
            ),
            breaker_open_count=(
                self.breakers.open_count if self.breakers else 0
            ),
            brownout_transitions=(
                [dict(t) for t in self.brownout.transitions]
                if self.brownout
                else []
            ),
            brownout_level_seconds=(
                list(self.brownout.level_seconds)
                if self.brownout
                else [0.0] * len(levels)
            ),
            brownout_level_names=[level.name for level in levels],
        )

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot every stateful component for bit-identical resume."""
        state = {
            "now_s": self._now_s,
            "busy_until_s": self._busy_until_s,
            "busy_s": self._busy_s,
            "last_completion_s": self._last_completion_s,
            "rng": self._rng.bit_generator.state,
            "arrivals": self.arrivals.state_dict(),
            "queue": [entry for _, _, entry in sorted(self._queue)],
            "stats": self.stats.state_dict(),
            "admission": self.admission.state_dict(),
            "cache": self.cache.state_dict(),
            "counters": self.counters.state_dict(),
            "latencies": list(self._latencies),
            "latency_priorities": list(self._latency_priorities),
            "deadline_flags": [bool(f) for f in self._deadline_flags],
            "latency_hist": self._latency_hist.state_dict(),
            "stage_seconds": dict(self._stage_seconds),
            "degraded_requests": self.degraded_requests,
            "stale_requests": self.stale_requests,
            "stale_pages": self.stale_pages,
            "breakers": (
                self.breakers.state_dict() if self.breakers else None
            ),
            "hedge": self.hedge.state_dict() if self.hedge else None,
            "brownout": (
                self.brownout.state_dict() if self.brownout else None
            ),
            "faults": self.faults.state_dict() if self.faults else None,
            "fault_array": (
                self.fault_array.state_dict() if self.fault_array else None
            ),
            "storage_ha": (
                self.storage_ha.state_dict() if self.storage_ha else None
            ),
        }
        if self.tracer is None:
            state["registry"] = self.registry.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        required = {
            "now_s", "busy_until_s", "busy_s", "last_completion_s", "rng",
            "arrivals", "queue", "stats", "admission", "cache", "counters",
            "latencies", "latency_priorities", "deadline_flags",
            "latency_hist", "stage_seconds", "degraded_requests",
            "stale_requests", "stale_pages", "breakers", "hedge",
            "brownout", "faults", "fault_array", "storage_ha",
        }
        missing = required - set(state)
        if missing:
            raise CheckpointError(
                f"serving checkpoint is missing fields: {sorted(missing)}"
            )
        self._now_s = float(state["now_s"])
        self._busy_until_s = float(state["busy_until_s"])
        self._busy_s = float(state["busy_s"])
        self._last_completion_s = float(state["last_completion_s"])
        self._rng.bit_generator.state = state["rng"]
        self.arrivals.load_state_dict(state["arrivals"])
        self._queue = [
            (int(e["priority"]), int(e["index"]), dict(e))
            for e in state["queue"]
        ]
        heapq.heapify(self._queue)
        self.stats.load_state_dict(state["stats"])
        self.admission.load_state_dict(state["admission"])
        self.cache.load_state_dict(state["cache"])
        self.counters = TransferCounters.from_state_dict(state["counters"])
        self._latencies = [float(v) for v in state["latencies"]]
        self._latency_priorities = [
            int(v) for v in state["latency_priorities"]
        ]
        self._deadline_flags = [bool(v) for v in state["deadline_flags"]]
        self._latency_hist.load_state_dict(state["latency_hist"])
        self._stage_seconds = {
            k: float(v) for k, v in state["stage_seconds"].items()
        }
        self.degraded_requests = int(state["degraded_requests"])
        self.stale_requests = int(state["stale_requests"])
        self.stale_pages = int(state["stale_pages"])
        for attr, key in (
            (self.breakers, "breakers"),
            (self.hedge, "hedge"),
            (self.brownout, "brownout"),
            (self.faults, "faults"),
            (self.fault_array, "fault_array"),
            (self.storage_ha, "storage_ha"),
        ):
            snapshot = state[key]
            if (attr is None) != (snapshot is None):
                raise CheckpointError(
                    f"serving checkpoint {key!r} does not match the "
                    "server's configuration"
                )
            if attr is not None:
                attr.load_state_dict(snapshot)
        if self.tracer is None and "registry" in state:
            self.registry.load_state_dict(state["registry"])
