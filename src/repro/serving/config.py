"""Configuration for the online-serving layer.

Two frozen dataclasses: :class:`ArrivalConfig` describes the open-loop
traffic (shape, rate, priority mix, deadlines), :class:`ServingConfig` the
protection machinery wrapped around the shared storage stack.  Both follow
the :class:`~repro.faults.retry.RetryPolicy` validation discipline —
every numeric field goes through :func:`~repro.utils.require_finite`, so a
NaN deadline or an infinite bucket rate fails construction with a
:class:`~repro.errors.ConfigError` instead of silently disabling a guard.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..utils import require_finite

#: Recognised arrival shapes.
ARRIVAL_SHAPES = ("poisson", "diurnal", "bursty")

#: Priority tiers, most important first.  Shedding walks them backwards.
PRIORITIES = ("high", "normal", "low")


@dataclass(frozen=True)
class ArrivalConfig:
    """Open-loop arrival process description (all seeded, all modeled time).

    Args:
        shape: ``"poisson"`` (constant rate), ``"diurnal"`` (sinusoidal
            rate swing with period ``period_s`` and relative amplitude
            ``amplitude``) or ``"bursty"`` (flash crowd: ``rate`` is
            multiplied by ``burst_multiplier`` during the window starting
            at ``burst_start_s``).
        rate: steady-state offered load in requests per modeled second.
        seed: RNG seed for interarrival draws, priority assignment and
            seed-node selection.  The stream is private to the arrival
            process, mirroring the fault injector's isolation rule.
        priority_mix: probability of each tier in :data:`PRIORITIES`
            (must sum to 1).
        deadline_s: per-request completion deadline, measured from arrival.
    """

    shape: str = "poisson"
    rate: float = 1000.0
    seed: int = 0
    priority_mix: tuple[float, float, float] = (0.2, 0.6, 0.2)
    deadline_s: float = 0.05
    period_s: float = 10.0
    amplitude: float = 0.5
    burst_multiplier: float = 5.0
    burst_start_s: float = 1.0
    burst_duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ConfigError(
                f"unknown arrival shape {self.shape!r}; expected one of "
                f"{ARRIVAL_SHAPES}"
            )
        require_finite("rate", self.rate, minimum=0.0, exclusive_minimum=True)
        if len(self.priority_mix) != len(PRIORITIES):
            raise ConfigError(
                f"priority_mix needs {len(PRIORITIES)} entries "
                f"({', '.join(PRIORITIES)}), got {len(self.priority_mix)}"
            )
        total = 0.0
        for name, p in zip(PRIORITIES, self.priority_mix):
            total += require_finite(
                f"priority_mix[{name}]", p, minimum=0.0, maximum=1.0
            )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"priority_mix must sum to 1, got {total}"
            )
        require_finite(
            "deadline_s", self.deadline_s, minimum=0.0, exclusive_minimum=True
        )
        require_finite(
            "period_s", self.period_s, minimum=0.0, exclusive_minimum=True
        )
        require_finite("amplitude", self.amplitude, minimum=0.0, maximum=1.0)
        require_finite(
            "burst_multiplier", self.burst_multiplier, minimum=1.0
        )
        require_finite("burst_start_s", self.burst_start_s, minimum=0.0)
        require_finite(
            "burst_duration_s",
            self.burst_duration_s,
            minimum=0.0,
            exclusive_minimum=True,
        )

    @property
    def peak_rate(self) -> float:
        """Upper bound of the instantaneous rate (thinning envelope)."""
        if self.shape == "diurnal":
            return self.rate * (1.0 + self.amplitude)
        if self.shape == "bursty":
            return self.rate * self.burst_multiplier
        return self.rate


@dataclass(frozen=True)
class BrownoutLevel:
    """One declared service-quality level of the brownout ladder."""

    name: str
    fanout_scale: float = 1.0
    cache_only: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("brownout level needs a non-empty name")
        require_finite(
            "fanout_scale",
            self.fanout_scale,
            minimum=0.0,
            exclusive_minimum=True,
            maximum=1.0,
        )


#: Default brownout ladder: full quality, reduced fanout, cache-only.
DEFAULT_BROWNOUT_LEVELS = (
    BrownoutLevel("full", fanout_scale=1.0),
    BrownoutLevel("reduced-fanout", fanout_scale=0.5),
    BrownoutLevel("cache-only", fanout_scale=0.5, cache_only=True),
)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the layered overload-protection subsystem.

    ``protection`` is the master switch: off means an unbounded FIFO queue
    with no shedding, breakers, hedging or brownout — the configuration
    that produces the classic latency collapse past saturation.

    Args:
        queue_capacity: bound on waiting requests (admission overflow
            rejects beyond it).
        slo_p99_s: the p99 latency objective the brownout controller
            enforces.
        shed_rate: token-bucket refill in requests per modeled second;
            ``None`` adapts the refill to the measured service rate (the
            bucket then tracks capacity instead of a fixed guess).
        shed_burst: bucket depth in tokens.
        shed_reserve: fraction of the bucket reserved for higher tiers —
            ``low`` needs the bucket fuller than ``normal``, which needs it
            fuller than ``high``, so load sheds bottom-up.
        shed_utilization: target fraction of measured capacity the
            adaptive refill admits (only used when ``shed_rate`` is None).
        breaker_window: sliding window length (page outcomes) per device.
        breaker_threshold: failure ratio over the window that opens the
            breaker.
        breaker_min_samples: outcomes required before the ratio is
            trusted.
        breaker_cooldown_s: modeled open time before half-open probing.
        breaker_probes: consecutive successful probes that close it.
        device_timeout_s: modeled cost of discovering a dead device the
            hard way (a read into a dropped device times out); the cost an
            open breaker short-circuits.
        hedge_quantile: latency quantile (percent) after which a storage
            read is hedged.
        hedge_budget_fraction: cap on hedge amplification — the hedge
            budget accrues this fraction of every request's base storage
            time, and a duplicate read spends its own cost from it.
        hedge_min_samples: storage reads observed before hedging arms.
        brownout_step_down_after: consecutive SLO-violating evaluations
            before stepping down a level.
        brownout_step_up_after: consecutive healthy evaluations before
            stepping back up.
        brownout_eval_every: completed requests between controller
            evaluations.
        brownout_window: completed requests in the sliding p99 window.
        admission_safety: multiplier on the predicted queue delay used for
            deadline-aware early rejection (>1 = conservative).
    """

    protection: bool = True
    queue_capacity: int = 64
    slo_p99_s: float = 0.05
    shed_rate: float | None = None
    shed_burst: float = 32.0
    shed_reserve: float = 0.3
    shed_utilization: float = 0.95
    breaker_window: int = 64
    breaker_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_cooldown_s: float = 0.05
    breaker_probes: int = 3
    device_timeout_s: float = 0.01
    hedge_quantile: float = 95.0
    hedge_budget_fraction: float = 0.1
    hedge_min_samples: int = 32
    brownout_levels: tuple[BrownoutLevel, ...] = DEFAULT_BROWNOUT_LEVELS
    brownout_step_down_after: int = 2
    brownout_step_up_after: int = 4
    brownout_eval_every: int = 16
    brownout_window: int = 128
    admission_safety: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ConfigError("queue_capacity must be positive")
        require_finite(
            "slo_p99_s", self.slo_p99_s, minimum=0.0, exclusive_minimum=True
        )
        if self.shed_rate is not None:
            require_finite(
                "shed_rate",
                self.shed_rate,
                minimum=0.0,
                exclusive_minimum=True,
            )
        require_finite(
            "shed_burst", self.shed_burst, minimum=1.0
        )
        require_finite(
            "shed_reserve", self.shed_reserve, minimum=0.0, maximum=1.0
        )
        require_finite(
            "shed_utilization",
            self.shed_utilization,
            minimum=0.0,
            exclusive_minimum=True,
            maximum=1.0,
        )
        if self.breaker_window <= 0:
            raise ConfigError("breaker_window must be positive")
        require_finite(
            "breaker_threshold",
            self.breaker_threshold,
            minimum=0.0,
            exclusive_minimum=True,
            maximum=1.0,
        )
        if self.breaker_min_samples <= 0:
            raise ConfigError("breaker_min_samples must be positive")
        require_finite(
            "breaker_cooldown_s",
            self.breaker_cooldown_s,
            minimum=0.0,
            exclusive_minimum=True,
        )
        if self.breaker_probes <= 0:
            raise ConfigError("breaker_probes must be positive")
        require_finite(
            "device_timeout_s",
            self.device_timeout_s,
            minimum=0.0,
            exclusive_minimum=True,
        )
        quantile = require_finite(
            "hedge_quantile", self.hedge_quantile, maximum=100.0
        )
        if quantile <= 0.0:
            raise ConfigError("hedge_quantile must be in (0, 100]")
        require_finite(
            "hedge_budget_fraction",
            self.hedge_budget_fraction,
            minimum=0.0,
            maximum=1.0,
        )
        if self.hedge_min_samples <= 0:
            raise ConfigError("hedge_min_samples must be positive")
        if not self.brownout_levels:
            raise ConfigError("at least one brownout level is required")
        if self.brownout_step_down_after <= 0:
            raise ConfigError("brownout_step_down_after must be positive")
        if self.brownout_step_up_after <= 0:
            raise ConfigError("brownout_step_up_after must be positive")
        if self.brownout_eval_every <= 0:
            raise ConfigError("brownout_eval_every must be positive")
        if self.brownout_window <= 0:
            raise ConfigError("brownout_window must be positive")
        require_finite(
            "admission_safety", self.admission_safety, minimum=1.0
        )
