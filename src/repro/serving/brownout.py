"""Brownout degradation: trade answer quality for tail latency, reversibly.

When protection layers below (shedding, breakers, hedging) are not enough
to hold the p99 objective, the brownout controller steps the service down a
declared quality ladder — full fanout, reduced neighbor fanout, cache-only
answers with staleness accounting — and steps back up when the tail
recovers.  Quality is degraded *for everyone* instead of latency being
blown *for someone*: the classic brownout trade.

The trigger is literal SLO machinery, not a private heuristic: the
controller publishes a sliding-window p99 gauge into a metrics registry and
asks a :class:`~repro.observatory.slo.SLOMonitor` whether its rule
(``metrics.serving.p99_window.value > slo_p99_s`` by default) fires.
``brownout_step_down_after`` consecutive firing evaluations step down one
level; ``brownout_step_up_after`` consecutive healthy ones step back up.
Every transition is an instant named ``brownout.level`` on the telemetry
``alerts`` track and an entry in the exported transition log.
"""

from __future__ import annotations

from collections import deque

from ..errors import CheckpointError
from ..observatory.slo import ALERTS_TRACK, AlertRule, SLOMonitor
from .config import BrownoutLevel, ServingConfig


def _exact_percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile over a small window (exact, deterministic)."""
    ordered = sorted(values)
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class BrownoutController:
    """Steps service quality down/up according to the SLO monitor."""

    def __init__(
        self,
        config: ServingConfig,
        registry,
        *,
        monitor: SLOMonitor | None = None,
        tracer=None,
    ) -> None:
        self.config = config
        self.registry = registry
        self.tracer = tracer
        if monitor is None:
            monitor = SLOMonitor(
                [
                    AlertRule(
                        name="serving-p99",
                        metric="metrics.serving.p99_window.value",
                        op=">",
                        threshold=config.slo_p99_s,
                        severity="critical",
                    )
                ],
            )
        self.monitor = monitor
        self.level_index = 0
        self.violation_streak = 0
        self.healthy_streak = 0
        self.transitions: list[dict] = []
        self._window: deque[float] = deque(maxlen=config.brownout_window)
        self._since_eval = 0
        #: Modeled seconds spent at each level (updated by the server).
        self.level_seconds = [0.0] * len(config.brownout_levels)

    @property
    def level(self) -> BrownoutLevel:
        return self.config.brownout_levels[self.level_index]

    @property
    def degraded(self) -> bool:
        return self.level_index > 0

    def scaled_fanouts(self, fanouts: tuple[int, ...]) -> tuple[int, ...]:
        """The configured fanouts at the current quality level."""
        scale = self.level.fanout_scale
        return tuple(max(1, int(round(f * scale))) for f in fanouts)

    def observe(self, latency_s: float, now_s: float) -> None:
        """Fold one completed request's latency in; maybe evaluate."""
        self._window.append(float(latency_s))
        self._since_eval += 1
        if self._since_eval >= self.config.brownout_eval_every:
            self._since_eval = 0
            self.evaluate(now_s)

    def evaluate(self, now_s: float) -> None:
        """Publish the window p99 and run the monitor's step logic."""
        if not self._window:
            return
        p99 = _exact_percentile(list(self._window), 99.0)
        self.registry.gauge("serving.p99_window").set(p99)
        alerts = self.monitor.evaluate(None, self.registry)
        if not alerts["ok"]:
            self.violation_streak += 1
            self.healthy_streak = 0
            if (
                self.violation_streak
                >= self.config.brownout_step_down_after
                and self.level_index < len(self.config.brownout_levels) - 1
            ):
                self._step(self.level_index + 1, now_s)
        else:
            self.healthy_streak += 1
            self.violation_streak = 0
            if (
                self.healthy_streak >= self.config.brownout_step_up_after
                and self.level_index > 0
            ):
                self._step(self.level_index - 1, now_s)

    def _step(self, new_index: int, now_s: float) -> None:
        previous = self.level_index
        self.level_index = new_index
        self.violation_streak = 0
        self.healthy_streak = 0
        entry = {
            "at_s": now_s,
            "from": previous,
            "to": new_index,
            "from_level": self.config.brownout_levels[previous].name,
            "to_level": self.config.brownout_levels[new_index].name,
        }
        self.transitions.append(entry)
        if self.tracer is not None:
            args = {k: v for k, v in entry.items() if k != "at_s"}
            self.tracer.instant(
                "brownout.level",
                ALERTS_TRACK,
                at_s=now_s,
                **args,
            )

    def state_dict(self) -> dict:
        return {
            "level_index": self.level_index,
            "violation_streak": self.violation_streak,
            "healthy_streak": self.healthy_streak,
            "transitions": [dict(t) for t in self.transitions],
            "window": list(self._window),
            "since_eval": self._since_eval,
            "level_seconds": list(self.level_seconds),
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {
            "level_index", "violation_streak", "healthy_streak",
            "transitions", "window", "since_eval", "level_seconds",
        }
        if unknown:
            raise CheckpointError(
                f"unknown brownout-controller fields: {sorted(unknown)}"
            )
        self.level_index = int(state["level_index"])
        self.violation_streak = int(state["violation_streak"])
        self.healthy_streak = int(state["healthy_streak"])
        self.transitions = [dict(t) for t in state["transitions"]]
        self._window = deque(
            (float(v) for v in state["window"]),
            maxlen=self.config.brownout_window,
        )
        self._since_eval = int(state["since_eval"])
        self.level_seconds = [float(v) for v in state["level_seconds"]]
