"""Overload-resilient online inference over the GIDS storage stack.

``repro serve`` drives the same sample→fetch→aggregate pipeline the
training loaders use, but per-request, against a seeded open-loop arrival
process — and wraps it in layered overload protection: admission control,
priority-aware load shedding, per-device circuit breakers, hedged storage
reads, and brownout quality degradation.  Everything runs in modeled time,
deterministic under a seed, and checkpoint/resume-safe.  See
``docs/SERVING.md``.
"""

from .admission import (
    ADMIT,
    REJECT_DEADLINE,
    REJECT_QUEUE,
    SHED,
    AdmissionController,
    TokenBucket,
)
from .arrival import ArrivalProcess, Request
from .breaker import (
    BREAKERS_TRACK,
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from .brownout import BrownoutController
from .config import (
    ARRIVAL_SHAPES,
    DEFAULT_BROWNOUT_LEVELS,
    PRIORITIES,
    ArrivalConfig,
    BrownoutLevel,
    ServingConfig,
)
from .hedging import HedgePolicy
from .report import ServingReport, ServingStats
from .server import SERVING_TRACK, InferenceServer

__all__ = [
    "ADMIT",
    "ARRIVAL_SHAPES",
    "BREAKERS_TRACK",
    "CLOSED",
    "DEFAULT_BROWNOUT_LEVELS",
    "HALF_OPEN",
    "OPEN",
    "PRIORITIES",
    "REJECT_DEADLINE",
    "REJECT_QUEUE",
    "SERVING_TRACK",
    "SHED",
    "AdmissionController",
    "ArrivalConfig",
    "ArrivalProcess",
    "BreakerBoard",
    "BrownoutController",
    "BrownoutLevel",
    "CircuitBreaker",
    "HedgePolicy",
    "InferenceServer",
    "Request",
    "ServingConfig",
    "ServingReport",
    "ServingStats",
    "TokenBucket",
]
