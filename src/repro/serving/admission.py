"""Admission control and load shedding for the serving front door.

Three gates run in order at each arrival, cheapest first:

1. **Token-bucket shedding with priority tiers.**  The bucket refills at a
   configured (or capacity-adaptive) rate; a request costs one token, and
   lower tiers need the bucket fuller than higher tiers — ``shed_reserve``
   of the depth is kept for more important traffic — so as load climbs past
   the refill rate, ``low`` sheds first, then ``normal``, and ``high`` only
   when the bucket is truly dry.
2. **Bounded queue.**  Overflow beyond ``queue_capacity`` is rejected
   outright; an unbounded queue is exactly the failure mode this layer
   exists to prevent.
3. **Deadline-aware early rejection.**  Using the running service-time
   estimate, a request whose *predicted* completion already misses its
   deadline is rejected at admission instead of doing the work and missing
   anyway (the wasted work would also delay everyone behind it).

Every verdict is counted, so the shed rate is a published metric.
"""

from __future__ import annotations

from ..errors import CheckpointError
from .config import PRIORITIES, ServingConfig

#: Admission verdicts.
ADMIT = "admit"
SHED = "shed"
REJECT_QUEUE = "reject_queue"
REJECT_DEADLINE = "reject_deadline"

#: EWMA smoothing for the service-time estimate.
_EWMA_ALPHA = 0.1


class TokenBucket:
    """Deterministic token bucket over modeled time, with tier reserves."""

    def __init__(
        self,
        rate: float | None,
        burst: float,
        reserve: float,
    ) -> None:
        self.rate = rate  # None = adaptive (set_rate called by the server)
        self.burst = float(burst)
        self.reserve = float(reserve)
        self.tokens = float(burst)
        self.last_refill_s = 0.0

    def set_rate(self, rate: float) -> None:
        """Update the refill rate (adaptive capacity tracking)."""
        self.rate = float(rate)

    def refill(self, now_s: float) -> None:
        if now_s <= self.last_refill_s:
            return
        if self.rate is not None:
            self.tokens = min(
                self.burst,
                self.tokens + self.rate * (now_s - self.last_refill_s),
            )
        self.last_refill_s = now_s

    def threshold(self, priority: int) -> float:
        """Bucket level required to admit the given tier.

        Tier 0 (``high``) needs one token; each lower tier additionally
        needs its share of the reserved headroom to still be present.
        """
        tiers = len(PRIORITIES)
        if tiers == 1:
            return 1.0
        depth = self.reserve * self.burst
        return 1.0 + depth * priority / (tiers - 1)

    def try_take(self, priority: int, now_s: float) -> bool:
        """Refill to ``now_s`` and take one token if the tier may."""
        self.refill(now_s)
        if self.rate is None:
            return True  # Adaptive bucket not calibrated yet: admit.
        if self.tokens < self.threshold(priority):
            return False
        self.tokens -= 1.0
        return True

    def state_dict(self) -> dict:
        return {
            "rate": self.rate,
            "tokens": self.tokens,
            "last_refill_s": self.last_refill_s,
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {"rate", "tokens", "last_refill_s"}
        if unknown:
            raise CheckpointError(
                f"unknown token-bucket fields: {sorted(unknown)}"
            )
        rate = state["rate"]
        self.rate = None if rate is None else float(rate)
        self.tokens = float(state["tokens"])
        self.last_refill_s = float(state["last_refill_s"])


class AdmissionController:
    """Applies the three admission gates and keeps the service estimate."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        self.bucket = TokenBucket(
            config.shed_rate, config.shed_burst, config.shed_reserve
        )
        #: EWMA of observed service times (None until the first completion).
        self.service_estimate_s: float | None = None

    def observe_service(self, service_s: float) -> None:
        """Fold one completed request's service time into the estimate."""
        if self.service_estimate_s is None:
            self.service_estimate_s = float(service_s)
        else:
            self.service_estimate_s += _EWMA_ALPHA * (
                float(service_s) - self.service_estimate_s
            )
        if self.config.shed_rate is None and self.service_estimate_s > 0:
            # Adaptive shedding: track measured capacity, admitting the
            # configured utilization of it.
            self.bucket.set_rate(
                self.config.shed_utilization / self.service_estimate_s
            )

    def decide(
        self,
        priority: int,
        arrival_s: float,
        deadline_s: float,
        queue_len: int,
        backlog_s: float,
    ) -> str:
        """Admission verdict for one arriving request.

        Args:
            priority: the request's tier index.
            arrival_s: its arrival time (modeled).
            deadline_s: its deadline, relative to arrival.
            queue_len: requests currently waiting.
            backlog_s: modeled time until the server frees up (current
                in-service remainder; the queued requests are costed from
                the service estimate).
        """
        if not self.bucket.try_take(priority, arrival_s):
            return SHED
        if queue_len >= self.config.queue_capacity:
            return REJECT_QUEUE
        estimate = self.service_estimate_s
        if estimate is not None:
            predicted_wait = backlog_s + queue_len * estimate
            predicted_latency = (
                predicted_wait * self.config.admission_safety + estimate
            )
            if predicted_latency > deadline_s:
                return REJECT_DEADLINE
        return ADMIT

    def state_dict(self) -> dict:
        return {
            "bucket": self.bucket.state_dict(),
            "service_estimate_s": self.service_estimate_s,
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {"bucket", "service_estimate_s"}
        if unknown:
            raise CheckpointError(
                f"unknown admission-controller fields: {sorted(unknown)}"
            )
        self.bucket.load_state_dict(state["bucket"])
        estimate = state["service_estimate_s"]
        self.service_estimate_s = (
            None if estimate is None else float(estimate)
        )
