"""Hedged storage reads: duplicate the stragglers, cap the amplification.

The classic tail-at-scale trick: when a storage read takes longer than the
p95 of recent reads, issue a duplicate and take whichever completes first.
A straggler caused by a transient tail spike finishes at roughly the hedge
point plus one *clean* service time, clipping the latency tail without
touching the median.

Amplification is bounded by a :class:`~repro.faults.retry.Budget` — the
same deadline-aware attempt-time arithmetic the training retry path uses.
The budget accrues ``hedge_budget_fraction`` of every request's base
storage time; a hedge spends the duplicate read's cost from it, so hedged
device time can never exceed the configured fraction of total device time
no matter how bursty the tail gets.
"""

from __future__ import annotations

from ..errors import CheckpointError
from ..faults.retry import Budget
from ..telemetry.metrics import Histogram
from .config import ServingConfig


class HedgePolicy:
    """Decides and accounts hedged reads for the serving storage path."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        #: Latency distribution of recent storage reads (log buckets; the
        #: p95 mark only needs bucket accuracy).
        self.latency = Histogram("serving.storage_read_s")
        self.budget = Budget(0.0)
        self.issued = 0
        self.won = 0

    @property
    def hedge_point_s(self) -> float | None:
        """Current hedge trigger (the configured latency quantile)."""
        if self.latency.count < self.config.hedge_min_samples:
            return None
        return self.latency.percentile(self.config.hedge_quantile)

    def maybe_hedge(
        self, read_latency_s: float, duplicate_cost_s: float
    ) -> float:
        """Return the (possibly improved) latency of one storage read.

        Args:
            read_latency_s: the primary read's modeled latency, tail
                included.
            duplicate_cost_s: modeled service time a duplicate read would
                take (the clean batch service time).
        """
        self.budget.grant(self.config.hedge_budget_fraction * duplicate_cost_s)
        point = self.hedge_point_s
        final = read_latency_s
        if (
            point is not None
            and read_latency_s > point
            and self.budget.try_spend(duplicate_cost_s)
        ):
            self.issued += 1
            hedged = point + duplicate_cost_s
            if hedged < final:
                self.won += 1
                final = hedged
        self.latency.observe(final)
        return final

    def state_dict(self) -> dict:
        return {
            "latency": self.latency.state_dict(),
            "budget": self.budget.state_dict(),
            "issued": self.issued,
            "won": self.won,
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {"latency", "budget", "issued", "won"}
        if unknown:
            raise CheckpointError(
                f"unknown hedge-policy fields: {sorted(unknown)}"
            )
        self.latency.load_state_dict(state["latency"])
        self.budget.load_state_dict(state["budget"])
        self.issued = int(state["issued"])
        self.won = int(state["won"])
