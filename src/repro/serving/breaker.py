"""Per-device circuit breakers over the faulty SSD array.

A read into a dropped-out device does not fail fast — it times out, and
under load those timeouts compound into exactly the tail blow-up the
serving SLO cannot afford.  Each device therefore gets a breaker:

* **closed** — reads flow to the device; page outcomes (served vs
  lost/timed-out) feed a sliding window, and when the window's failure
  ratio crosses the threshold the breaker **opens**.
* **open** — reads for the device skip storage entirely and go to the
  CPU-mirror fallback path, paying CPU-path bandwidth instead of a device
  timeout.  After a modeled cooldown the breaker goes **half-open**.
* **half-open** — a limited number of probe pages are let through; a
  failure re-opens (and restarts the cooldown), while ``probes``
  consecutive successes close the breaker again.

All transitions happen in modeled time, are recorded as telemetry instants
on the ``serving.breakers`` track, and live in ``state_dict`` so a
killed-and-resumed run replays bit-identical transitions.
"""

from __future__ import annotations

from collections import deque

from ..errors import CheckpointError, ServingError
from ..telemetry.tracks import BREAKERS_TRACK
from .config import ServingConfig

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

__all__ = ["BREAKERS_TRACK", "CLOSED", "OPEN", "HALF_OPEN",
           "CircuitBreaker", "BreakerBoard"]


class CircuitBreaker:
    """Sliding-window breaker for one device."""

    def __init__(self, device: int, config: ServingConfig) -> None:
        self.device = device
        self.config = config
        self.state = CLOSED
        #: Recent page outcomes, True = failure.
        self.window: deque[bool] = deque(maxlen=config.breaker_window)
        self.opened_at_s: float | None = None
        self.probe_successes = 0
        self.transitions: list[dict] = []

    def _transition(self, state: str, now_s: float, tracer=None) -> None:
        previous = self.state
        self.state = state
        entry = {
            "device": self.device,
            "at_s": now_s,
            "from": previous,
            "to": state,
        }
        self.transitions.append(entry)
        if tracer is not None:
            tracer.instant(
                f"breaker.{state}",
                BREAKERS_TRACK,
                at_s=now_s,
                device=self.device,
                previous=previous,
            )

    def allows_storage(self, now_s: float, tracer=None) -> bool:
        """May reads reach the device right now?  Advances open→half-open."""
        if self.state == OPEN:
            assert self.opened_at_s is not None
            if now_s - self.opened_at_s >= self.config.breaker_cooldown_s:
                self.probe_successes = 0
                self._transition(HALF_OPEN, now_s, tracer)
        return self.state != OPEN

    @property
    def failure_ratio(self) -> float:
        if not self.window:
            return 0.0
        return sum(self.window) / len(self.window)

    def record(
        self, n_ok: int, n_failed: int, now_s: float, tracer=None
    ) -> None:
        """Feed page outcomes for this device and run the state machine."""
        if n_ok < 0 or n_failed < 0:
            raise ServingError("outcome counts must be non-negative")
        if self.state == HALF_OPEN:
            if n_failed > 0:
                self.opened_at_s = now_s
                self._transition(OPEN, now_s, tracer)
                return
            self.probe_successes += n_ok
            if self.probe_successes >= self.config.breaker_probes:
                self.window.clear()
                self._transition(CLOSED, now_s, tracer)
            return
        if self.state != CLOSED:
            return
        self.window.extend([False] * n_ok + [True] * n_failed)
        if (
            len(self.window) >= self.config.breaker_min_samples
            and self.failure_ratio >= self.config.breaker_threshold
        ):
            self.opened_at_s = now_s
            self._transition(OPEN, now_s, tracer)

    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "window": [bool(b) for b in self.window],
            "opened_at_s": self.opened_at_s,
            "probe_successes": self.probe_successes,
            "transitions": [dict(t) for t in self.transitions],
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {
            "state", "window", "opened_at_s", "probe_successes",
            "transitions",
        }
        if unknown:
            raise CheckpointError(
                f"unknown breaker fields: {sorted(unknown)}"
            )
        self.state = str(state["state"])
        self.window = deque(
            (bool(b) for b in state["window"]),
            maxlen=self.config.breaker_window,
        )
        opened = state["opened_at_s"]
        self.opened_at_s = None if opened is None else float(opened)
        self.probe_successes = int(state["probe_successes"])
        self.transitions = [dict(t) for t in state["transitions"]]


class BreakerBoard:
    """One breaker per device of the array."""

    def __init__(self, num_devices: int, config: ServingConfig) -> None:
        if num_devices <= 0:
            raise ServingError("num_devices must be positive")
        self.breakers = tuple(
            CircuitBreaker(d, config) for d in range(num_devices)
        )

    def __getitem__(self, device: int) -> CircuitBreaker:
        return self.breakers[device]

    def __len__(self) -> int:
        return len(self.breakers)

    @property
    def open_count(self) -> int:
        return sum(1 for b in self.breakers if b.state != CLOSED)

    def transitions(self) -> list[dict]:
        """All transitions across devices, in modeled-time order."""
        merged = [
            t for breaker in self.breakers for t in breaker.transitions
        ]
        merged.sort(key=lambda t: (t["at_s"], t["device"]))
        return merged

    def state_dict(self) -> dict:
        return {
            "breakers": [b.state_dict() for b in self.breakers],
        }

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - {"breakers"}
        if unknown:
            raise CheckpointError(
                f"unknown breaker-board fields: {sorted(unknown)}"
            )
        entries = state["breakers"]
        if len(entries) != len(self.breakers):
            raise CheckpointError(
                f"checkpoint has {len(entries)} breakers, array has "
                f"{len(self.breakers)}"
            )
        for breaker, entry in zip(self.breakers, entries):
            breaker.load_state_dict(entry)
