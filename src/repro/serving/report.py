"""Serving-run accounting and the versioned run-export block.

:class:`ServingStats` is the front-door ledger — every offered request ends
in exactly one of ``admitted``/``shed``/``rejected``, per priority tier, and
:meth:`ServingStats.consistent` checks that invariant.  Admitted requests
are further partitioned into ``completed`` and ``expired`` (dropped at
dequeue because their deadline could no longer be met — serving them would
only delay everyone behind them).  :class:`ServingReport`
adds the latency record of admitted requests (exact, per-request — serving
percentiles gate SLOs, so bucket-approximate percentiles are not enough) and
flattens everything into the ``serving`` block of the versioned run export.
"""

from __future__ import annotations

from ..errors import CheckpointError, ServingError
from ..pipeline.export import _finite
from ..utils import package_version
from .config import PRIORITIES

#: Ledger fields counted per priority tier.
_TIER_FIELDS = (
    "offered",
    "admitted",
    "shed",
    "rejected_queue",
    "rejected_deadline",
    "expired",
    "completed",
    "deadline_met",
    "deadline_missed",
)


def _percentile(values: list[float], p: float) -> float | None:
    """Nearest-rank percentile, exact; ``None`` on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class ServingStats:
    """Per-tier request ledger for one serving run."""

    def __init__(self) -> None:
        tiers = len(PRIORITIES)
        for name in _TIER_FIELDS:
            setattr(self, name, [0] * tiers)

    def count(self, field: str, priority: int) -> None:
        getattr(self, field)[priority] += 1

    def total(self, field: str) -> int:
        return sum(getattr(self, field))

    @property
    def rejected(self) -> list[int]:
        return [
            q + d
            for q, d in zip(self.rejected_queue, self.rejected_deadline)
        ]

    def consistent(self) -> bool:
        """Every offered request was admitted, shed, or rejected."""
        return all(
            o == a + s + r
            for o, a, s, r in zip(
                self.offered, self.admitted, self.shed, self.rejected
            )
        )

    @property
    def shed_fraction(self) -> float:
        offered = self.total("offered")
        return self.total("shed") / offered if offered else 0.0

    def to_dict(self) -> dict:
        block = {}
        for name in _TIER_FIELDS:
            values = getattr(self, name)
            block[name] = {
                "total": sum(values),
                "by_priority": dict(zip(PRIORITIES, values)),
            }
        block["rejected"] = {
            "total": sum(self.rejected),
            "by_priority": dict(zip(PRIORITIES, self.rejected)),
        }
        return block

    def state_dict(self) -> dict:
        return {name: list(getattr(self, name)) for name in _TIER_FIELDS}

    def load_state_dict(self, state: dict) -> None:
        unknown = set(state) - set(_TIER_FIELDS)
        if unknown:
            raise CheckpointError(
                f"unknown serving-stats fields: {sorted(unknown)}"
            )
        for name in _TIER_FIELDS:
            values = [int(v) for v in state[name]]
            if len(values) != len(PRIORITIES):
                raise CheckpointError(
                    f"serving-stats field {name!r} has {len(values)} tiers, "
                    f"expected {len(PRIORITIES)}"
                )
            setattr(self, name, values)


class ServingReport:
    """Everything :meth:`~repro.serving.server.InferenceServer.report`
    knows about a finished (or in-flight) serving run."""

    def __init__(
        self,
        *,
        stats: ServingStats,
        latencies: list[float],
        latency_priorities: list[int],
        deadline_flags: list[bool],
        protection: bool,
        arrival: dict,
        slo_p99_s: float,
        duration_s: float,
        busy_s: float,
        stage_seconds: dict,
        counters,
        degraded_requests: int,
        stale_requests: int,
        stale_pages: int,
        hedge: dict,
        breaker_transitions: list[dict],
        breaker_open_count: int,
        brownout_transitions: list[dict],
        brownout_level_seconds: list[float],
        brownout_level_names: list[str],
    ) -> None:
        self.stats = stats
        self.latencies = latencies
        self.latency_priorities = latency_priorities
        self.deadline_flags = deadline_flags
        self.protection = protection
        self.arrival = arrival
        self.slo_p99_s = slo_p99_s
        self.duration_s = duration_s
        self.busy_s = busy_s
        self.stage_seconds = stage_seconds
        self.counters = counters
        self.degraded_requests = degraded_requests
        self.stale_requests = stale_requests
        self.stale_pages = stale_pages
        self.hedge = hedge
        self.breaker_transitions = breaker_transitions
        self.breaker_open_count = breaker_open_count
        self.brownout_transitions = brownout_transitions
        self.brownout_level_seconds = brownout_level_seconds
        self.brownout_level_names = brownout_level_names

    # ------------------------------------------------------------------
    # Derived quantities

    def latency_percentile(self, p: float) -> float | None:
        """Exact latency percentile over admitted completed requests."""
        return _percentile(self.latencies, p)

    def priority_deadline_misses(self, priority: int) -> int:
        return self.stats.deadline_missed[priority]

    @property
    def goodput_req_s(self) -> float:
        """Deadline-meeting completions per modeled second."""
        if self.duration_s <= 0:
            return 0.0
        return self.stats.total("deadline_met") / self.duration_s

    @property
    def capacity_req_s(self) -> float:
        """Completions per busy second — the service rate the stack
        sustains when it never waits for work."""
        if self.busy_s <= 0:
            return 0.0
        return self.stats.total("completed") / self.busy_s

    @property
    def degraded_fraction(self) -> float:
        completed = self.stats.total("completed")
        return self.degraded_requests / completed if completed else 0.0

    # ------------------------------------------------------------------
    # Export

    def to_dict(self) -> dict:
        """The ``serving`` block of the versioned run export."""
        if not self.stats.consistent():
            raise ServingError(
                "serving ledger is inconsistent: "
                "offered != admitted + shed + rejected"
            )
        return {
            "protection": self.protection,
            "arrival": dict(self.arrival),
            "slo_p99_s": self.slo_p99_s,
            "duration_s": _finite(self.duration_s),
            "busy_s": _finite(self.busy_s),
            "requests": self.stats.to_dict(),
            "shed_fraction": _finite(self.stats.shed_fraction),
            "goodput_req_s": _finite(self.goodput_req_s),
            "capacity_req_s": _finite(self.capacity_req_s),
            "latency_s": {
                "count": len(self.latencies),
                "p50": _finite(self.latency_percentile(50)),
                "p95": _finite(self.latency_percentile(95)),
                "p99": _finite(self.latency_percentile(99)),
                "max": _finite(max(self.latencies))
                if self.latencies
                else None,
            },
            "degraded": {
                "requests": self.degraded_requests,
                "fraction": _finite(self.degraded_fraction),
                "stale_requests": self.stale_requests,
                "stale_pages": self.stale_pages,
            },
            "hedge": dict(self.hedge),
            "breakers": {
                "open_count": self.breaker_open_count,
                "transitions": [dict(t) for t in self.breaker_transitions],
            },
            "brownout": {
                "levels": list(self.brownout_level_names),
                "level_seconds": [
                    _finite(s) for s in self.brownout_level_seconds
                ],
                "transitions": [
                    dict(t) for t in self.brownout_transitions
                ],
            },
        }

    def export_dict(
        self,
        *,
        tracer=None,
        system=None,
        alerts=None,
        storage_ha=None,
        observability=None,
    ) -> dict:
        """Full versioned run-report document for this serving run.

        Shaped like :func:`repro.pipeline.export.report_to_dict` output —
        same required keys — so ``repro analyze``, ``validate_summary``
        and the history tooling accept serving exports unchanged.
        """
        # Local import: pipeline.export ↔ observatory already share a
        # deferred-import seam; serving joins it on the same side.
        from ..observatory.attribution import (
            attribute_summary,
            system_spec_block,
        )
        from ..pipeline.export import EXPORT_SCHEMA_VERSION

        counters = self.counters
        completed = self.stats.total("completed")
        telemetry = None
        if tracer is not None and getattr(tracer, "enabled", True):
            telemetry = tracer.export_block()
        summary = {
            "schema_version": EXPORT_SCHEMA_VERSION,
            "repro_version": package_version(),
            "loader": "GIDS-serve",
            "iterations": completed,
            "overlapped": False,
            "e2e_seconds": _finite(self.duration_s),
            "seconds_per_iteration": _finite(
                self.duration_s / completed if completed else None
            ),
            "stage_seconds": {
                stage: _finite(self.stage_seconds.get(stage, 0.0))
                for stage in (
                    "sampling", "aggregation", "transfer", "training"
                )
            },
            "counters": {
                "storage_requests": counters.storage_requests,
                "storage_bytes": counters.storage_bytes,
                "cpu_buffer_requests": counters.cpu_buffer_requests,
                "cpu_buffer_bytes": counters.cpu_buffer_bytes,
                "gpu_cache_hits": counters.gpu_cache_hits,
                "gpu_cache_bytes": counters.gpu_cache_bytes,
                "page_faults": counters.page_faults,
                "page_cache_hits": counters.page_cache_hits,
            },
            "faults": {
                "injected_faults": counters.injected_faults,
                "storage_retries": counters.storage_retries,
                "latency_spikes": counters.latency_spikes,
                "fallback_requests": counters.fallback_requests,
                "fallback_bytes": counters.fallback_bytes,
                "fallback_fraction": _finite(counters.fallback_fraction),
                "retry_timeouts": counters.retry_timeouts,
                "replica_redirects": counters.replica_redirects,
                "parity_reconstructs": counters.parity_reconstructs,
                "reconstruct_reads": counters.reconstruct_reads,
                "rebuild_pages": counters.rebuild_pages,
            },
            "gpu_cache_hit_ratio": _finite(counters.gpu_cache_hit_ratio),
            "redirect_fraction": _finite(counters.redirect_fraction),
            "checkpoint_summary": None,
            "telemetry": telemetry,
            "attribution": None,
            "alerts": alerts,
            "serving": self.to_dict(),
            "storage_ha": storage_ha,
            "observability": observability,
        }
        if system is not None:
            summary["attribution"] = attribute_summary(
                summary, system_spec_block(system)
            )
        return summary
