"""Caching tiers used by the dataloaders.

* :class:`GPUSoftwareCache` — BaM's application-defined software cache in
  GPU memory, with random eviction by default and the pinnable "USE" state
  that GIDS's window buffering drives (Section 3.4).
* :class:`BeladyCache` — look-ahead optimal eviction, the policy Ginex runs
  on the CPU with super-batch samples (Section 5).
* :class:`ConstantCPUBuffer` — the static hot-node buffer pinned in CPU
  memory (Section 3.3).
"""

from .base import CacheStats
from .gpu_cache import GPUSoftwareCache
from .belady import BeladyCache
from .cpu_buffer import ConstantCPUBuffer

__all__ = [
    "CacheStats",
    "GPUSoftwareCache",
    "BeladyCache",
    "ConstantCPUBuffer",
]
