"""BaM-style GPU software-defined cache with pinnable lines.

The cache stores feature pages in GPU memory and, unlike a hardware cache,
exposes its eviction machinery to the application (Section 3.4).  Two pieces
of state implement GIDS's window buffering:

* a *future-reuse counter* per resident line — while positive, the line is in
  the "USE" state and cannot be evicted; each access decrements it and the
  line returns to "Safe to Evict" at zero;
* a side table of future-reuse counts for pages that are *not yet* resident,
  so a line admitted on miss starts out pinned if the window buffer already
  knows it will be reused.

With no registered future reuse the cache degenerates to plain BaM behavior:
random eviction over all resident lines (the Fig. 11 depth-0 baseline).
"""

from __future__ import annotations

import numpy as np

from ..errors import CheckpointError, ConfigError
from ..utils import as_rng
from .base import CacheStats

#: Supported eviction policies for the unpinned population.
_POLICIES = ("random", "lru")


class GPUSoftwareCache:
    """A fully associative page cache with pinning and random/LRU eviction.

    Args:
        capacity_lines: resident page capacity (0 disables caching).
        policy: ``"random"`` (BaM default) or ``"lru"`` (ablation arm).
        seed: RNG for random eviction.
    """

    def __init__(
        self,
        capacity_lines: int,
        *,
        policy: str = "random",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if capacity_lines < 0:
            raise ConfigError("capacity must be non-negative")
        if policy not in _POLICIES:
            raise ConfigError(
                f"unknown eviction policy {policy!r}; expected one of {_POLICIES}"
            )
        self.capacity_lines = capacity_lines
        self.policy = policy
        self._rng = as_rng(seed)
        self.stats = CacheStats()
        #: Optional telemetry tracer (attached by the owning loader, never
        #: checkpointed here — the loader snapshots it).  Only consulted at
        #: request detail, so untraced caches pay one ``is None`` check per
        #: eviction.
        self.tracer = None

        # page -> future reuse counter, resident pages only.
        self._reuse: dict[int, int] = {}
        # Pages not resident but already known to be reused soon.
        self._pending: dict[int, int] = {}
        # Evictable (reuse == 0) resident pages.  For "random": list +
        # position map for O(1) swap-remove; for "lru": insertion-ordered
        # dict (Python dicts preserve order; re-inserting refreshes recency).
        self._evictable_list: list[int] = []
        self._evictable_pos: dict[int, int] = {}
        self._lru: dict[int, None] = {}

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self._reuse)

    def __contains__(self, page: int) -> bool:
        return page in self._reuse

    @property
    def num_pinned(self) -> int:
        """Resident lines currently in the "USE" state."""
        return len(self._reuse) - self._num_evictable

    @property
    def _num_evictable(self) -> int:
        if self.policy == "random":
            return len(self._evictable_list)
        return len(self._lru)

    def pending_reuse(self, page: int) -> int:
        """Outstanding future-reuse count for ``page`` (resident or not)."""
        if page in self._reuse:
            return self._reuse[page]
        return self._pending.get(page, 0)

    # ------------------------------------------------------------------
    # Evictable-set maintenance

    def _mark_evictable(self, page: int) -> None:
        if self.policy == "random":
            self._evictable_pos[page] = len(self._evictable_list)
            self._evictable_list.append(page)
        else:
            self._lru[page] = None

    def _unmark_evictable(self, page: int) -> None:
        if self.policy == "random":
            pos = self._evictable_pos.pop(page)
            last = self._evictable_list.pop()
            if last != page:
                self._evictable_list[pos] = last
                self._evictable_pos[last] = pos
        else:
            del self._lru[page]

    def _touch(self, page: int) -> None:
        """Refresh recency for LRU; no-op under random eviction."""
        if self.policy == "lru" and page in self._lru:
            del self._lru[page]
            self._lru[page] = None

    def _pick_victim(self) -> int | None:
        if self.policy == "random":
            if not self._evictable_list:
                return None
            idx = int(self._rng.integers(len(self._evictable_list)))
            return self._evictable_list[idx]
        if not self._lru:
            return None
        return next(iter(self._lru))

    def _evict(self, page: int) -> None:
        self._unmark_evictable(page)
        del self._reuse[page]
        self.stats.evictions += 1
        tracer = self.tracer
        if tracer is not None and tracer.want_request_detail:
            tracer.instant("cache.evict", "gpu.cache", page=page)

    # ------------------------------------------------------------------
    # Window-buffer interface

    def register_future(self, pages: np.ndarray) -> None:
        """Record one upcoming use of each page in ``pages``.

        Called by the window buffer when a freshly sampled iteration enters
        the look-ahead window.  Resident pages move to (or stay in) the
        "USE" state; non-resident pages remember the count so they pin on
        admission.
        """
        reuse = self._reuse
        pending = self._pending
        for page in pages:
            page = int(page)
            if page in reuse:
                if reuse[page] == 0:
                    self._unmark_evictable(page)
                reuse[page] += 1
            else:
                pending[page] = pending.get(page, 0) + 1

    def forget_future(self, pages: np.ndarray) -> None:
        """Reverse :meth:`register_future` for pages that will not be used.

        Needed when a window entry is dropped unconsumed (end of epoch).
        """
        reuse = self._reuse
        pending = self._pending
        for page in pages:
            page = int(page)
            if page in reuse:
                if reuse[page] > 0:
                    reuse[page] -= 1
                    if reuse[page] == 0:
                        self._mark_evictable(page)
            elif page in pending:
                if pending[page] <= 1:
                    del pending[page]
                else:
                    pending[page] -= 1

    # ------------------------------------------------------------------
    # Access path

    def access(self, pages: np.ndarray) -> np.ndarray:
        """Look up ``pages``; admit misses; return a boolean hit mask.

        Every access consumes one unit of the page's future-reuse counter
        (the unit registered when this iteration entered the window); a line
        whose counter reaches zero returns to the evictable population.
        Misses evict a victim chosen by the configured policy among
        *unpinned* lines; if every line is pinned the miss is streamed
        through without admission (counted as a bypass).
        """
        pages = np.asarray(pages, dtype=np.int64)
        hit_mask = np.zeros(len(pages), dtype=bool)
        if self.capacity_lines == 0:
            self.stats.misses += len(pages)
            self.stats.bypasses += len(pages)
            # Streamed pages still consume their registered reuse unit.
            for page in pages:
                self._consume_pending(int(page))
            return hit_mask

        reuse = self._reuse
        for i, page in enumerate(pages):
            page = int(page)
            if page in reuse:
                hit_mask[i] = True
                self.stats.hits += 1
                count = reuse[page]
                if count > 0:
                    reuse[page] = count - 1
                    if count == 1:
                        self._mark_evictable(page)
                self._touch(page)
            else:
                self.stats.misses += 1
                self._admit(page)
        return hit_mask

    def _consume_pending(self, page: int) -> None:
        pending = self._pending
        if page in pending:
            if pending[page] <= 1:
                del pending[page]
            else:
                pending[page] -= 1

    def _admit(self, page: int) -> None:
        """Insert ``page`` after a miss, evicting if necessary."""
        count = self._pending.pop(page, 0)
        if count > 0:
            count -= 1  # The current access consumes one registered unit.
        if len(self._reuse) >= self.capacity_lines:
            victim = self._pick_victim()
            if victim is None:
                # Every line pinned: stream the page without caching.
                self.stats.bypasses += 1
                if count > 0:
                    self._pending[page] = count
                return
            self._evict(victim)
        self._reuse[page] = count
        if count == 0:
            self._mark_evictable(page)

    def invalidate(self, pages: np.ndarray) -> int:
        """Drop resident lines whose bytes are no longer trusted.

        The integrity layer calls this when verification condemns a page
        *after* :meth:`access` admitted it: a quarantined page must not be
        served from the cache.  Outstanding future-reuse counts move back
        to the pending table so the window buffer's bookkeeping stays
        balanced — when the page is re-requested it simply misses again.
        Returns the number of lines actually dropped.  Not a policy
        eviction: the eviction counter and RNG are untouched.
        """
        dropped = 0
        for page in pages:
            page = int(page)
            if page not in self._reuse:
                continue
            count = self._reuse.pop(page)
            if count == 0:
                self._unmark_evictable(page)
            else:
                self._pending[page] = self._pending.get(page, 0) + count
            dropped += 1
            tracer = self.tracer
            if tracer is not None and tracer.want_request_detail:
                tracer.instant("cache.invalidate", "gpu.cache", page=page)
        return dropped

    # ------------------------------------------------------------------

    def warm(self, pages: np.ndarray) -> None:
        """Pre-populate the cache without touching statistics."""
        saved = CacheStats(
            hits=self.stats.hits,
            misses=self.stats.misses,
            evictions=self.stats.evictions,
            bypasses=self.stats.bypasses,
        )
        self.access(pages)
        self.stats = saved

    def state_dict(self) -> dict:
        """Full snapshot: residency, pinning, eviction order, RNG, stats.

        Captures everything needed for a resumed run to make bit-identical
        eviction decisions: the reuse/pending counters, the evictable
        population in its exact order (which the random policy indexes into
        and the LRU policy reads recency from), and the eviction RNG state.
        """
        return {
            "policy": self.policy,
            "capacity_lines": self.capacity_lines,
            "rng": self._rng.bit_generator.state,
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "bypasses": self.stats.bypasses,
            },
            "reuse": dict(self._reuse),
            "pending": dict(self._pending),
            "evictable": list(self._evictable_list),
            "lru": list(self._lru),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        if state.get("policy") != self.policy:
            raise CheckpointError(
                f"checkpoint eviction policy {state.get('policy')!r} does "
                f"not match cache policy {self.policy!r}"
            )
        if state.get("capacity_lines") != self.capacity_lines:
            raise CheckpointError(
                f"checkpoint cache capacity {state.get('capacity_lines')} "
                f"does not match configured {self.capacity_lines}"
            )
        self._rng.bit_generator.state = state["rng"]
        stats = state["stats"]
        self.stats = CacheStats(
            hits=int(stats["hits"]),
            misses=int(stats["misses"]),
            evictions=int(stats["evictions"]),
            bypasses=int(stats["bypasses"]),
        )
        self._reuse = {int(k): int(v) for k, v in state["reuse"].items()}
        self._pending = {int(k): int(v) for k, v in state["pending"].items()}
        self._evictable_list = [int(p) for p in state["evictable"]]
        self._evictable_pos = {
            page: pos for pos, page in enumerate(self._evictable_list)
        }
        self._lru = {int(p): None for p in state["lru"]}
        self.check_invariants()

    def check_invariants(self) -> None:
        """Raise if internal bookkeeping is inconsistent (used by tests)."""
        if len(self._reuse) > self.capacity_lines:
            raise AssertionError("resident lines exceed capacity")
        evictable = (
            set(self._evictable_list)
            if self.policy == "random"
            else set(self._lru)
        )
        for page in evictable:
            if page not in self._reuse:
                raise AssertionError(f"evictable page {page} not resident")
            if self._reuse[page] != 0:
                raise AssertionError(f"evictable page {page} is pinned")
        for page, count in self._reuse.items():
            if count < 0:
                raise AssertionError(f"negative reuse counter on {page}")
            if count == 0 and page not in evictable:
                raise AssertionError(f"unpinned page {page} not evictable")
        for page, count in self._pending.items():
            if count <= 0:
                raise AssertionError(f"non-positive pending count on {page}")
            if page in self._reuse:
                raise AssertionError(f"pending entry for resident page {page}")
        if self.policy == "random":
            if len(self._evictable_list) != len(self._evictable_pos):
                raise AssertionError("evictable list/pos size mismatch")
            for page, pos in self._evictable_pos.items():
                if self._evictable_list[pos] != page:
                    raise AssertionError("evictable position map corrupted")
