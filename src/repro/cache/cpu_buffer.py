"""Constant CPU buffer: hot node features pinned in CPU memory.

GIDS reserves a user-configurable slice of CPU memory and fills it once with
the feature vectors of the hottest nodes — by default those with the highest
weighted reverse PageRank (Section 3.3).  Accesses to resident nodes are
redirected from the SSD to CPU DRAM over PCIe, raising effective aggregation
bandwidth whenever the SSD array alone cannot fill the link.  The buffer is
*static*: contents never change during training, so lookup is a single
boolean gather.
"""

from __future__ import annotations

import numpy as np

from ..errors import CapacityError, CheckpointError, ConfigError


class ConstantCPUBuffer:
    """A static node-feature buffer resident in CPU memory.

    Args:
        num_nodes: node count of the graph (lookup table size).
        feature_bytes: bytes per node feature vector.
        capacity_bytes: CPU memory reserved for the buffer.
        hot_nodes: node ids sorted hottest-first; the prefix that fits is
            pinned.  Pass an empty array for a disabled buffer.
    """

    def __init__(
        self,
        num_nodes: int,
        feature_bytes: int,
        capacity_bytes: float,
        hot_nodes: np.ndarray,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if feature_bytes <= 0:
            raise ConfigError("feature_bytes must be positive")
        if capacity_bytes < 0:
            raise ConfigError("capacity must be non-negative")
        hot_nodes = np.asarray(hot_nodes, dtype=np.int64)
        if len(hot_nodes) and (
            hot_nodes.min() < 0 or hot_nodes.max() >= num_nodes
        ):
            raise ConfigError(f"hot node ids must lie in [0, {num_nodes})")
        if len(np.unique(hot_nodes)) != len(hot_nodes):
            raise ConfigError("hot node ranking contains duplicates")

        self.num_nodes = num_nodes
        self.feature_bytes = feature_bytes
        self.capacity_bytes = float(capacity_bytes)
        max_resident = int(capacity_bytes // feature_bytes)
        self._resident_ids = hot_nodes[:max_resident]
        self._resident = np.zeros(num_nodes, dtype=bool)
        self._resident[self._resident_ids] = True
        if self.used_bytes > self.capacity_bytes:
            raise CapacityError("constant CPU buffer exceeded its capacity")

    @property
    def num_resident(self) -> int:
        return len(self._resident_ids)

    @property
    def used_bytes(self) -> int:
        return self.num_resident * self.feature_bytes

    @property
    def resident_ids(self) -> np.ndarray:
        """Node ids pinned in the buffer (read-only view)."""
        view = self._resident_ids.view()
        view.flags.writeable = False
        return view

    def state_dict(self) -> dict:
        """Snapshot of the pinned-node set.

        The buffer is static, so the snapshot exists for *validation*: a
        resumed run rebuilt from the same configuration must pin exactly the
        same nodes, otherwise redirect decisions (and therefore every modeled
        time downstream) would silently diverge.
        """
        return {
            "num_nodes": self.num_nodes,
            "feature_bytes": self.feature_bytes,
            "resident_ids": self._resident_ids.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Check a snapshot against this buffer's (reconstructed) contents."""
        if state.get("num_nodes") != self.num_nodes or state.get(
            "feature_bytes"
        ) != self.feature_bytes:
            raise CheckpointError("CPU buffer geometry does not match checkpoint")
        restored = np.asarray(state["resident_ids"], dtype=np.int64)
        if not np.array_equal(restored, self._resident_ids):
            raise CheckpointError(
                "CPU buffer hot-node set does not match the checkpoint; "
                "the loader was rebuilt with a different configuration"
            )

    def contains(self, node_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``node_ids`` are served from the buffer."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) and (
            node_ids.min() < 0 or node_ids.max() >= self.num_nodes
        ):
            raise ConfigError(f"node ids must lie in [0, {self.num_nodes})")
        return self._resident[node_ids]
