"""Belady (optimal look-ahead) cache, as used by Ginex.

Ginex samples a *super-batch* of mini-batches up front, which makes the full
future access sequence within the super-batch known; it then evicts the
resident page whose next use is farthest away — Belady's provably optimal
policy (Section 5 of the GIDS paper; Park et al., VLDB'22).  Cache contents
persist across super-batches; uses beyond the current super-batch horizon are
treated as "never".
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import ConfigError
from .base import CacheStats

#: Sentinel "never used again" position.
_NEVER = np.iinfo(np.int64).max


class BeladyCache:
    """Optimal-eviction page cache over super-batch access sequences."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ConfigError("capacity must be non-negative")
        self.capacity_pages = capacity_pages
        self.stats = CacheStats()
        # page -> next use position (within the current super-batch frame).
        self._next_use: dict[int, int] = {}
        # Lazy max-heap of (-next_use, page); stale entries are skipped.
        self._heap: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._next_use)

    def __contains__(self, page: int) -> bool:
        return page in self._next_use

    def process_superbatch(self, accesses: np.ndarray) -> tuple[int, int]:
        """Run one super-batch of page accesses through the cache.

        Args:
            accesses: page ids in access order (the concatenation of the
                super-batch's per-iteration unique page lists).

        Returns:
            ``(hits, misses)`` for this super-batch.
        """
        accesses = np.asarray(accesses, dtype=np.int64)
        n = len(accesses)
        if n == 0:
            return 0, 0
        if self.capacity_pages == 0:
            self.stats.misses += n
            self.stats.bypasses += n
            return 0, n

        next_use = _next_use_positions(accesses)
        # Pages carried over from the previous super-batch get their first
        # position in this one (or "never").
        unique_pages, first_idx = np.unique(accesses, return_index=True)
        first_pos = dict(
            zip(unique_pages.tolist(), first_idx.tolist())
        )
        for page in list(self._next_use):
            self._next_use[page] = first_pos.get(page, _NEVER)
            heapq.heappush(self._heap, (-self._next_use[page], page))

        hits = 0
        misses = 0
        for i in range(n):
            page = int(accesses[i])
            nxt = int(next_use[i])
            if page in self._next_use:
                hits += 1
                self._next_use[page] = nxt
                heapq.heappush(self._heap, (-nxt, page))
            else:
                misses += 1
                if len(self._next_use) >= self.capacity_pages:
                    self._evict_farthest()
                self._next_use[page] = nxt
                heapq.heappush(self._heap, (-nxt, page))
        self.stats.hits += hits
        self.stats.misses += misses
        return hits, misses

    def _evict_farthest(self) -> None:
        """Evict the resident page with the farthest (or no) next use."""
        while self._heap:
            neg_next, page = heapq.heappop(self._heap)
            current = self._next_use.get(page)
            if current is not None and current == -neg_next:
                del self._next_use[page]
                self.stats.evictions += 1
                return
        raise AssertionError("eviction requested from an empty cache")


def _next_use_positions(accesses: np.ndarray) -> np.ndarray:
    """For each position, the next position of the same page (or NEVER).

    Vectorized: a stable sort by page groups equal pages with ascending
    positions, so each element's successor within its group is its next use.
    """
    n = len(accesses)
    next_use = np.full(n, _NEVER, dtype=np.int64)
    if n == 0:
        return next_use
    order = np.argsort(accesses, kind="stable")
    sorted_pages = accesses[order]
    same_as_next = sorted_pages[:-1] == sorted_pages[1:]
    next_use[order[:-1][same_as_next]] = order[1:][same_as_next]
    return next_use
