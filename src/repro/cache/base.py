"""Shared cache statistics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss accounting common to every cache tier.

    ``bypasses`` counts accesses that missed *and* could not be admitted
    (every line pinned) — those are streamed straight to the consumer
    without ever becoming resident.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
