"""Lazy per-page digests over the ground-truth feature table.

The GIDS read path moves millions of 4 KB pages per second from consumer
SSDs straight into GPU memory — exactly the traffic profile where a silent
bit error corrupts training instead of crashing it.  The defense is a
per-page digest: every page of the (conceptual) feature table has a
CRC32C-style checksum that the verify-on-read path and the background
scrubber compare device bytes against.

At paper scale the digest table itself would be gigabytes, so digests are
*lazy*: nothing is computed until a page is first verified, and the memo is
bounded.  Synthetic stores re-derive page bytes from the splitmix64
generator (zero resident memory); materialized stores hash the array slice.
Either way :meth:`~repro.storage.feature_store.FeatureStore.page_payload`
is the single source of ground truth, so the digest of a page is a pure
function of the store configuration — two processes (or a killed-and-
resumed run) always agree without shipping digest state around.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import IntegrityError
from ..storage.feature_store import FeatureStore

#: Default bound on memoized digests (4-byte digests; 1M entries ~ a few
#: tens of MB of dict overhead, far below one second of page traffic).
DEFAULT_MAX_CACHED = 1_000_000


class PageChecksummer:
    """Computes and memoizes per-page CRC32 digests of a feature store.

    Args:
        store: the ground-truth feature table.
        max_cached: digest memo bound; once full, the memo stops growing
            and further digests are recomputed on demand (correctness is
            unaffected — digests are pure functions of the store).
    """

    def __init__(
        self, store: FeatureStore, *, max_cached: int = DEFAULT_MAX_CACHED
    ) -> None:
        if max_cached < 0:
            raise IntegrityError("max_cached must be non-negative")
        self.store = store
        self.max_cached = max_cached
        self._memo: dict[int, int] = {}
        self.computed = 0  # digests computed from payload (memo misses)

    @property
    def total_pages(self) -> int:
        return self.store.layout.total_pages

    def __len__(self) -> int:
        return len(self._memo)

    def digest(self, page_id: int) -> int:
        """The uint32 digest of page ``page_id`` (memoized)."""
        page_id = int(page_id)
        cached = self._memo.get(page_id)
        if cached is not None:
            return cached
        value = zlib.crc32(self.store.page_payload(page_id).tobytes())
        self.computed += 1
        if len(self._memo) < self.max_cached:
            self._memo[page_id] = value
        return value

    def digests(self, pages: np.ndarray) -> np.ndarray:
        """Vector of digests for ``pages`` (uint32, in order)."""
        pages = np.asarray(pages, dtype=np.int64)
        return np.fromiter(
            (self.digest(p) for p in pages), dtype=np.uint32, count=len(pages)
        )

    def verify_payload(self, page_id: int, payload: np.ndarray) -> bool:
        """Whether ``payload`` matches the ground-truth digest of the page.

        This is the *actual* comparison the modeled verify path stands in
        for; tests use it to prove the digest catches every single-bit
        flip (CRC32 detects all 1-bit and 2-bit errors at this page size).
        """
        payload = np.asarray(payload, dtype=np.uint8)
        if len(payload) != self.store.layout.page_bytes:
            raise IntegrityError(
                f"payload must be exactly {self.store.layout.page_bytes} "
                f"bytes, got {len(payload)}"
            )
        return zlib.crc32(payload.tobytes()) == self.digest(page_id)
