"""End-to-end data integrity for the storage-backed feature path.

The GIDS access pattern — millions of GPU-initiated 4 KB reads per second
against consumer SSDs — is exactly where silent bit errors and torn reads
go unnoticed: a flipped bit in a feature vector corrupts training instead
of crashing it.  This package closes that exposure:

* :class:`PageChecksummer` — lazy CRC32 digests of every feature page,
  re-derivable from the ground-truth store (synthetic pages re-hash the
  splitmix64 generator's output; materialized pages hash the array slice);
* :class:`CorruptionLedger` — per-device detected/repaired/unrepairable
  accounting plus the page quarantine set, checkpointable bit-exactly;
* :class:`ReadVerifier` — the ``verify_reads="off"|"sample"|"full"``
  policy: digest checks on storage-served pages, bounded re-read repair in
  modeled time, fallback to the CPU mirror and quarantine when the device
  copy is poisoned;
* :class:`Scrubber` — a modeled-time background sweep that finds and
  rewrites poisoned pages under an idle-IOPS budget.

Corrupt bytes enter through the fault subsystem
(:class:`~repro.faults.plan.FaultPlan` bit-flip/torn-read rates and
device-scoped :class:`~repro.faults.plan.CorruptionEvent` storms); this
package is the matching defense.
"""

from .checksum import PageChecksummer
from .ledger import CorruptionLedger
from .scrubber import ScrubOutcome, Scrubber
from .verifier import (
    VERIFY_BANDWIDTH_BYTES_PER_S,
    VERIFY_MODES,
    ReadVerifier,
    VerifyOutcome,
)

__all__ = [
    "VERIFY_BANDWIDTH_BYTES_PER_S",
    "VERIFY_MODES",
    "CorruptionLedger",
    "PageChecksummer",
    "ReadVerifier",
    "ScrubOutcome",
    "Scrubber",
    "VerifyOutcome",
]
