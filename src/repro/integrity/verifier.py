"""The verify-on-read policy: detect, repair, quarantine.

Every page a loader serves from storage can be checked against its
ground-truth digest.  Three modes trade confidence for modeled overhead:

* ``"off"`` — nothing is verified; corrupt bytes flow through to the model
  (this is the exposure the integrity layer exists to close, kept as an
  explicit mode so benchmarks can measure what detection costs and tests
  can prove the injected corruption does real damage);
* ``"sample"`` — each storage-served page is verified with probability
  ``sample_rate`` (seeded, checkpointable draws);
* ``"full"`` — every storage-served page is verified; no corrupt page can
  reach the model undetected.

A detected mismatch is repaired by bounded re-read: transient corruption
(an in-flight bit flip, a torn read racing a write) heals on the first
re-read; persistent corruption (storm-poisoned media) never does, so after
``max_rereads`` attempts the page is served from the fallback tier (the
constant CPU buffer mirror / ground-truth store) and *quarantined* — its
device copy is no longer trusted, later reads skip storage entirely until
the scrubber rewrites it.  With ``allow_fallback=False`` exhausted repair
raises :class:`~repro.errors.UnrepairablePageError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointError, IntegrityError, UnrepairablePageError
from ..faults.plan import (
    CORRUPT_BITFLIP,
    CORRUPT_NONE,
    CORRUPT_PERSISTENT,
    CORRUPT_TORN,
)
from .ledger import CorruptionLedger

#: Recognised verify-on-read modes.
VERIFY_MODES = ("off", "sample", "full")

#: Modeled digest-check throughput (bytes hashed per second).  CRC32C has
#: hardware support on every modern GPU/CPU; 50 GB/s keeps ``full`` cheap
#: but measurable (~80 ns per 4 KB page).
VERIFY_BANDWIDTH_BYTES_PER_S = 50e9


@dataclass(frozen=True)
class VerifyOutcome:
    """What one batch's verification did (counts plus the page verdicts)."""

    verified: int = 0
    unverified: int = 0
    detected: int = 0
    repaired: int = 0
    rereads: int = 0
    quarantined_pages: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    undetected_pages: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def quarantined(self) -> int:
        return len(self.quarantined_pages)


class ReadVerifier:
    """Applies one verify mode to batches of storage-served pages.

    Args:
        ledger: the loader's corruption ledger (mutated in place).
        mode: ``"off"``, ``"sample"`` or ``"full"``.
        sample_rate: per-page verify probability in ``"sample"`` mode.
        max_rereads: repair budget per detected corruption.
        allow_fallback: serve exhausted pages from the fallback tier
            (otherwise raise :class:`UnrepairablePageError`).
        seed: seed of the sampling stream (only ``"sample"`` draws from it,
            so ``"off"``/``"full"`` verifiers consume no random numbers).
        checksummer: optional digest source; when attached, the digest of
            every *detected* page is materialized (and memoized) so the
            modeled mismatch corresponds to a real, recomputable digest.
    """

    def __init__(
        self,
        ledger: CorruptionLedger,
        *,
        mode: str = "full",
        sample_rate: float = 0.1,
        max_rereads: int = 2,
        allow_fallback: bool = True,
        seed: int = 0,
        checksummer=None,
    ) -> None:
        if mode not in VERIFY_MODES:
            raise IntegrityError(
                f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
            )
        if not 0.0 < sample_rate <= 1.0 and mode == "sample":
            raise IntegrityError("sample_rate must be in (0, 1]")
        if max_rereads < 1:
            raise IntegrityError("max_rereads must be >= 1")
        self.ledger = ledger
        self.mode = mode
        self.sample_rate = float(sample_rate)
        self.max_rereads = int(max_rereads)
        self.allow_fallback = allow_fallback
        self.checksummer = checksummer
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)

    def process(
        self,
        pages: np.ndarray,
        kinds: np.ndarray,
        *,
        now_s: float = 0.0,
        origin_times: np.ndarray | None = None,
    ) -> VerifyOutcome:
        """Verify one batch of storage-served pages.

        Args:
            pages: page ids just served from storage.
            kinds: per-page corruption kind (``CORRUPT_*`` codes) as
                emitted by the fault injector; all-zero on healthy reads.
            now_s: simulated time of the read (detection-latency clock).
            origin_times: per-page simulated time the corruption entered
                the device (persistent kinds); defaults to ``now_s``
                everywhere, which is exact for transient corruption.

        Returns:
            A :class:`VerifyOutcome`; the ledger is updated in place.
        """
        pages = np.asarray(pages, dtype=np.int64)
        kinds = np.asarray(kinds, dtype=np.uint8)
        if kinds.shape != pages.shape:
            raise IntegrityError("kinds must align with pages")
        n = len(pages)
        if n == 0:
            return VerifyOutcome()

        if self.mode == "off":
            checked = np.zeros(n, dtype=bool)
        elif self.mode == "full":
            checked = np.ones(n, dtype=bool)
        else:
            checked = self._rng.random(n) < self.sample_rate

        corrupt = kinds != CORRUPT_NONE
        caught = checked & corrupt
        missed = corrupt & ~checked

        detected = repaired = rereads = 0
        quarantined: list[int] = []
        for idx in np.flatnonzero(caught):
            page = int(pages[idx])
            kind = int(kinds[idx])
            detected += 1
            latency = 0.0
            if origin_times is not None:
                latency = max(0.0, now_s - float(origin_times[idx]))
            self.ledger.record_detected(page, latency_s=latency)
            if self.checksummer is not None:
                self.checksummer.digest(page)
            if kind in (CORRUPT_BITFLIP, CORRUPT_TORN):
                # Transient: the device copy is fine, the read was not.
                rereads += 1
                repaired += 1
                self.ledger.record_repaired(page)
            elif kind == CORRUPT_PERSISTENT:
                # Poisoned media: every re-read returns the same bad bytes.
                rereads += self.max_rereads
                if not self.allow_fallback:
                    raise UnrepairablePageError(
                        f"page {page} still corrupt after "
                        f"{self.max_rereads} re-reads and fallback is "
                        f"disabled"
                    )
                self.ledger.record_unrepairable(page)
                quarantined.append(page)
            else:
                raise IntegrityError(f"unknown corruption kind {int(kind)}")

        return VerifyOutcome(
            verified=int(checked.sum()),
            unverified=int(n - checked.sum()),
            detected=detected,
            repaired=repaired,
            rereads=rereads,
            quarantined_pages=np.array(quarantined, dtype=np.int64),
            undetected_pages=pages[missed].copy(),
        )

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Snapshot the sampling stream (the verifier's only mutable state
        beyond the ledger, which the loader checkpoints separately)."""
        return {
            "mode": self.mode,
            "seed": self._seed,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("mode") != self.mode:
            raise CheckpointError(
                f"checkpoint verify mode {state.get('mode')!r} does not "
                f"match configured {self.mode!r}"
            )
        if state.get("seed") != self._seed:
            raise CheckpointError(
                f"checkpoint verifier seed {state.get('seed')} does not "
                f"match configured {self._seed}"
            )
        self._rng.bit_generator.state = state["rng"]
