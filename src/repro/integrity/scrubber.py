"""Modeled-time background scrubbing of the feature table.

Verify-on-read only inspects pages the workload happens to touch; media
corruption on a cold page sits undetected until the sampler wanders into
it.  The scrubber closes that window: between training iterations it walks
the page space in id order under an IOPS budget, compares each page against
its digest, and rewrites poisoned pages from the ground-truth store
(releasing them from quarantine if verify-on-read had already given up on
them).

The budget math: a sweep after a group that consumed ``elapsed_s`` modeled
seconds may issue at most ``iops_budget * elapsed_s`` page reads — the
scrubber soaks up idle device IOPS rather than stealing from the training
path, which is why its reads charge no epoch time (they overlap training
compute) while still being accounted in the counters and the trace.
Fractional budget carries over between sweeps, so a tiny budget still makes
progress instead of rounding to zero forever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CheckpointError, IntegrityError
from .ledger import CorruptionLedger


@dataclass(frozen=True)
class ScrubOutcome:
    """What one sweep did."""

    pages_scanned: int = 0
    detected: int = 0
    repaired: int = 0
    released: int = 0


class Scrubber:
    """Budgeted sequential sweep over the page space.

    Args:
        total_pages: pages in the feature table.
        iops_budget: page reads the scrubber may issue per modeled second.
        ledger: the loader's corruption ledger (mutated in place).
        injector: the fault injector whose persistent-corruption model the
            sweep inspects; ``None`` scans clean media (useful for
            verify-only runs — the sweep still advances and is accounted).
        num_devices: SSDs in the array (for the injector's page striping).
        checksummer: optional digest source; detected pages materialize
            their digest so the mismatch is real and recomputable.
    """

    def __init__(
        self,
        *,
        total_pages: int,
        iops_budget: float,
        ledger: CorruptionLedger,
        injector=None,
        num_devices: int = 1,
        checksummer=None,
    ) -> None:
        if total_pages <= 0:
            raise IntegrityError("total_pages must be positive")
        if iops_budget < 0:
            raise IntegrityError("iops_budget must be non-negative")
        self.total_pages = int(total_pages)
        self.iops_budget = float(iops_budget)
        self.ledger = ledger
        self.injector = injector
        self.num_devices = int(num_devices)
        self.checksummer = checksummer
        self._cursor = 0
        self._carry = 0.0

    @property
    def cursor(self) -> int:
        """Next page id the sweep will inspect."""
        return self._cursor

    def sweep(self, elapsed_s: float, now_s: float) -> ScrubOutcome:
        """Scrub up to ``iops_budget * elapsed_s`` pages at time ``now_s``."""
        if elapsed_s < 0:
            raise IntegrityError("elapsed time cannot be negative")
        budget = self._carry + self.iops_budget * elapsed_s
        n = int(budget)
        self._carry = budget - n
        n = min(n, self.total_pages)  # at most one full pass per sweep
        if n == 0:
            return ScrubOutcome()
        pages = (
            np.arange(self._cursor, self._cursor + n, dtype=np.int64)
            % self.total_pages
        )
        self._cursor = int((self._cursor + n) % self.total_pages)

        detected = repaired = released = 0
        if self.injector is not None:
            poisoned, origins = self.injector.poisoned_info(
                pages, now_s, self.num_devices
            )
            if poisoned.any():
                # The sweep's reads observed corrupt bytes: they count as
                # emitted corruption exactly like a training read would.
                self.injector.count_emitted(int(poisoned.sum()))
            for idx in np.flatnonzero(poisoned):
                page = int(pages[idx])
                detected += 1
                self.ledger.record_detected(
                    page, latency_s=max(0.0, now_s - float(origins[idx]))
                )
                if self.checksummer is not None:
                    self.checksummer.digest(page)
                # Rewrite from ground truth heals the media copy.
                self.injector.mark_repaired(page)
                self.ledger.record_repaired(page)
                repaired += 1
                if self.ledger.is_quarantined(page):
                    self.ledger.release(page)
                    released += 1
        return ScrubOutcome(
            pages_scanned=n,
            detected=detected,
            repaired=repaired,
            released=released,
        )

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        return {"cursor": self._cursor, "carry": self._carry}

    def load_state_dict(self, state: dict) -> None:
        cursor = state.get("cursor")
        if (
            not isinstance(cursor, int)
            or not 0 <= cursor < self.total_pages
        ):
            raise CheckpointError(
                f"invalid scrub cursor in checkpoint: {cursor!r}"
            )
        self._cursor = cursor
        self._carry = float(state.get("carry", 0.0))
