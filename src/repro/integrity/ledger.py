"""The corruption ledger: what was detected, repaired, and given up on.

One ledger rides each loader and is the authoritative account of the
integrity layer's work: per-device counts of detected / repaired /
unrepairable pages, the quarantine set (pages whose device copy is no
longer trusted and is served from the fallback tier), and the observed
detection latencies (simulated seconds between a corruption entering the
device and the verify/scrub path catching it).

The ledger is checkpointable: :meth:`state_dict` / :meth:`load_state_dict`
capture every count bit-exactly, so a killed-and-resumed run reports the
same integrity totals as one that never stopped.
"""

from __future__ import annotations

import numpy as np

from ..errors import CheckpointError, IntegrityError

#: Cap on retained detection-latency samples (oldest kept; the percentile
#: summaries benchmarks compute are insensitive to the tail being dropped).
MAX_LATENCY_SAMPLES = 100_000


class CorruptionLedger:
    """Per-device corruption accounting plus the page quarantine set.

    Args:
        num_devices: SSDs in the array (pages stripe as ``page % n``).
    """

    def __init__(self, num_devices: int = 1) -> None:
        if num_devices <= 0:
            raise IntegrityError("num_devices must be positive")
        self.num_devices = num_devices
        self.detected = np.zeros(num_devices, dtype=np.int64)
        self.repaired = np.zeros(num_devices, dtype=np.int64)
        self.unrepairable = np.zeros(num_devices, dtype=np.int64)
        self._quarantined: set[int] = set()
        self.detection_latencies: list[float] = []

    # ------------------------------------------------------------------
    # Introspection

    @property
    def total_detected(self) -> int:
        return int(self.detected.sum())

    @property
    def total_repaired(self) -> int:
        return int(self.repaired.sum())

    @property
    def total_unrepairable(self) -> int:
        return int(self.unrepairable.sum())

    @property
    def num_quarantined(self) -> int:
        return len(self._quarantined)

    @property
    def quarantined_pages(self) -> np.ndarray:
        """Sorted page ids currently in quarantine."""
        return np.array(sorted(self._quarantined), dtype=np.int64)

    def is_consistent(self) -> bool:
        """Every detection ended as a repair or an unrepairable verdict."""
        return bool(
            (self.detected == self.repaired + self.unrepairable).all()
        )

    # ------------------------------------------------------------------
    # Recording

    def _device_of(self, page: int) -> int:
        return int(page) % self.num_devices

    def record_detected(self, page: int, *, latency_s: float = 0.0) -> None:
        """One digest mismatch caught on device ``page % num_devices``."""
        if latency_s < 0:
            raise IntegrityError("detection latency cannot be negative")
        self.detected[self._device_of(page)] += 1
        if len(self.detection_latencies) < MAX_LATENCY_SAMPLES:
            self.detection_latencies.append(float(latency_s))

    def record_repaired(self, page: int) -> None:
        """A detected corruption healed (re-read or rewrite succeeded)."""
        self.repaired[self._device_of(page)] += 1

    def record_unrepairable(self, page: int) -> None:
        """A detected corruption exhausted repair; the page is quarantined."""
        self.unrepairable[self._device_of(page)] += 1
        self._quarantined.add(int(page))

    def is_quarantined(self, page: int) -> bool:
        return int(page) in self._quarantined

    def release(self, page: int) -> None:
        """Drop a page from quarantine (after an out-of-band rewrite)."""
        self._quarantined.discard(int(page))

    def quarantined_mask(self, pages: np.ndarray) -> np.ndarray:
        """Boolean mask over ``pages``: which are currently quarantined."""
        pages = np.asarray(pages, dtype=np.int64)
        if not self._quarantined or len(pages) == 0:
            return np.zeros(len(pages), dtype=bool)
        q = self._quarantined
        return np.fromiter(
            (int(p) in q for p in pages), dtype=bool, count=len(pages)
        )

    # ------------------------------------------------------------------
    # Reporting

    def detection_latency_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> dict[str, float]:
        """``{"p50": ..., ...}`` over the recorded detection latencies."""
        if not self.detection_latencies:
            return {f"p{int(p)}": 0.0 for p in percentiles}
        values = np.asarray(self.detection_latencies)
        return {
            f"p{int(p)}": float(np.percentile(values, p))
            for p in percentiles
        }

    def per_device_summary(self) -> list[dict[str, int]]:
        """One ``{device, detected, repaired, unrepairable}`` row per SSD."""
        return [
            {
                "device": d,
                "detected": int(self.detected[d]),
                "repaired": int(self.repaired[d]),
                "unrepairable": int(self.unrepairable[d]),
            }
            for d in range(self.num_devices)
        ]

    def publish(self, registry, prefix: str = "integrity") -> None:
        """Add ledger totals into a telemetry metrics registry (adds once)."""
        for name, value in (
            ("detected", self.total_detected),
            ("repaired", self.total_repaired),
            ("unrepairable", self.total_unrepairable),
            ("quarantined", self.num_quarantined),
        ):
            if value:
                registry.counter(f"{prefix}.{name}").inc(value)

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Bit-exact snapshot of every count and the quarantine set."""
        return {
            "num_devices": self.num_devices,
            "detected": self.detected.tolist(),
            "repaired": self.repaired.tolist(),
            "unrepairable": self.unrepairable.tolist(),
            "quarantined": sorted(self._quarantined),
            "detection_latencies": list(self.detection_latencies),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        if state.get("num_devices") != self.num_devices:
            raise CheckpointError(
                f"ledger device count {state.get('num_devices')} does not "
                f"match configured {self.num_devices}"
            )
        for name in ("detected", "repaired", "unrepairable"):
            values = np.asarray(state[name], dtype=np.int64)
            if values.shape != (self.num_devices,) or (values < 0).any():
                raise CheckpointError(
                    f"invalid ledger {name!r} vector in checkpoint"
                )
            setattr(self, name, values.copy())
        self._quarantined = {int(p) for p in state["quarantined"]}
        self.detection_latencies = [
            float(x) for x in state["detection_latencies"]
        ]
