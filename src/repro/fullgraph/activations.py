"""Activation offload store for full-graph sweeps.

Holds the per-layer output arrays (``h_1 .. h_L``) a sweep produces.  The
*values* are always materialized (this is a simulation — numerics must be
exact either way); what the store models is **where** they live:

* ``resident=True`` — everything fits the HBM budget; writes and reads
  are free of storage traffic (the trainer charges HBM bandwidth).
* ``resident=False`` — activations are spilled to SSD as they are
  produced during the forward sweep and reloaded in reverse order during
  backward.  Every access reports the bytes (and 4K pages) moved so the
  trainer can charge the sequential-bandwidth path, route the pages
  through the fault injector, and verify them on reload exactly like
  feature pages.
"""

from __future__ import annotations

import numpy as np

from ..errors import CheckpointError, FullGraphError

#: Spilled activations are paged at the storage granularity.
PAGE_BYTES = 4096


class ActivationStore:
    """Per-layer full-graph activation arrays with offload accounting.

    Args:
        num_nodes: rows of every stored array.
        resident: whether activations fit in HBM (no storage traffic).
        page_bytes: spill page granularity.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        resident: bool,
        page_bytes: int = PAGE_BYTES,
    ) -> None:
        if num_nodes <= 0:
            raise FullGraphError("num_nodes must be positive")
        if page_bytes <= 0:
            raise FullGraphError("page_bytes must be positive")
        self.num_nodes = int(num_nodes)
        self.resident = bool(resident)
        self.page_bytes = int(page_bytes)
        self._arrays: dict[int, np.ndarray] = {}
        self.spilled_bytes = 0
        self.spill_pages = 0
        self.reloaded_bytes = 0
        self.reload_pages = 0

    # ------------------------------------------------------------------
    # Data plane

    def allocate(self, layer: int, dim: int) -> None:
        """Create (or reset) layer ``layer``'s output array."""
        if dim <= 0:
            raise FullGraphError("activation dim must be positive")
        self._arrays[layer] = np.zeros(
            (self.num_nodes, dim), dtype=np.float64
        )

    def has(self, layer: int) -> bool:
        return layer in self._arrays

    def array(self, layer: int) -> np.ndarray:
        """The full array for ``layer`` (no transfer accounting)."""
        try:
            return self._arrays[layer]
        except KeyError:
            raise FullGraphError(
                f"layer {layer} has no stored activations"
            ) from None

    def pages_for(self, n_bytes: int) -> int:
        return -(-int(n_bytes) // self.page_bytes)

    def write_rows(
        self, layer: int, rows: np.ndarray, values: np.ndarray
    ) -> int:
        """Store one partition block; returns bytes spilled to storage.

        Returns 0 when resident — the write stays in HBM.
        """
        arr = self.array(layer)
        if values.shape != (len(rows), arr.shape[1]):
            raise FullGraphError("activation block shape mismatch")
        arr[rows] = values
        if self.resident:
            return 0
        n_bytes = values.size * values.itemsize
        self.spilled_bytes += n_bytes
        self.spill_pages += self.pages_for(n_bytes)
        return n_bytes

    def read_rows(
        self, layer: int, rows: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Reload one block of rows; returns ``(values, bytes_reloaded)``.

        Bytes are 0 when resident (the trainer charges HBM reads instead).
        """
        arr = self.array(layer)
        values = arr[rows]
        if self.resident:
            return values, 0
        n_bytes = values.size * values.itemsize
        self.reloaded_bytes += n_bytes
        self.reload_pages += self.pages_for(n_bytes)
        return values, n_bytes

    def charge_scratch(self, n_bytes: int, *, read: bool) -> int:
        """Account offloaded scratch traffic (e.g. gradient buffers).

        Returns the bytes actually charged against storage (0 when
        resident), updating the same spill/reload counters.
        """
        if n_bytes < 0:
            raise FullGraphError("scratch bytes must be non-negative")
        if self.resident or n_bytes == 0:
            return 0
        if read:
            self.reloaded_bytes += n_bytes
            self.reload_pages += self.pages_for(n_bytes)
        else:
            self.spilled_bytes += n_bytes
            self.spill_pages += self.pages_for(n_bytes)
        return int(n_bytes)

    def drop(self, layer: int) -> None:
        """Discard a layer's activations (freed after backward consumes it)."""
        self._arrays.pop(layer, None)

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "resident": self.resident,
            "page_bytes": self.page_bytes,
            "arrays": {
                int(k): v.copy() for k, v in self._arrays.items()
            },
            "spilled_bytes": self.spilled_bytes,
            "spill_pages": self.spill_pages,
            "reloaded_bytes": self.reloaded_bytes,
            "reload_pages": self.reload_pages,
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state.get("num_nodes", -1)) != self.num_nodes:
            raise CheckpointError(
                "activation store checkpoint is for a different graph"
            )
        self.resident = bool(state["resident"])
        self.page_bytes = int(state["page_bytes"])
        arrays = state.get("arrays")
        if not isinstance(arrays, dict):
            raise CheckpointError("activation checkpoint malformed")
        self._arrays = {
            int(k): np.asarray(v, dtype=np.float64).copy()
            for k, v in arrays.items()
        }
        for arr in self._arrays.values():
            if arr.ndim != 2 or arr.shape[0] != self.num_nodes:
                raise CheckpointError(
                    "activation array shape does not match the graph"
                )
        self.spilled_bytes = int(state["spilled_bytes"])
        self.spill_pages = int(state["spill_pages"])
        self.reloaded_bytes = int(state["reloaded_bytes"])
        self.reload_pages = int(state["reload_pages"])
